"""Crossover finding: where one configuration starts beating another.

Section 4's narrative is full of crossovers — "HQC has the least expected
system loads when n > 15", "comparable ... when p < 0.8", "comparable when
n < 200".  This module locates such crossings programmatically so the
benches can assert them instead of eyeballing figures.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.analysis.formulas import evaluate_configuration
from repro.core.config import Configuration


def first_crossing(
    f: Callable[[float], float],
    g: Callable[[float], float],
    xs: Sequence[float],
) -> float | None:
    """The first swept ``x`` from which ``f(x) < g(x)`` *and stays* below.

    Returns ``None`` when no such point exists within the sweep.  The
    "stays below" requirement rejects single-point dips caused by size
    snapping.
    """
    values = [(x, f(x), g(x)) for x in xs]
    for index, (x, fx, gx) in enumerate(values):
        if fx < gx and all(
            later_f <= later_g for _x, later_f, later_g in values[index:]
        ):
            return x
    return None


def quantity_crossover_n(
    winner: Configuration,
    loser: Configuration,
    quantity: str,
    sizes: Sequence[int],
    p: float = 0.7,
) -> int | None:
    """Smallest swept ``n`` from which ``winner``'s quantity stays below
    ``loser``'s (both snapped to their admissible sizes)."""

    def value(config: Configuration) -> Callable[[float], float]:
        return lambda n: getattr(
            evaluate_configuration(config, int(n), p), quantity
        )

    result = first_crossing(value(winner), value(loser), sizes)
    return None if result is None else int(result)


def expected_write_crossover_p(
    n: int,
    p_values: Sequence[float] = tuple(
        round(0.5 + 0.02 * i, 2) for i in range(1, 25)
    ),
) -> float | None:
    """The ``p`` from which ARBITRARY's expected write load stays below
    HQC's at (about) ``n`` replicas.

    The paper observes HQC's better write availability hands it the best
    expected load at large n "when p < 0.8"; this returns the flip point.
    """

    def arbitrary(p: float) -> float:
        return evaluate_configuration(
            Configuration.ARBITRARY, n, p
        ).expected_write_load

    def hqc(p: float) -> float:
        return evaluate_configuration(
            Configuration.HQC, n, p
        ).expected_write_load

    return first_crossing(arbitrary, hqc, p_values)
