"""Sections 3.3 / 4.2.2: the new lower bound on the binary-tree load.

The paper's UNMODIFIED configuration applies its write operation directly to
the all-physical complete binary tree of Agrawal-El Abbadi and achieves a
system load of ``1/log2(n+1)`` — strictly below the ``2/(log2(n+1)+1)``
optimum Naor & Wool proved for the tree-quorum protocol itself.  This bench

* regenerates the two load curves over binary-tree sizes;
* verifies ``1/(h+1) < 2/(h+2)`` at every size;
* cross-checks both closed forms against the LP optimum on small trees
  (the LP solves the actual enumerated quorum systems).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.tables import format_table
from repro.core.builder import unmodified_binary
from repro.core.metrics import write_availability, write_cost_avg, write_load
from repro.core.protocol import ArbitraryProtocol
from repro.protocols.tree_quorum import TreeQuorumProtocol
from repro.quorums.load import optimal_load

SIZES = (3, 7, 15, 31, 63, 127, 255, 511, 1023)


def test_lower_bound_table(emit, benchmark):
    def build():
        rows = []
        for n in SIZES:
            tree = unmodified_binary(n)
            ours = write_load(tree)
            naor_wool = TreeQuorumProtocol(n).optimal_load()
            rows.append([
                n, round(ours, 5), round(naor_wool, 5),
                round(naor_wool - ours, 5),
            ])
        return rows

    rows = benchmark(build)
    emit(
        "lower_bound",
        format_table(
            ["n", "UNMODIFIED write load 1/log2(n+1)",
             "Naor-Wool bound 2/(log2(n+1)+1)", "gap"],
            rows,
            title="New lower bound for the binary tree structure of [2]",
        ),
    )
    for n, ours, naor_wool, gap in rows:
        assert ours < naor_wool
        assert ours == pytest.approx(1.0 / math.log2(n + 1), abs=1e-5)


def test_unmodified_write_load_matches_lp(benchmark):
    """The closed form 1/(h+1) is LP-optimal on the enumerated system."""

    def check(n: int) -> float:
        tree = unmodified_binary(n)
        protocol = ArbitraryProtocol(tree)
        result = optimal_load(protocol.write_quorums(), universe=protocol.universe)
        return result.load

    for n in (3, 7, 15, 31, 63):
        lp = check(n)
        assert lp == pytest.approx(1.0 / math.log2(n + 1), abs=1e-6)
    benchmark(check, 31)


def test_tree_quorum_load_matches_lp(benchmark):
    """Naor-Wool's 2/(h+2) is LP-optimal on the enumerated tree quorums."""

    def check(n: int) -> float:
        protocol = TreeQuorumProtocol(n)
        quorums = list(protocol.enumerate_quorums())
        return optimal_load(quorums, universe=range(n)).load

    for n in (3, 7, 15):
        lp = check(n)
        assert lp == pytest.approx(
            TreeQuorumProtocol(n).optimal_load(), abs=1e-6
        )
    benchmark(check, 7)


def test_unmodified_write_side_quantities(emit):
    """The paper's §3.3 remarks on UNMODIFIED writes: highly available
    (always above p) with average cost n/log2(n+1)."""
    rows = []
    for n in (7, 31, 127, 511):
        tree = unmodified_binary(n)
        for p in (0.55, 0.7, 0.9):
            availability = write_availability(tree, p)
            assert availability > p
        rows.append([
            n,
            round(write_cost_avg(tree), 3),
            round(n / math.log2(n + 1), 3),
        ])
    emit(
        "unmodified_write_costs",
        format_table(
            ["n", "avg write cost", "n/log2(n+1)"],
            rows,
            title="UNMODIFIED write cost matches n/log2(n+1)",
        ),
    )
    for _n, measured, formula in rows:
        assert measured == pytest.approx(formula)
