"""Unit tests for the Agrawal-El Abbadi VLDB'90 tree protocol ([1])."""

import random

import pytest

from repro.protocols.agrawal_tree import AgrawalTreeProtocol, complete_tree_size
from repro.quorums.availability import exact_availability
from repro.quorums.base import is_cross_intersecting
from repro.quorums.load import optimal_load


class TestStructure:
    def test_size_formula(self):
        assert complete_tree_size(3, 2) == 13
        assert complete_tree_size(5, 1) == 6

    def test_n_from_parameters(self):
        assert AgrawalTreeProtocol(d=1, height=2).n == 13
        assert AgrawalTreeProtocol(d=2, height=1).n == 6

    def test_children_layout(self):
        protocol = AgrawalTreeProtocol(d=1, height=2)
        assert protocol.children(0) == (1, 2, 3)
        assert protocol.children(1) == (4, 5, 6)
        assert protocol.children(4) == ()

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="d must be"):
            AgrawalTreeProtocol(d=0)
        with pytest.raises(ValueError, match="height"):
            AgrawalTreeProtocol(d=1, height=-1)


class TestReadQuorums:
    def test_live_root_reads_alone(self):
        protocol = AgrawalTreeProtocol(d=1, height=2)
        assert protocol.construct_read_quorum(set(range(13))) == frozenset({0})

    def test_dead_root_needs_child_majority(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)  # root + 3 children
        quorum = protocol.construct_read_quorum({1, 2, 3})
        assert quorum is not None and len(quorum) == 2  # any 2 of 3

    def test_cascading_failure_reaches_leaves(self):
        protocol = AgrawalTreeProtocol(d=1, height=2)
        live = set(range(4, 13))  # root and level 1 all dead
        quorum = protocol.construct_read_quorum(live)
        assert quorum is not None
        assert len(quorum) == 4  # (d+1)^2 = worst-case read cost
        assert quorum <= live

    def test_read_unavailable(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        assert protocol.construct_read_quorum({1}) is None

    def test_worst_case_cost_formula(self):
        protocol = AgrawalTreeProtocol(d=2, height=2)
        assert protocol.read_cost_max() == 9  # (d+1)^h = 3^2


class TestWriteQuorums:
    def test_write_cost_exact(self):
        assert AgrawalTreeProtocol(d=1, height=2).write_cost_exact() == 7
        assert AgrawalTreeProtocol(d=2, height=1).write_cost_exact() == 4

    def test_write_needs_live_root(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        assert protocol.construct_write_quorum({1, 2, 3}) is None

    def test_write_spine_shape(self):
        protocol = AgrawalTreeProtocol(d=1, height=2)
        quorum = protocol.construct_write_quorum(set(range(13)))
        assert quorum is not None
        assert len(quorum) == protocol.write_cost_exact()
        assert 0 in quorum

    def test_write_routes_around_child_failure(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        quorum = protocol.construct_write_quorum({0, 2, 3})
        assert quorum == frozenset({0, 2, 3})

    def test_randomised_construction_stays_live(self):
        protocol = AgrawalTreeProtocol(d=1, height=2)
        rng = random.Random(0)
        live = set(range(13)) - {2, 7, 11}
        for _ in range(20):
            quorum = protocol.construct_write_quorum(live, rng)
            if quorum is not None:
                assert quorum <= live


class TestEnumeration:
    def test_every_write_quorum_has_exact_cost(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        writes = list(protocol.write_quorums())
        assert len(writes) == 3  # choose 2 of 3 children
        assert all(len(w) == 3 for w in writes)

    def test_read_write_cross_intersection(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        assert is_cross_intersecting(
            list(protocol.read_quorums()), list(protocol.write_quorums())
        )

    def test_height2_cross_intersection(self):
        protocol = AgrawalTreeProtocol(d=1, height=2)
        assert is_cross_intersecting(
            list(protocol.read_quorums()), list(protocol.write_quorums())
        )

    def test_root_is_a_read_quorum(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        assert frozenset({0}) in set(protocol.read_quorums())


class TestAnalyticQuantities:
    def test_write_load_is_one_via_lp(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        lp = optimal_load(list(protocol.write_quorums()), universe=range(4))
        assert lp.load == pytest.approx(1.0)  # root in every quorum

    def test_read_availability_recursion_matches_exact(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        for p in (0.5, 0.7, 0.9):
            exact = exact_availability(
                list(protocol.read_quorums()), p, universe=range(4)
            )
            assert protocol.read_availability(p) == pytest.approx(exact, abs=1e-9)

    def test_write_availability_recursion_matches_exact(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        for p in (0.5, 0.7, 0.9):
            exact = exact_availability(
                list(protocol.write_quorums()), p, universe=range(4)
            )
            assert protocol.write_availability(p) == pytest.approx(exact, abs=1e-9)

    def test_write_availability_below_p(self):
        """The paper's root-crash critique: writes less available than one
        replica."""
        protocol = AgrawalTreeProtocol(d=1, height=3)
        for p in (0.6, 0.8, 0.95):
            assert protocol.write_availability(p) < p

    def test_read_availability_above_p(self):
        protocol = AgrawalTreeProtocol(d=1, height=3)
        for p in (0.6, 0.8, 0.95):
            assert protocol.read_availability(p) > p

    def test_intro_load_figures(self):
        protocol = AgrawalTreeProtocol(d=1, height=2)
        assert protocol.read_load() == 1.0
        assert protocol.write_load() == 1.0
        assert protocol.read_cost() == 1.0
        assert protocol.write_cost() == 7.0
