"""Read and write quorum construction for the arbitrary protocol (Section 3.2).

Given an :class:`~repro.core.tree.ArbitraryTree`:

* a **read quorum** contains *any one* physical node from *every* physical
  level; there are ``m(R) = prod_k m_phy_k`` of them (Fact 3.2.1);
* a **write quorum** contains *all* physical nodes of *any one* physical
  level; there are ``m(W) = 1 + h - |K_log| = |K_phy|`` of them (Fact 3.2.2).

Every read quorum intersects every write quorum (the induction of
Section 3.2.3), so the protocol is a bi-coterie.  The uniform strategies of
Sections 3.2.1-3.2.2 pick quorums with equal probability; the failure-aware
selectors used by the simulator pick among quorums whose members are live.
"""

from __future__ import annotations

import math
import random
from collections.abc import Collection, Iterator
from itertools import product

from repro.core.tree import ArbitraryTree
from repro.quorums.base import BiCoterie
from repro.quorums.liveness import Liveness, LivenessOracle, as_oracle
from repro.quorums.system import QuorumSystem

__all__ = ["ArbitraryProtocol", "LivenessOracle"]


class ArbitraryProtocol(QuorumSystem):
    """The arbitrary tree-structured replica control protocol.

    Parameters
    ----------
    tree:
        The logical/physical tree the replicas are organised into.

    Notes
    -----
    The number of read quorums is the product of physical-level sizes and
    grows combinatorially; :meth:`read_quorums` is therefore a lazy iterator
    and :meth:`bicoterie` guards materialisation behind a limit.
    """

    name = "Arbitrary"

    #: One independent uniform live choice per physical level (reads) and
    #: a uniform choice among fully-live levels (writes) are exactly the
    #: uniform distribution over the viable quorums, so the simulator may
    #: dispatch selection onto the memoised bitset index.
    uniform_selection = True

    def __init__(self, tree: ArbitraryTree) -> None:
        if tree.n < 1:
            raise ValueError("the tree must host at least one replica")
        self._tree = tree
        self._level_sids: tuple[tuple[int, ...], ...] = tuple(
            tree.replica_ids_at(k) for k in tree.physical_levels
        )

    @property
    def tree(self) -> ArbitraryTree:
        """The underlying tree structure."""
        return self._tree

    @property
    def universe(self) -> frozenset[int]:
        """All replica SIDs."""
        return frozenset(self._tree.replica_ids())

    # ------------------------------------------------------------------
    # quorum enumeration (Facts 3.2.1 / 3.2.2)
    # ------------------------------------------------------------------

    @property
    def num_read_quorums(self) -> int:
        """``m(R) = prod_{k in K_phy} m_phy_k`` (Fact 3.2.1)."""
        return math.prod(len(level) for level in self._level_sids)

    @property
    def num_write_quorums(self) -> int:
        """``m(W) = 1 + h - |K_log|`` (Fact 3.2.2)."""
        return len(self._level_sids)

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """Lazily enumerate every read quorum.

        A read quorum is one SID per physical level; enumeration is the
        cartesian product of the physical levels, in level-major order.
        """
        levels = self._level_sids

        def generate(prefix: tuple[int, ...], depth: int) -> Iterator[frozenset[int]]:
            if depth == len(levels):
                yield frozenset(prefix)
                return
            for sid in levels[depth]:
                yield from generate(prefix + (sid,), depth + 1)

        yield from generate((), 0)

    def write_quorums(self) -> tuple[frozenset[int], ...]:
        """Every write quorum: the full SID set of each physical level."""
        return tuple(frozenset(level) for level in self._level_sids)

    def quorum_masks(self, op: str = "read") -> list[int]:
        """Mask twin of the enumerations, same level-major product order."""
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        if op == "write":
            return [
                sum(1 << sid for sid in level) for level in self._level_sids
            ]
        level_bits = [
            [1 << sid for sid in level] for level in self._level_sids
        ]
        return [sum(pick) for pick in product(*level_bits)]

    def read_quorum_at(self, choices: Collection[int]) -> frozenset[int]:
        """Build one read quorum from explicit per-level position choices.

        ``choices[u]`` is the 0-based position within physical level ``u``
        (levels in ascending depth).  Useful for deterministic tests.
        """
        picks = list(choices)
        if len(picks) != len(self._level_sids):
            raise ValueError(
                f"need one choice per physical level "
                f"({len(self._level_sids)}), got {len(picks)}"
            )
        return frozenset(
            level[position] for level, position in zip(self._level_sids, picks)
        )

    # ------------------------------------------------------------------
    # uniform strategies (Sections 3.2.1 / 3.2.2)
    # ------------------------------------------------------------------

    def uniform_read_weight(self) -> float:
        """Probability of each read quorum under the paper's strategy."""
        return 1.0 / self.num_read_quorums

    def uniform_write_weight(self) -> float:
        """Probability of each write quorum under the paper's strategy."""
        return 1.0 / self.num_write_quorums

    def sample_read_quorum(self, rng: random.Random) -> frozenset[int]:
        """Draw a read quorum from the uniform strategy ``w_read``."""
        return frozenset(rng.choice(level) for level in self._level_sids)

    def sample_write_quorum(self, rng: random.Random) -> frozenset[int]:
        """Draw a write quorum from the uniform strategy ``w_write``."""
        return frozenset(rng.choice(self._level_sids))

    # ------------------------------------------------------------------
    # failure-aware selection (used by the simulator / clients)
    # ------------------------------------------------------------------

    def select_read_quorum(
        self,
        live: Liveness,
        rng: random.Random | None = None,
    ) -> frozenset[int] | None:
        """Assemble a read quorum from live replicas, or ``None``.

        A read succeeds iff every physical level has at least one live
        replica (this is exactly the availability product of Section 3.2.1).
        When ``rng`` is given the live member of each level is picked
        uniformly at random, spreading load as the uniform strategy does;
        otherwise the first live member is taken (deterministic).
        """
        oracle = as_oracle(live)
        members: list[int] = []
        for level in self._level_sids:
            alive = [sid for sid in level if oracle(sid)]
            if not alive:
                return None
            members.append(rng.choice(alive) if rng is not None else alive[0])
        return frozenset(members)

    def select_write_quorum(
        self,
        live: Liveness,
        rng: random.Random | None = None,
    ) -> frozenset[int] | None:
        """Pick a physical level whose replicas are *all* live, or ``None``.

        A write succeeds iff some physical level is fully live (the
        availability complement of Section 3.2.2).  With ``rng`` the level is
        picked uniformly among the fully-live ones; otherwise the shallowest
        (and by Assumption 3.1 cheapest) fully-live level is used.
        """
        oracle = as_oracle(live)
        candidates = [
            frozenset(level)
            for level in self._level_sids
            if all(oracle(sid) for sid in level)
        ]
        if not candidates:
            return None
        if rng is not None:
            return rng.choice(candidates)
        return min(candidates, key=len)

    # ------------------------------------------------------------------
    # closed-form analyses (Sections 3.2.1 / 3.2.2)
    # ------------------------------------------------------------------

    def load(self, op: str = "read") -> float:
        """The closed-form load of the paper's uniform strategies.

        Overrides the generic LP-based derivation — the paper gives both
        operation loads in closed form (``max_k 1/m_phy_k`` for reads,
        ``max_k m_phy_k / n_phy`` for writes).
        """
        from repro.core import metrics

        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', not {op!r}")
        if op == "read":
            return metrics.read_load(self._tree)
        return metrics.write_load(self._tree)

    def availability(self, p: float, op: str = "read") -> float:
        """Closed-form availability product (reads) / complement (writes)."""
        from repro.core import metrics

        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', not {op!r}")
        if op == "read":
            return metrics.read_availability(self._tree, p)
        return metrics.write_availability(self._tree, p)

    # ------------------------------------------------------------------
    # bi-coterie view
    # ------------------------------------------------------------------

    def bicoterie(self, max_read_quorums: int = 100_000) -> BiCoterie:
        """Materialise the protocol as an explicit bi-coterie.

        Raises :class:`ValueError` when the read-quorum count exceeds
        ``max_read_quorums`` — enumeration is exponential in the number of
        physical levels, so this view is for analysis of small systems.
        Constructing the :class:`~repro.quorums.base.BiCoterie` re-validates
        the read/write intersection property from first principles.
        """
        if self.num_read_quorums > max_read_quorums:
            raise ValueError(
                f"{self.num_read_quorums} read quorums exceed the "
                f"materialisation limit of {max_read_quorums}"
            )
        return BiCoterie(
            self.read_quorums(),
            self.write_quorums(),
            universe=self.universe,
        )

    def is_bicoterie(self) -> bool:
        """Re-verify the read/write intersection property by construction.

        Cheap (no enumeration): every read quorum holds one member of every
        physical level, and every write quorum is an entire physical level,
        so it suffices that each physical level is non-empty.
        """
        return all(len(level) > 0 for level in self._level_sids)

    def __repr__(self) -> str:
        return (
            f"ArbitraryProtocol(tree={self._tree.spec()!r}, "
            f"m_R={self.num_read_quorums}, m_W={self.num_write_quorums})"
        )
