"""Per-key read leases: quorum-read results served without quorum rounds.

*Read-Write Quorum Systems Made Practical* (PAPERS.md) observes that
read-dominant workloads should not pay a full quorum round per read; the
tree protocol's cheap read quorums (PAPER.md Section 3.3) make the
cached-read variant especially attractive.  A :class:`LeaseCache` holds,
per key, the latest value a coordinator group has *proven* current —
either by completing a read quorum (every member answered, the dominant
timestamp won) or by committing a write (the 2PC commit applied the
value on a full write quorum before the exclusive lock was released).

Safety rests on two invalidation rules, both enforced by the
coordinator:

1. **Conflicting writes** — the lease is invalidated the moment a
   write's *exclusive lock is granted* on the key, i.e. before any state
   anywhere can change, and re-granted only after the write commits.
   Between those points reads miss the cache and queue on the lock like
   any other reader, so a leased serve can never return a value older
   than the latest committed write.
2. **Liveness epochs** — every entry is stamped with
   :attr:`~repro.sim.network.Network.liveness_epoch` at grant time and
   dropped when the epoch has moved (site crash/recovery, partition
   install/heal).  Within one coordinator group rule 1 alone is
   sufficient (the shared lock manager serialises writers regardless of
   liveness), but revoking leases on membership events is what lets a
   future multi-group deployment treat a lease as a lease rather than a
   hint, and it keeps cache lifetime bounded under chaos.

One cache is shared by every coordinator of a replica group (exactly
like the version floor): an invalidation triggered by one client's write
must be seen by every other client's reads.

Leased outcomes carry ``leased=True``, an **empty** quorum and
``attempts=0``, so measured quorum load and cost honestly report that
nobody was contacted; the invariant checker skips only the
quorum-intersection audit for them (there is no quorum to intersect) and
still enforces freshness and read-monotonicity.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.sim.replica import Timestamp


@dataclass(slots=True)
class LeaseEntry:
    """One key's cached read result and the epoch it was granted in."""

    value: Any
    timestamp: Timestamp
    quorum: frozenset[int]
    epoch: int


class LeaseCache:
    """Epoch-stamped per-key cache of proven-current read results.

    Parameters
    ----------
    epoch:
        Zero-argument callable returning the current liveness epoch
        (wire it to ``network.current_liveness_epoch``).  Entries granted
        under an older epoch are treated as missing and dropped.

    The ``hits`` / ``misses`` / ``grants`` / ``invalidations`` /
    ``epoch_invalidations`` counters make lease behaviour observable to
    tests and benchmarks.
    """

    __slots__ = (
        "_epoch",
        "_entries",
        "hits",
        "misses",
        "grants",
        "invalidations",
        "epoch_invalidations",
        "flushes",
    )

    def __init__(self, epoch: Callable[[], int]) -> None:
        self._epoch = epoch
        self._entries: dict[Any, LeaseEntry] = {}
        self.hits = 0
        self.misses = 0
        self.grants = 0
        self.invalidations = 0
        self.epoch_invalidations = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Any) -> LeaseEntry | None:
        """The live lease for ``key``, or ``None`` (stale entries drop)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.epoch != self._epoch():
            del self._entries[key]
            self.epoch_invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def grant(
        self,
        key: Any,
        value: Any,
        timestamp: Timestamp,
        quorum: frozenset[int],
    ) -> None:
        """Install/refresh the lease for ``key`` under the current epoch.

        Callers grant only off proven-current results: a completed read
        quorum, or a committed write (write-through).
        """
        self._entries[key] = LeaseEntry(
            value=value,
            timestamp=timestamp,
            quorum=quorum,
            epoch=self._epoch(),
        )
        self.grants += 1

    def invalidate(self, key: Any) -> None:
        """Revoke ``key``'s lease (called at exclusive-lock grant)."""
        if self._entries.pop(key, None) is not None:
            self.invalidations += 1

    def flush(self) -> int:
        """Drop every entry (reconfiguration epoch edges; returns count).

        The epoch stamp already makes stale entries unservable once the
        liveness epoch moves, so this is belt-and-braces: no lease
        granted against one tree may ever answer under another, even if
        an epoch counter is wired differently in a future composition.
        """
        dropped = len(self._entries)
        if dropped:
            self._entries.clear()
        self.flushes += 1
        return dropped

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> dict[str, float]:
        """Counter snapshot for benchmarks and tests."""
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "grants": float(self.grants),
            "invalidations": float(self.invalidations),
            "epoch_invalidations": float(self.epoch_invalidations),
            "flushes": float(self.flushes),
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"LeaseCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses}, invalidations={self.invalidations})"
        )
