"""Unit tests for the grid and finite-projective-plane protocols."""

import math

import pytest

from repro.protocols.fpp import (
    FiniteProjectivePlaneProtocol,
    fpp_sizes,
    is_prime,
    plane_order,
)
from repro.protocols.grid import GridProtocol, square_side
from repro.quorums.availability import exact_availability
from repro.quorums.base import is_cross_intersecting, is_intersecting
from repro.quorums.load import optimal_load


class TestGridStructure:
    def test_square_default(self):
        grid = GridProtocol(16)
        assert grid.rows == grid.cols == 4

    def test_non_square_rejected_without_dims(self):
        with pytest.raises(ValueError, match="square"):
            GridProtocol(10)

    def test_explicit_rectangle(self):
        grid = GridProtocol(12, rows=3)
        assert grid.cols == 4

    def test_dims_must_multiply(self):
        with pytest.raises(ValueError, match="does not hold"):
            GridProtocol(10, rows=3, cols=4)

    def test_sid_layout(self):
        grid = GridProtocol(9)
        assert grid.sid(0, 0) == 0
        assert grid.sid(2, 1) == 7
        with pytest.raises(IndexError):
            grid.sid(3, 0)

    def test_column(self):
        grid = GridProtocol(9)
        assert grid.column(1) == frozenset({1, 4, 7})


class TestGridQuorums:
    def test_read_quorum_count(self):
        grid = GridProtocol(9)
        assert len(list(grid.read_quorums())) == 27  # rows^cols

    def test_read_quorums_cover_columns(self):
        grid = GridProtocol(9)
        for quorum in grid.read_quorums():
            assert len(quorum) == 3
            for col in range(3):
                assert quorum & grid.column(col)

    def test_write_quorum_shape(self):
        grid = GridProtocol(9)
        for quorum in grid.write_quorums():
            assert len(quorum) == 5  # rows + cols - 1

    def test_bicoterie_property(self):
        grid = GridProtocol(9)
        assert is_cross_intersecting(
            list(grid.read_quorums()), list(grid.write_quorums())
        )

    def test_writes_intersect_each_other(self):
        grid = GridProtocol(9)
        assert is_intersecting(list(grid.write_quorums()))


class TestGridQuantities:
    def test_costs(self):
        grid = GridProtocol(25)
        assert grid.read_cost() == 5
        assert grid.write_cost() == 9

    def test_read_load_is_optimal_sqrt_n(self):
        grid = GridProtocol(9)
        lp = optimal_load(list(grid.read_quorums()), universe=range(9))
        assert lp.load == pytest.approx(grid.read_load())
        assert grid.read_load() == pytest.approx(1 / 3)

    def test_availability_formulas_match_exact(self):
        grid = GridProtocol(9)
        for p in (0.6, 0.8):
            exact_read = exact_availability(
                list(grid.read_quorums()), p, universe=range(9)
            )
            exact_write = exact_availability(
                list(grid.write_quorums()), p, universe=range(9)
            )
            assert grid.read_availability(p) == pytest.approx(exact_read, abs=1e-9)
            assert grid.write_availability(p) == pytest.approx(exact_write, abs=1e-9)


class TestFppStructure:
    def test_is_prime(self):
        assert [x for x in range(2, 12) if is_prime(x)] == [2, 3, 5, 7, 11]
        assert not is_prime(1)

    def test_plane_order(self):
        assert plane_order(7) == 2
        assert plane_order(13) == 3
        assert plane_order(31) == 5

    def test_invalid_sizes(self):
        with pytest.raises(ValueError, match="q\\^2"):
            plane_order(10)

    def test_non_prime_order_rejected(self):
        # q = 6 -> n = 43; 6 is not prime (and no plane of order 6 exists)
        with pytest.raises(ValueError, match="not prime"):
            plane_order(43)

    def test_sizes_helper(self):
        assert fpp_sizes(5) == [7, 13, 31]


class TestFppQuorums:
    @pytest.mark.parametrize("n", [7, 13, 31])
    def test_plane_axioms(self, n):
        protocol = FiniteProjectivePlaneProtocol(n)
        lines = list(protocol.read_quorums())
        q = protocol.order
        assert len(lines) == n
        for line in lines:
            assert len(line) == q + 1
        # any two lines meet in exactly one point
        for i, a in enumerate(lines):
            for b in lines[i + 1:]:
                assert len(a & b) == 1

    def test_each_point_on_q_plus_1_lines(self):
        protocol = FiniteProjectivePlaneProtocol(13)
        counts = {sid: 0 for sid in range(13)}
        for line in protocol.read_quorums():
            for sid in line:
                counts[sid] += 1
        assert set(counts.values()) == {4}

    def test_load_is_lp_optimal_sqrt_n(self):
        protocol = FiniteProjectivePlaneProtocol(13)
        lp = optimal_load(list(protocol.read_quorums()), universe=range(13))
        assert lp.load == pytest.approx(protocol.read_load(), abs=1e-6)
        assert protocol.read_load() == pytest.approx(4 / 13)
        assert protocol.read_load() == pytest.approx(1 / math.sqrt(13), abs=0.05)

    def test_costs(self):
        protocol = FiniteProjectivePlaneProtocol(31)
        assert protocol.read_cost() == 6
        assert protocol.write_cost() == 6

    def test_availability(self):
        protocol = FiniteProjectivePlaneProtocol(7)
        value = protocol.read_availability(0.9)
        exact = exact_availability(
            list(protocol.read_quorums()), 0.9, universe=range(7)
        )
        assert value == pytest.approx(exact, abs=1e-9)
        assert protocol.write_availability(0.9) == value
