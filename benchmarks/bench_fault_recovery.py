"""Recovery time after a mass crash: suspicion detector vs blind selection.

The scenario behind the fault layer's acceptance criterion.  A 1-3-5
arbitrary-protocol fleet runs a Poisson workload; two sites (one on the
middle level, one on the leaf level) are permanent *stragglers* — up,
answering, but 20x slower than the quorum timeout — and at a fixed
instant a mass crash takes out three further sites.  Post-crash the live
read quorums are scarce, so blind selection keeps drafting the
stragglers, times out, and burns retry attempts; the suspicion-based
:class:`~repro.fault.detector.SuspectList` has already learnt them from
pre-crash timeouts and steers selection around them.

Per seed the measurement is **time-to-first-success (TTFS)**: the delay
from the crash instant until the first *read* started after it succeeds.
Reads are where selection has freedom — a read quorum picks one site per
physical level, so the detector can route around a straggler; a write
quorum is an entire level, so the surviving level's straggler taxes both
arms identically and would only add noise to the metric.  The bench runs
both arms (detector on / off) over the same seeds and asserts the
detector's median TTFS is lower — the adaptive layer must buy back real
recovery time, not just emit counters.  Every run is audited by the
safety invariant checker, so the speed-up cannot come from serving stale
or non-intersecting reads.

Run directly::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py [--quick] [--out P]
"""

from __future__ import annotations

import argparse
import statistics
import sys
from pathlib import Path

try:
    from benchmarks.perf_harness import write_bench_json
except ImportError:  # direct `python benchmarks/bench_fault_recovery.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from perf_harness import write_bench_json

from repro.core.builder import from_spec
from repro.fault.invariants import InvariantChecker
from repro.fault.retry import RetryPolicySpec
from repro.fault.scenarios import MassCrash, StragglerSites
from repro.sim.engine import SimulationConfig, build_simulation
from repro.sim.failures import CompositeFailures
from repro.sim.workload import WorkloadSpec

#: Fleet layout: 1-3-5 tree (logical root, physical levels
#: SIDs 0 1 2 | 3 4 5 6 7), so n = 8.
SPEC = "1-3-5"
#: Stragglers: one per physical level — alive but 20x slow.
STRAGGLERS = (1, 5)
#: Mass-crash victims, disjoint from the stragglers and sparing the full
#: top physical level (writes stay possible): post-crash the leaf level
#: is down to {3, 5}, so half of all blind read quorums draft the
#: straggler there.
VICTIMS = (4, 6, 7)
CRASH_AT = 150.0
RECOVER_AFTER = 150.0


class _CapturingChecker(InvariantChecker):
    """Safety auditor that also keeps every outcome for TTFS analysis."""

    def __init__(self) -> None:
        super().__init__()
        self.outcomes = []

    def check(self, outcome) -> None:
        self.outcomes.append(outcome)
        super().check(outcome)


def _config(seed: int, detector: bool, operations: int) -> SimulationConfig:
    failures = CompositeFailures([
        StragglerSites(factor=20.0, sids=STRAGGLERS, start=0.0),
        MassCrash(
            at=CRASH_AT, sids=VICTIMS,
            recover_after=RECOVER_AFTER, stagger=10.0,
        ),
    ])
    return SimulationConfig(
        tree=from_spec(SPEC),
        # Read-heavy mix over many keys: writes must include the surviving
        # level's straggler whatever the detector says, and a stuck write
        # holds its key's lock — a wide key space keeps post-crash reads
        # off those locks so TTFS measures selection, not lock queueing.
        workload=WorkloadSpec(
            operations=operations, read_fraction=0.75, keys=64,
            arrival="poisson", rate=0.25,
        ),
        failures=failures,
        timeout=8.0,
        max_attempts=6,
        seed=seed,
        retry_policy=RetryPolicySpec(
            kind="exponential", base=0.5, factor=2.0, cap=8.0, jitter=0.2
        ),
        detector=detector,
        # The stragglers are permanent, so let suspicion stick: a short
        # probe interval would re-trust them every 30 time units and pay
        # a fresh quorum timeout to re-learn what never changed.
        probe_interval=120.0,
    )


def _time_to_first_success(seed: int, detector: bool, operations: int) -> dict:
    """Run one arm and measure TTFS past the crash instant."""
    checker = _CapturingChecker()
    scheduler, workload, monitor, network, sites = build_simulation(
        _config(seed, detector, operations), invariants=checker
    )
    workload.start()
    while workload.completed < operations:
        if not scheduler.step():
            raise RuntimeError("queue drained before the workload completed")
    assert checker.ok, f"invariant violations: {checker.violations}"
    post_crash = [
        outcome for outcome in checker.outcomes
        if (
            outcome.success
            and outcome.op_type == "read"
            and outcome.started_at >= CRASH_AT
        )
    ]
    ttfs = (
        min(outcome.finished_at for outcome in post_crash) - CRASH_AT
        if post_crash else float("inf")
    )
    summary = monitor.summary()
    suspects = workload.coordinators[0].suspects
    return {
        "seed": seed,
        "ttfs": ttfs,
        "read_availability": summary["read_availability"],
        "selection_avoided": (
            suspects.counters()["selection_avoided"] if suspects else 0
        ),
    }


def run(quick: bool = False, out: str | None = None) -> dict:
    operations = 150 if quick else 400
    seeds = range(5) if quick else range(9)

    arms = {}
    for label, detector in (("blind", False), ("detector", True)):
        runs = [
            _time_to_first_success(seed, detector, operations)
            for seed in seeds
        ]
        arms[label] = {
            "runs": runs,
            "median_ttfs": statistics.median(r["ttfs"] for r in runs),
            "mean_read_availability": statistics.fmean(
                r["read_availability"] for r in runs
            ),
        }

    blind = arms["blind"]["median_ttfs"]
    adaptive = arms["detector"]["median_ttfs"]
    speedup = blind / adaptive if adaptive > 0 else float("inf")
    results = [
        {
            "case": f"mass-crash+stragglers/{label}/operations={operations}",
            "median_ttfs": arm["median_ttfs"],
            "mean_read_availability": round(arm["mean_read_availability"], 4),
            "runs": arm["runs"],
        }
        for label, arm in arms.items()
    ]
    summary = {
        "median_ttfs_blind": blind,
        "median_ttfs_detector": adaptive,
        "ttfs_speedup": round(speedup, 3),
        "seeds": len(list(seeds)),
        "quick": quick,
    }
    print(
        f"median TTFS after mass crash: blind {blind:.1f} vs "
        f"detector {adaptive:.1f} time units ({speedup:.2f}x faster), "
        f"{len(list(seeds))} seeds, {operations} ops/run"
    )
    write_bench_json("fault", results, summary, out=out)
    assert adaptive < blind, (
        f"detector median TTFS {adaptive:.1f} is not below blind "
        f"{blind:.1f}; the adaptive layer bought no recovery time"
    )
    return summary


def test_fault_recovery_smoke(emit):
    """CI smoke: quick tier; detector TTFS must beat blind TTFS.

    Writes to a ``_smoke`` JSON so a local pytest run never clobbers the
    recorded full-run trajectory in ``BENCH_fault.json``.
    """
    from benchmarks.perf_harness import RESULTS_DIR

    summary = run(quick=True, out=str(RESULTS_DIR / "BENCH_fault_smoke.json"))
    emit(
        "fault_recovery_smoke",
        "fault recovery smoke: median TTFS blind "
        f"{summary['median_ttfs_blind']:.1f} vs detector "
        f"{summary['median_ttfs_detector']:.1f} "
        f"({summary['ttfs_speedup']:.2f}x)",
    )
    assert summary["median_ttfs_detector"] < summary["median_ttfs_blind"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer seeds and operations (CI smoke tier)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default benchmarks/results/BENCH_fault.json)",
    )
    arguments = parser.parse_args()
    run(quick=arguments.quick, out=arguments.out)
