"""Ablation: the number of physical levels IS the protocol's tuning knob.

Section 3.3's trade-off discussion in executable form: for a fixed ``n``,
sweep the tree from one physical level (MOSTLY-READ / ROWA) to ``n/2``
levels (MOSTLY-WRITE) and track every quantity.  Asserts the paper's claimed
monotone trends:

* more levels -> write cost and write load fall, write availability rises;
* more levels -> read cost rises and read availability falls;
* read load is governed by the thinnest level (1/d).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import analyse
from repro.core.builder import _spread, from_physical_level_sizes

N = 60
P = 0.85
LEVEL_COUNTS = (1, 2, 3, 4, 5, 6, 10, 12, 15, 20, 30)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for levels in LEVEL_COUNTS:
        tree = from_physical_level_sizes(_spread(N, levels))
        results[levels] = analyse(tree, p=P)
    return results


def test_shape_ablation_table(sweep, emit, benchmark):
    benchmark(lambda: analyse(
        from_physical_level_sizes(_spread(N, 6)), p=P
    ))
    rows = [
        [levels, m.spec if len(m.spec) < 30 else m.spec[:27] + "...",
         m.read_cost, round(m.write_cost_avg, 2),
         round(m.read_load, 4), round(m.write_load, 4),
         round(m.read_availability, 4), round(m.write_availability, 4)]
        for levels, m in sweep.items()
    ]
    emit(
        "ablation_tree_shape",
        format_table(
            ["|K_phy|", "tree", "RD cost", "WR cost", "L_RD", "L_WR",
             "RD avail", "WR avail"],
            rows,
            title=f"Tree-shape ablation (n={N}, p={P})",
        ),
    )


def test_write_quantities_improve_with_levels(sweep, benchmark):
    benchmark(lambda: None)
    counts = sorted(sweep)
    for a, b in zip(counts, counts[1:]):
        assert sweep[b].write_cost_avg <= sweep[a].write_cost_avg + 1e-9
        assert sweep[b].write_load <= sweep[a].write_load + 1e-9


def test_read_quantities_degrade_with_levels(sweep, benchmark):
    benchmark(lambda: None)
    counts = sorted(sweep)
    for a, b in zip(counts, counts[1:]):
        assert sweep[b].read_cost >= sweep[a].read_cost
        assert sweep[b].read_availability <= sweep[a].read_availability + 1e-9


def test_read_load_is_inverse_thinnest_level(sweep, benchmark):
    benchmark(lambda: None)
    for levels, m in sweep.items():
        assert m.read_load == pytest.approx(1.0 / m.d)


def test_endpoints_are_the_named_extremes(sweep, benchmark):
    benchmark(lambda: None)
    rowa_like = sweep[1]
    assert rowa_like.read_cost == 1
    assert rowa_like.write_cost_avg == N
    assert rowa_like.write_load == 1.0
    deep = sweep[30]
    assert deep.write_cost_avg == pytest.approx(2.0)
    assert deep.write_load == pytest.approx(1 / 30)
    assert deep.read_load == pytest.approx(0.5)


def test_write_availability_rises_then_saturates(sweep, benchmark):
    benchmark(lambda: None)
    counts = sorted(sweep)
    # a single wide level needs ALL replicas: worst write availability
    assert sweep[1].write_availability == min(
        m.write_availability for m in sweep.values()
    )
    # thin levels are individually completable: near-perfect availability
    assert sweep[30].write_availability > 0.999
