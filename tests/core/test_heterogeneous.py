"""Tests for heterogeneous (per-replica) availability analysis."""

import pytest

from repro.core import metrics
from repro.core.builder import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.quorums.availability import exact_availability


@pytest.fixture
def tree():
    return from_spec("1-3-5")


class TestScalarEquivalence:
    def test_uniform_mapping_matches_scalar(self, tree):
        p = 0.8
        mapping = {sid: p for sid in tree.replica_ids()}
        assert metrics.read_availability(tree, mapping) == pytest.approx(
            metrics.read_availability(tree, p)
        )
        assert metrics.write_availability(tree, mapping) == pytest.approx(
            metrics.write_availability(tree, p)
        )
        assert metrics.expected_write_load(tree, mapping) == pytest.approx(
            metrics.expected_write_load(tree, p)
        )


class TestHeterogeneousValues:
    def test_matches_exact_enumeration(self, tree):
        mapping = {0: 0.5, 1: 0.9, 2: 0.8, 3: 0.95, 4: 0.7, 5: 0.6, 6: 0.85, 7: 0.75}
        protocol = ArbitraryProtocol(tree)
        exact_read = exact_availability(
            list(protocol.read_quorums()), mapping, universe=protocol.universe
        )
        exact_write = exact_availability(
            protocol.write_quorums(), mapping, universe=protocol.universe
        )
        assert metrics.read_availability(tree, mapping) == pytest.approx(
            exact_read, abs=1e-9
        )
        assert metrics.write_availability(tree, mapping) == pytest.approx(
            exact_write, abs=1e-9
        )

    def test_dead_level_member_kills_writes_to_it(self, tree):
        mapping = {sid: 1.0 for sid in tree.replica_ids()}
        mapping[0] = 0.0  # one level-1 replica permanently down
        # writes fall back to level 2 only: availability = P(level2 all up) = 1
        assert metrics.write_availability(tree, mapping) == pytest.approx(1.0)
        mapping[3] = 0.0  # now break level 2 as well
        assert metrics.write_availability(tree, mapping) == pytest.approx(0.0)

    def test_reads_need_every_level(self, tree):
        mapping = {sid: 1.0 for sid in tree.replica_ids()}
        for sid in (0, 1, 2):  # all of level 1 down
            mapping[sid] = 0.0
        assert metrics.read_availability(tree, mapping) == pytest.approx(0.0)

    def test_one_strong_replica_per_level_suffices_for_reads(self, tree):
        mapping = {sid: 0.0 for sid in tree.replica_ids()}
        mapping[2] = 1.0
        mapping[7] = 1.0
        assert metrics.read_availability(tree, mapping) == pytest.approx(1.0)

    def test_invalid_probability_rejected(self, tree):
        mapping = {sid: 0.9 for sid in tree.replica_ids()}
        mapping[4] = 1.4
        with pytest.raises(ValueError):
            metrics.read_availability(tree, mapping)

    def test_missing_sid_raises(self, tree):
        with pytest.raises(KeyError):
            metrics.read_availability(tree, {0: 0.9})

    def test_weakest_link_dominates_write_side(self, tree):
        strong = {sid: 0.99 for sid in tree.replica_ids()}
        weak_level1 = dict(strong)
        for sid in (0, 1, 2):
            weak_level1[sid] = 0.5
        # level 2 is untouched, so write availability stays high...
        assert metrics.write_availability(tree, weak_level1) > 0.95
        # ...but read availability dips with the weakened level
        assert metrics.read_availability(tree, weak_level1) < (
            metrics.read_availability(tree, strong)
        )
