"""Process-pool fan-out primitive and deterministic seed derivation.

:func:`run_tasks` is the single dispatch point every parallel workload goes
through: it runs the task list inline for ``jobs <= 1`` and on a
``ProcessPoolExecutor`` otherwise, always returning results in task order.
Nothing about the task list may depend on ``jobs`` — that discipline (plus
the in-order merge folds downstream) is what makes a parallel run
bit-identical to the serial one.
"""

from __future__ import annotations

import multiprocessing
import random
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")

#: ``progress(done, total)`` callback signature.
ProgressCallback = Callable[[int, int], None]


def derive_seeds(master: int, count: int) -> list[int]:
    """``count`` independent 64-bit child seeds from one master seed.

    Uses ``getrandbits(64)`` on a dedicated child stream (the PR 1
    convention): deriving from ``random()`` floats would collapse the seed
    space to 53 bits and correlate the children.  The sequence depends only
    on ``master`` and position, so task k gets the same seed in every run
    regardless of job count.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = random.Random(master)
    return [rng.getrandbits(64) for _ in range(count)]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the loaded package); fall back quietly."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_tasks(
    fn: Callable[[Task], Result],
    items: Iterable[Task],
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    chunksize: int = 1,
) -> list[Result]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    Results come back in task order (``ProcessPoolExecutor.map`` preserves
    it), so callers can fold them with order-sensitive merges.  ``fn`` must
    be a module-level callable and every item picklable when ``jobs > 1``;
    ``chunksize`` batches small tasks to amortise IPC.
    """
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if chunksize < 1:
        raise ValueError("chunksize must be positive")
    tasks: Sequence[Task] = list(items)
    total = len(tasks)
    results: list[Result] = []
    if jobs == 1 or total <= 1:
        for index, task in enumerate(tasks):
            results.append(fn(task))
            if progress is not None:
                progress(index + 1, total)
        return results
    workers = min(jobs, total)
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as pool:
        for index, result in enumerate(
            pool.map(fn, tasks, chunksize=chunksize)
        ):
            results.append(result)
            if progress is not None:
                progress(index + 1, total)
    return results
