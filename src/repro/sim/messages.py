"""Typed messages exchanged between sites.

The coordinator/replica protocol is deliberately small:

* ``ReadRequest`` / ``ReadReply`` — fetch a key's value and timestamp;
* ``VersionRequest`` / ``VersionReply`` — fetch only the timestamp
  (the "obtain the highest version number" phase of a write);
* ``PrepareMessage`` / ``VoteMessage`` / ``CommitMessage`` /
  ``AbortMessage`` / ``AckMessage`` — two-phase commit for writes
  (Section 2.2: transactions with writes run 2PC across participants).

Every message carries the source and destination SIDs; clients and the
coordinator use negative SIDs so they can never collide with replicas.

Messages are hand-rolled slotted classes rather than frozen dataclasses:
they are the highest-volume allocation of the whole simulator (every
quorum round constructs one per member, both directions), and a flat
``__init__`` that assigns its slots directly constructs ~2.5x faster
than the generated dataclass one (measured: 0.6 us vs 1.5 us per
``ReadRequest``).  The classes stay immutable *by convention* — nothing
in the protocol mutates a message after construction — and each carries
its class name as the ``type_name`` attribute so the network's
per-message-type counters never pay a ``type(message).__name__`` lookup
on the hot path.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.sim.replica import ZERO_TIMESTAMP, Timestamp

_MESSAGE_IDS = itertools.count()
_next_message_id = _MESSAGE_IDS.__next__


class Message:
    """Base class: addressing plus a unique id for tracing."""

    __slots__ = ("src", "dst", "msg_id")

    #: Class name, precomputed for per-message-type counters.
    type_name = "Message"

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()

    def __repr__(self) -> str:
        names = [
            name
            for cls in reversed(type(self).__mro__)
            for name in getattr(cls, "__slots__", ())
        ]
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in names
        )
        return f"{type(self).__name__}({fields})"


class ReadRequest(Message):
    """Ask a replica for its current value+timestamp of ``key``."""

    __slots__ = ("key", "request_id")
    type_name = "ReadRequest"

    def __init__(
        self, src: int, dst: int, key: Any = None, request_id: int = 0
    ) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.key = key
        self.request_id = request_id


class ReadReply(Message):
    """A replica's value+timestamp answer to a :class:`ReadRequest`."""

    __slots__ = ("key", "request_id", "value", "timestamp")
    type_name = "ReadReply"

    def __init__(
        self,
        src: int,
        dst: int,
        key: Any = None,
        request_id: int = 0,
        value: Any = None,
        timestamp: Timestamp = ZERO_TIMESTAMP,
    ) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.key = key
        self.request_id = request_id
        self.value = value
        self.timestamp = timestamp


class VersionRequest(Message):
    """Ask a replica for only the timestamp of ``key``."""

    __slots__ = ("key", "request_id")
    type_name = "VersionRequest"

    def __init__(
        self, src: int, dst: int, key: Any = None, request_id: int = 0
    ) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.key = key
        self.request_id = request_id


class VersionReply(Message):
    """A replica's timestamp answer to a :class:`VersionRequest`."""

    __slots__ = ("key", "request_id", "timestamp")
    type_name = "VersionReply"

    def __init__(
        self,
        src: int,
        dst: int,
        key: Any = None,
        request_id: int = 0,
        timestamp: Timestamp = ZERO_TIMESTAMP,
    ) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.key = key
        self.request_id = request_id
        self.timestamp = timestamp


class PrepareMessage(Message):
    """2PC phase 1: ask a participant to prepare ``key := value``."""

    __slots__ = ("txid", "key", "value", "timestamp")
    type_name = "PrepareMessage"

    def __init__(
        self,
        src: int,
        dst: int,
        txid: int = 0,
        key: Any = None,
        value: Any = None,
        timestamp: Timestamp = ZERO_TIMESTAMP,
    ) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.txid = txid
        self.key = key
        self.value = value
        self.timestamp = timestamp


class VoteMessage(Message):
    """2PC phase 1 answer: the participant's commit vote."""

    __slots__ = ("txid", "vote_commit")
    type_name = "VoteMessage"

    def __init__(
        self, src: int, dst: int, txid: int = 0, vote_commit: bool = True
    ) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.txid = txid
        self.vote_commit = vote_commit


class CommitMessage(Message):
    """2PC phase 2: apply the prepared write."""

    __slots__ = ("txid",)
    type_name = "CommitMessage"

    def __init__(self, src: int, dst: int, txid: int = 0) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.txid = txid


class AbortMessage(Message):
    """2PC phase 2: discard the prepared write."""

    __slots__ = ("txid",)
    type_name = "AbortMessage"

    def __init__(self, src: int, dst: int, txid: int = 0) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.txid = txid


class AckMessage(Message):
    """Participant acknowledgement of a commit/abort decision."""

    __slots__ = ("txid", "committed")
    type_name = "AckMessage"

    def __init__(
        self, src: int, dst: int, txid: int = 0, committed: bool = True
    ) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.txid = txid
        self.committed = committed


class DecisionRequest(Message):
    """2PC termination protocol: a recovered participant asks the
    coordinator for the outcome of an in-doubt transaction."""

    __slots__ = ("txid",)
    type_name = "DecisionRequest"

    def __init__(self, src: int, dst: int, txid: int = 0) -> None:
        self.src = src
        self.dst = dst
        self.msg_id = _next_message_id()
        self.txid = txid
