"""Perf trajectory of the bitset quorum kernel vs. the frozenset reference.

Times enumeration+packing, exact availability (2^n live-set enumeration),
Monte-Carlo availability, bi-coterie verification, failure-aware selection,
and the LP membership-matrix build across the protocol zoo at several
sizes, on both the pure-Python reference paths and the packed kernel, and
writes ``benchmarks/results/BENCH_quorum_kernel.json`` — the baseline that
future performance PRs regress against.

Two tiers:

* ``--quick`` (and the pytest smoke test, used by the CI perf-smoke job):
  small sizes only, finishes in seconds;
* the default full run adds the headline cases — exact availability at
  n = 20/22 (the 2^n pure-Python worst case) and bi-coterie verification at
  the largest zoo sizes — and asserts the acceptance floors (>= 5x on exact
  availability at n = 20, >= 3x on the large bi-coterie checks).

Run directly::

    PYTHONPATH=src python benchmarks/bench_quorum_kernel.py [--quick] [--out P]
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

import numpy as np

try:
    from benchmarks.perf_harness import Case, run_suite, write_bench_json
except ImportError:  # direct `python benchmarks/bench_quorum_kernel.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from perf_harness import Case, run_suite, write_bench_json

from repro.protocols.zoo import quorum_system
from repro.quorums.availability import (
    _availability_by_universe_enumeration,
    _estimate_monte_carlo_reference,
    _normalise_probabilities,
)
from repro.quorums.base import SetSystem, _is_cross_intersecting_sets
from repro.quorums.bitset import (
    PackedQuorums,
    availability_by_universe_enumeration,
    estimate_availability_monte_carlo_packed,
)
from repro.quorums.load import (
    _membership_matrix_reference,
    _membership_matrix,
)
from repro.quorums.system import QuorumSystem


class StripedSystem(QuorumSystem):
    """Synthetic n-replica striped bi-coterie (multi-word mask stress)."""

    name = "striped"

    def __init__(self, n: int, stripes: int) -> None:
        self._n, self._stripes = n, stripes

    @property
    def universe(self):
        return frozenset(range(self._n))

    def read_quorums(self):
        width = self._n // self._stripes
        for s in range(self._stripes):
            yield frozenset(range(s * width, (s + 1) * width))

    def write_quorums(self):
        width = self._n // self._stripes
        for offset in range(width):
            yield frozenset(s * width + offset for s in range(self._stripes))


def _materialised(protocol: str, n: int):
    if protocol == "striped":
        system = StripedSystem(n, max(2, n // 16))
    else:
        system = quorum_system(protocol, n)
    return (
        system,
        tuple(system.read_quorums()),
        tuple(system.write_quorums()),
    )


def _pack_case(protocol: str, n: int) -> Case:
    # The kernel side packs through from_system: combinatorial protocols
    # enumerate their collections directly as integer masks (no frozenset
    # per quorum), which is how the packed consumers now build their
    # matrices.  The reference side is the frozenset path's setup cost —
    # materialising the same enumeration.
    system, reads, _ = _materialised(protocol, n)

    def reference():
        return len(tuple(system.read_quorums()))

    def kernel():
        return len(PackedQuorums.from_system(system, "read"))

    return Case(f"enumerate+pack/{system.name}/n={system.n}", reference, kernel)


def _exact_case(protocol: str, n: int, op: str, repeat: int) -> Case:
    system, reads, writes = _materialised(protocol, n)
    quorums = reads if op == "read" else writes
    probabilities = _normalise_probabilities(system.universe, 0.85)
    packed = PackedQuorums.from_quorums(quorums, universe=system.universe)
    return Case(
        f"exact_availability/{system.name}/n={system.n}/{op}",
        lambda: _availability_by_universe_enumeration(quorums, probabilities),
        lambda: availability_by_universe_enumeration(packed, probabilities),
        repeat=repeat,
    )


def _monte_carlo_case(protocol: str, n: int, samples: int) -> Case:
    system, reads, _ = _materialised(protocol, n)
    probabilities = _normalise_probabilities(system.universe, 0.85)
    packed = PackedQuorums.from_quorums(reads, universe=system.universe)
    return Case(
        f"monte_carlo/{system.name}/n={system.n}/samples={samples}",
        lambda: _estimate_monte_carlo_reference(
            reads, probabilities, samples, 0
        ),
        lambda: estimate_availability_monte_carlo_packed(
            packed, probabilities, samples, 0
        ),
    )


def _bicoterie_case(protocol: str, n: int, repeat: int) -> Case:
    system, reads, writes = _materialised(protocol, n)
    packed_reads = PackedQuorums.from_quorums(reads, universe=system.universe)
    packed_writes = PackedQuorums.from_quorums(writes, universe=system.universe)
    return Case(
        f"bicoterie/{system.name}/n={system.n}/m={len(reads)}x{len(writes)}",
        lambda: _is_cross_intersecting_sets(reads, writes),
        lambda: packed_reads.cross_intersects(packed_writes),
        repeat=repeat,
    )


def _selection_case(protocol: str, n: int, rounds: int = 20) -> Case:
    # The kernel side times the steady-state selection loop: the collection
    # is packed ONCE outside the timed region (exactly how SelectionIndex
    # amortises it across a simulation) and each round pays only the
    # live-mask pack plus the reservoir pick.  Re-packing per call — the
    # old shape of this case — benchmarked the pack cost, not selection,
    # and lost to the reference scan on every dense collection.
    system, reads, _ = _materialised(protocol, n)
    universe = sorted(system.universe)
    live_sets = [
        set(universe) - set(universe[k :: max(3, len(universe) // 4)])
        for k in range(rounds)
    ]
    packed = PackedQuorums.from_quorums(reads, universe=system.universe)

    def reference():
        rng = random.Random(0)
        return [
            QuorumSystem._select_by_scan(iter(reads), live, rng)
            for live in live_sets
        ]

    def kernel():
        rng = random.Random(0)
        picks = []
        for live in live_sets:
            row = packed.select(packed.pack_live(live), rng)
            picks.append(None if row is None else reads[row])
        return picks

    return Case(
        f"selection/{system.name}/n={system.n}/m={len(reads)}",
        reference,
        kernel,
    )


def _lp_membership_case(protocol: str, n: int) -> Case:
    # Kernel side extracts from the packed collection a CachedQuorumSystem
    # holds; the one-time pack cost is reported by the enumerate+pack cases.
    system, reads, _ = _materialised(protocol, n)
    set_system = SetSystem(reads, universe=system.universe)
    packed = PackedQuorums.from_quorums(reads, universe=system.universe)
    return Case(
        f"lp_membership/{system.name}/n={system.n}/m={len(reads)}",
        lambda: _membership_matrix_reference(set_system),
        lambda: _membership_matrix(set_system, packed=packed),
        agree=lambda a, b: (a[0] == b[0]).all() and a[1] == b[1],
    )


def build_cases(quick: bool) -> list[Case]:
    cases = [
        _pack_case("arbitrary", 13),
        _pack_case("majority", 13),
        _pack_case("grid", 16),
        _exact_case("arbitrary", 13, "read", repeat=3),
        _exact_case("hqc", 9, "read", repeat=3),
        _exact_case("grid", 16, "read", repeat=1),
        _monte_carlo_case("majority", 13, samples=20_000),
        _monte_carlo_case("tree-quorum", 15, samples=20_000),
        _bicoterie_case("majority", 13, repeat=3),
        _bicoterie_case("grid", 16, repeat=3),
        _bicoterie_case("tree-quorum", 15, repeat=3),
        _selection_case("majority", 13),
        _selection_case("grid", 16),
        _lp_membership_case("majority", 13),
        _lp_membership_case("hqc", 27),
    ]
    if not quick:
        cases += [
            # The 2^n pure-Python worst cases (acceptance: >= 5x at n = 20).
            _exact_case("arbitrary", 20, "read", repeat=1),
            _exact_case("arbitrary", 22, "write", repeat=1),
            # Bi-coterie verification at the largest enumerable zoo sizes
            # (acceptance: >= 3x).
            _bicoterie_case("majority", 15, repeat=1),
            _bicoterie_case("arbitrary", 64, repeat=1),
            _bicoterie_case("grid", 25, repeat=1),
            # Multi-word (n = 256 -> four 64-bit words) kernels.
            _monte_carlo_case("striped", 256, samples=100_000),
            _selection_case("striped", 256),
            _bicoterie_case("striped", 256, repeat=3),
            _monte_carlo_case("hqc", 27, samples=100_000),
            _selection_case("arbitrary", 64, rounds=3),
        ]
    return cases


def summarise(results: list[dict]) -> dict:
    def speedups(prefix: str) -> dict[str, float]:
        return {
            r["case"]: r["speedup"]
            for r in results
            if r["case"].startswith(prefix)
        }

    summary: dict = {
        "all_values_agree": all(r["values_agree"] for r in results),
        "median_speedup": float(
            np.median([r["speedup"] for r in results])
        ),
    }
    exact_n20 = [
        r["speedup"]
        for r in results
        if r["case"].startswith("exact_availability") and "/n=20/" in r["case"]
    ]
    if exact_n20:
        summary["exact_availability_n20_speedup"] = exact_n20[0]
    # Acceptance floor: the largest *zoo* collections.  The synthetic
    # striped/n=256 bi-coterie is excluded — its 16x16 collection is so
    # small that both sides finish in tens of microseconds and the ratio
    # is timing noise.
    large_bicoterie = [
        speedup
        for case, speedup in speedups("bicoterie").items()
        if "striped" not in case
        and any(f"/n={n}/" in case for n in (15, 25, 64))
    ]
    if large_bicoterie:
        summary["bicoterie_largest_min_speedup"] = min(large_bicoterie)
    return summary


def run(quick: bool, out: str | None = None) -> dict:
    results = run_suite(build_cases(quick))
    summary = summarise(results)
    path = write_bench_json("quorum_kernel", results, summary, out=out)
    print(f"\nwrote {path}")
    print(f"summary: {summary}")
    assert summary["all_values_agree"], "kernel/reference value mismatch"
    if not quick:
        assert summary["exact_availability_n20_speedup"] >= 5.0
        assert summary["bicoterie_largest_min_speedup"] >= 3.0
    return summary


def test_quorum_kernel_perf_smoke(emit):
    """CI smoke: quick tier, every kernel value identical to its reference.

    Writes to a ``_smoke`` JSON so a local pytest run never clobbers the
    recorded full-run trajectory in ``BENCH_quorum_kernel.json``.
    """
    from benchmarks.perf_harness import RESULTS_DIR

    summary = run(
        quick=True, out=str(RESULTS_DIR / "BENCH_quorum_kernel_smoke.json")
    )
    emit(
        "quorum_kernel_smoke",
        "bitset kernel perf smoke: "
        f"median speedup {summary['median_speedup']:.1f}x, "
        f"values agree: {summary['all_values_agree']}",
    )
    assert summary["all_values_agree"]
    # The kernel must win on balance even at CI-sized instances.
    assert summary["median_speedup"] >= 1.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes only (CI perf-smoke tier)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default benchmarks/results/BENCH_quorum_kernel.json)",
    )
    arguments = parser.parse_args()
    run(quick=arguments.quick, out=arguments.out)
