"""Set systems, quorum systems, coteries and bi-coteries.

These are Definitions 2.1-2.3 of the paper (themselves standard notions from
the quorum-system literature).  A *set system* is a collection of subsets of
a finite universe; a *quorum system* additionally satisfies the pairwise
intersection property; a *coterie* is a quorum system in which no quorum
contains another; and a *bi-coterie* keeps separate read and write quorum
collections such that every read quorum intersects every write quorum.

Quorums are stored as ``frozenset`` instances so they are hashable and
immutable; universes are stored as ``frozenset`` as well.  Element type is
generic but in this library elements are almost always replica identifiers
(small integers) — integer collections are dispatched to the packed bitmask
kernel in :mod:`repro.quorums.bitset`, with the pure-Python frozenset loops
kept both as the generic-element fallback and as the reference the kernel
is property-tested against.
"""

from __future__ import annotations

from collections.abc import Collection, Hashable, Iterable, Iterator
from typing import TypeVar

import numpy as np

from repro.quorums.bitset import try_pack, try_pack_pair

Element = TypeVar("Element", bound=Hashable)


def _freeze(sets: Iterable[Collection[Element]]) -> tuple[frozenset[Element], ...]:
    """Normalise an iterable of collections into a tuple of frozensets."""
    return tuple(frozenset(s) for s in sets)


def _is_intersecting_sets(frozen: tuple[frozenset[Element], ...]) -> bool:
    """Pure-Python pairwise intersection check (kernel reference path)."""
    for i, a in enumerate(frozen):
        for b in frozen[i + 1 :]:
            if a.isdisjoint(b):
                return False
    return True


def is_intersecting(sets: Iterable[Collection[Element]]) -> bool:
    """Return True iff every pair of sets has a non-empty intersection.

    This is the defining property of a quorum system (Definition 2.1).
    The check is quadratic in the number of sets; integer universes run on
    the bitset kernel (one vectorised AND per set against all others).
    """
    frozen = _freeze(sets)
    packed = try_pack(frozen)
    if packed is not None:
        # Self cross-intersection: the diagonal (a vs a) holds for every
        # non-empty set, and an empty set fails against itself exactly as
        # it fails pairwise in the reference — so the checks coincide
        # whenever there is more than one set.
        if len(frozen) <= 1:
            return True
        return packed.cross_intersects(packed)
    return _is_intersecting_sets(frozen)


def _is_antichain_sets(frozen: tuple[frozenset[Element], ...]) -> bool:
    """Pure-Python antichain check (kernel reference path)."""
    for i, a in enumerate(frozen):
        for j, b in enumerate(frozen):
            if i != j and a <= b:
                return False
    return True


def is_antichain(sets: Iterable[Collection[Element]]) -> bool:
    """Return True iff no set in the collection is a subset of another.

    This is the minimality property of a coterie (Definition 2.2).
    Duplicate sets violate the property (each is a subset of the other).
    """
    frozen = _freeze(sets)
    packed = try_pack(frozen)
    if packed is not None:
        return bool((packed.superset_counts() == 1).all())
    return _is_antichain_sets(frozen)


def _is_cross_intersecting_sets(
    reads: Iterable[Collection[Element]],
    writes: Iterable[Collection[Element]],
) -> bool:
    """Pure-Python O(R·W) pairwise check (kernel reference path)."""
    frozen_writes = _freeze(writes)
    for read in reads:
        read_set = frozenset(read)
        for write in frozen_writes:
            if read_set.isdisjoint(write):
                return False
    return True


def is_cross_intersecting(
    reads: Iterable[Collection[Element]], writes: Iterable[Collection[Element]]
) -> bool:
    """Return True iff every read set intersects every write set.

    This is the bi-coterie property (Definition 2.3) and the correctness
    condition for one-copy-equivalent replica control: a read quorum must
    always see at least one replica touched by the latest write.  Integer
    universes are checked on the bitset kernel — all R·W pairs tested with
    batched word-wise ANDs instead of per-pair ``isdisjoint`` calls.
    """
    frozen_reads = _freeze(reads)
    frozen_writes = _freeze(writes)
    packed = try_pack_pair(frozen_reads, frozen_writes)
    if packed is not None:
        packed_reads, packed_writes = packed
        return packed_reads.cross_intersects(packed_writes)
    return _is_cross_intersecting_sets(frozen_reads, frozen_writes)


def minimise(sets: Iterable[Collection[Element]]) -> tuple[frozenset[Element], ...]:
    """Drop every set that is a (non-strict) superset of another set.

    Applying :func:`minimise` to the quorums of a quorum system yields a
    coterie that *dominates* the original system: it has the same (or better)
    load and availability.  Ties between duplicate sets keep one copy.
    Integer universes run the dominated-by check on the bitset kernel; the
    candidate order (and therefore the result) is identical to the
    pure-Python path.
    """
    frozen = sorted(set(_freeze(sets)), key=len)
    packed = try_pack(frozen)
    if packed is not None and len(frozen) > 2:
        rows = packed.matrix
        kept_rows: list[int] = []
        kept: list[frozenset[Element]] = []
        for row, candidate in enumerate(frozen):
            if kept_rows:
                kept_matrix = rows[kept_rows]
                dominated = (
                    (kept_matrix & rows[row]) == kept_matrix
                ).all(axis=1)
                if bool(np.any(dominated)):
                    continue
            kept_rows.append(row)
            kept.append(candidate)
        return tuple(kept)
    kept = []
    for candidate in frozen:
        if not any(existing <= candidate for existing in kept):
            kept.append(candidate)
    return tuple(kept)


class SetSystem:
    """A collection of subsets of a finite universe (Definition 2.1).

    Parameters
    ----------
    quorums:
        The member sets.  They are deduplicated only by identity of content
        order, i.e. identical sets are kept once.
    universe:
        The ground set.  If omitted it defaults to the union of the quorums.

    Raises
    ------
    ValueError
        If any quorum is empty or contains elements outside the universe.
    """

    def __init__(
        self,
        quorums: Iterable[Collection[Element]],
        universe: Collection[Element] | None = None,
    ) -> None:
        self._quorums = _freeze(quorums)
        if universe is None:
            union: set[Element] = set()
            for quorum in self._quorums:
                union |= quorum
            self._universe = frozenset(union)
        else:
            self._universe = frozenset(universe)
        self._validate()

    def _validate(self) -> None:
        if not self._quorums:
            raise ValueError("a set system needs at least one set")
        for quorum in self._quorums:
            if not quorum:
                raise ValueError("quorums must be non-empty")
            if not quorum <= self._universe:
                stray = sorted(quorum - self._universe)
                raise ValueError(f"quorum elements outside universe: {stray}")

    @property
    def quorums(self) -> tuple[frozenset[Element], ...]:
        """The member sets, in construction order."""
        return self._quorums

    @property
    def universe(self) -> frozenset[Element]:
        """The ground set the quorums are drawn from."""
        return self._universe

    def __len__(self) -> int:
        return len(self._quorums)

    def __iter__(self) -> Iterator[frozenset[Element]]:
        return iter(self._quorums)

    def __contains__(self, candidate: Collection[Element]) -> bool:
        return frozenset(candidate) in self._quorums

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(m={len(self._quorums)}, "
            f"n={len(self._universe)})"
        )

    def smallest_quorum_size(self) -> int:
        """Size of the smallest quorum (drives the Naor-Wool load bound)."""
        return min(len(q) for q in self._quorums)

    def largest_quorum_size(self) -> int:
        """Size of the largest quorum."""
        return max(len(q) for q in self._quorums)

    def element_frequencies(self) -> dict[Element, int]:
        """Map each universe element to the number of quorums containing it."""
        counts: dict[Element, int] = {element: 0 for element in self._universe}
        for quorum in self._quorums:
            for element in quorum:
                counts[element] += 1
        return counts


class QuorumSystem(SetSystem):
    """A set system with the pairwise intersection property (Definition 2.1)."""

    def _validate(self) -> None:
        super()._validate()
        if not is_intersecting(self._quorums):
            raise ValueError("quorum system violates the intersection property")


class Coterie(QuorumSystem):
    """A quorum system with the minimality property (Definition 2.2)."""

    def _validate(self) -> None:
        super()._validate()
        if not is_antichain(self._quorums):
            raise ValueError("coterie violates the minimality property")

    @classmethod
    def from_quorum_system(cls, system: QuorumSystem) -> "Coterie":
        """Build the dominating coterie of a quorum system by minimisation."""
        return cls(minimise(system.quorums), universe=system.universe)


class BiCoterie:
    """Separate read and write quorum collections (Definition 2.3).

    Every read quorum must intersect every write quorum; read quorums need
    not intersect each other, and likewise for writes.  The paper's arbitrary
    protocol is a bi-coterie, as are ROWA and most read/write-asymmetric
    replica control protocols.

    Note that the write quorums of a *correct replica control protocol* are
    normally also required to intersect each other (so two concurrent writes
    serialise); the paper relies on a centralised concurrency-control scheme
    (Section 2.2) for write/write synchronisation, so Definition 2.3 only
    demands read/write intersection.  :meth:`writes_intersect` reports the
    stronger property for callers that want it.
    """

    def __init__(
        self,
        read_quorums: Iterable[Collection[Element]],
        write_quorums: Iterable[Collection[Element]],
        universe: Collection[Element] | None = None,
    ) -> None:
        reads = _freeze(read_quorums)
        writes = _freeze(write_quorums)
        if not reads:
            raise ValueError("a bi-coterie needs at least one read quorum")
        if not writes:
            raise ValueError("a bi-coterie needs at least one write quorum")
        if universe is None:
            union: set[Element] = set()
            for quorum in reads + writes:
                union |= quorum
            universe = union
        self._universe = frozenset(universe)
        for quorum in reads + writes:
            if not quorum:
                raise ValueError("quorums must be non-empty")
            if not quorum <= self._universe:
                stray = sorted(quorum - self._universe)
                raise ValueError(f"quorum elements outside universe: {stray}")
        if not is_cross_intersecting(reads, writes):
            raise ValueError(
                "bi-coterie violates the read/write intersection property"
            )
        self._reads = reads
        self._writes = writes

    @property
    def read_quorums(self) -> tuple[frozenset[Element], ...]:
        """The read quorum collection R."""
        return self._reads

    @property
    def write_quorums(self) -> tuple[frozenset[Element], ...]:
        """The write quorum collection W."""
        return self._writes

    @property
    def universe(self) -> frozenset[Element]:
        """The ground set."""
        return self._universe

    def writes_intersect(self) -> bool:
        """True iff the write quorums pairwise intersect (coterie-style)."""
        return is_intersecting(self._writes)

    def reads_intersect(self) -> bool:
        """True iff the read quorums pairwise intersect."""
        return is_intersecting(self._reads)

    def as_read_system(self) -> SetSystem:
        """The read quorums as a plain set system (for load analysis)."""
        return SetSystem(self._reads, universe=self._universe)

    def as_write_system(self) -> SetSystem:
        """The write quorums as a plain set system (for load analysis)."""
        return SetSystem(self._writes, universe=self._universe)

    def __repr__(self) -> str:
        return (
            f"BiCoterie(m_R={len(self._reads)}, m_W={len(self._writes)}, "
            f"n={len(self._universe)})"
        )
