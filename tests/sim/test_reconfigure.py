"""Unit and integration tests for online tree reconfiguration."""

from repro.core.builder import from_spec, mostly_read, mostly_write
from repro.sim.coordinator import QuorumCoordinator
from repro.sim.engine import SimulationConfig, build_simulation
from repro.sim.reconfigure import ReconfigStatus, TreeReconfigurer


class Rig:
    """A running system with a driver loop and a reconfigurer."""

    def __init__(self, spec="1-3-5", seed=0, clients=1, **config_kwargs):
        self.tree = from_spec(spec)
        config = SimulationConfig(
            tree=self.tree, seed=seed, clients=clients, **config_kwargs
        )
        (self.scheduler, _workload, self.monitor,
         self.network, self.sites) = build_simulation(config)
        self.coordinator: QuorumCoordinator = self.network.endpoint(-1)
        self.reconfigurer = TreeReconfigurer(self.coordinator)

    def run(self, op) -> object:
        box = []
        op(box.append)
        while not box:
            assert self.scheduler.step(), "stalled"
        return box[0]

    def write(self, key, value):
        return self.run(lambda cb: self.coordinator.write(key, value, cb))

    def read(self, key):
        return self.run(lambda cb: self.coordinator.read(key, cb))

    def reconfigure(self, new_tree, keys):
        return self.run(
            lambda cb: self.reconfigurer.reconfigure(new_tree, keys, cb)
        )


class TestReconfiguration:
    def test_successful_migration(self):
        rig = Rig()
        for i in range(4):
            assert rig.write(f"k{i}", f"v{i}").success
        outcome = rig.reconfigure(mostly_write(8), [f"k{i}" for i in range(4)])
        assert outcome.success
        assert outcome.keys_migrated == 4
        assert outcome.duration > 0
        # the new system is live
        assert rig.coordinator.system.tree.spec() == mostly_write(8).spec()

    def test_values_survive_the_shape_change(self):
        rig = Rig()
        expected = {}
        for i in range(5):
            outcome = rig.write(f"k{i}", i * 10)
            expected[f"k{i}"] = i * 10
            assert outcome.success
        assert rig.reconfigure(mostly_read(8), list(expected)).success
        for key, value in expected.items():
            result = rig.read(key)
            assert result.success and result.value == value

    def test_new_tree_quorums_serve_reads(self):
        """After migrating to MOSTLY-READ, a single replica answers reads."""
        rig = Rig()
        rig.write("k", "v")
        assert rig.reconfigure(mostly_read(8), ["k"]).success
        result = rig.read("k")
        assert result.success
        assert len(result.quorum) == 1  # one physical level -> cost 1

    def test_unwritten_keys_skipped(self):
        rig = Rig()
        rig.write("present", "v")
        outcome = rig.reconfigure(mostly_write(8), ["present", "absent"])
        assert outcome.success
        assert outcome.keys_migrated == 1  # 'absent' had nothing to move

    def test_replica_count_must_match(self):
        """A shape for the wrong fleet reports BAD_TREE through on_done.

        Regression: this used to raise ``ValueError`` out of the
        ``reconfigure`` call itself — one synchronous exception among
        otherwise callback-reported failures, which event-driven callers
        (the engine's scheduled reshape) would never catch.
        """
        rig = Rig()
        box = []
        rig.reconfigurer.reconfigure(mostly_read(9), [], box.append)
        assert box and box[0].status is ReconfigStatus.BAD_TREE
        assert not box[0].success
        # the online path reports it the same way
        online = []
        rig.reconfigurer.reconfigure_online(mostly_read(9), [], online.append)
        assert online and online[0].status is ReconfigStatus.BAD_TREE

    def test_concurrent_reconfigurations_refused(self):
        """A second reconfiguration while one runs reports IN_PROGRESS."""
        rig = Rig()
        rig.write("k", "v")
        first, second = [], []
        rig.reconfigurer.reconfigure(mostly_write(8), ["k"], first.append)
        rig.reconfigurer.reconfigure(mostly_read(8), ["k"], second.append)
        assert second and second[0].status is ReconfigStatus.IN_PROGRESS
        while not first:
            assert rig.scheduler.step(), "stalled"
        assert first[0].success

    def test_wait_for_quiescence(self):
        """``wait=True`` pauses the pool and migrates once traffic drains."""
        rig = Rig()
        rig.write("k", "v0")
        wbox, box = [], []
        rig.coordinator.write("k", "v1", wbox.append)  # in flight
        rig.reconfigurer.reconfigure(
            mostly_write(8), ["k"], box.append, wait=True
        )
        while not box:
            assert rig.scheduler.step(), "stalled"
        assert wbox and wbox[0].success
        assert box[0].success
        result = rig.read("k")
        assert result.success and result.value == "v1"

    def test_not_quiescent_refused(self):
        rig = Rig()
        rig.coordinator.write("k", "v", lambda _outcome: None)  # in flight
        box = []
        rig.reconfigurer.reconfigure(mostly_read(8), ["k"], box.append)
        assert box and box[0].status is ReconfigStatus.NOT_QUIESCENT
        rig.scheduler.run()  # drain the in-flight write

    def test_failed_read_aborts_migration_safely(self):
        rig = Rig()
        rig.write("k", "v")
        for sid in (0, 1, 2):  # kill level 1: reads become impossible
            rig.sites[sid].crash()
        old_system = rig.coordinator.system
        outcome = rig.reconfigure(mostly_write(8), ["k"])
        assert not outcome.success
        assert outcome.status is ReconfigStatus.READ_FAILED
        assert outcome.failed_key == "k"
        assert rig.coordinator.system is old_system  # no switch

    def test_failed_write_aborts_migration_safely(self):
        rig = Rig()
        rig.write("k", "v")
        # mostly_write(8) levels are (0,1),(2,3),(4,5),(6,7): killing one
        # replica per pair breaks every NEW write quorum while the old tree
        # stays readable (0 serves level {0,1,2}; 3,5,7 serve {3..7}).
        for sid in (1, 2, 4, 6):
            rig.sites[sid].crash()
        outcome = rig.reconfigure(mostly_write(8), ["k"])
        assert not outcome.success
        assert outcome.status is ReconfigStatus.WRITE_FAILED

    def test_old_tree_still_consistent_after_aborted_migration(self):
        rig = Rig()
        rig.write("k", "old")
        for sid in (1, 2, 4, 6):
            rig.sites[sid].crash()
        assert not rig.reconfigure(mostly_write(8), ["k"]).success
        for sid in (1, 2, 4, 6):
            rig.sites[sid].recover()
        result = rig.read("k")
        assert result.success and result.value == "old"

    def test_round_trip_reconfiguration(self):
        """1-3-5 -> MOSTLY-WRITE -> back, values intact throughout."""
        rig = Rig()
        rig.write("k", "first")
        assert rig.reconfigure(mostly_write(8), ["k"]).success
        rig.write("k", "second")
        assert rig.reconfigure(from_spec("1-3-5"), ["k"]).success
        result = rig.read("k")
        assert result.success and result.value == "second"

    def test_writes_after_migration_use_new_levels(self):
        rig = Rig()
        assert rig.reconfigure(mostly_write(8), []).success
        outcome = rig.write("k", "v")
        assert outcome.success
        assert len(outcome.quorum) == 2  # a MOSTLY-WRITE level

    def test_pool_peers_switch_trees_with_the_group(self):
        """Regression (pool-peer stale tree): the swap must be group-scoped.

        Two coordinators share one lock manager / version floor (a shard
        pool).  Migrating through coordinator A alone used to leave B on
        the old tree: B's old-tree write quorums need not intersect A's
        new-tree read quorums, so A serves stale reads.
        """
        rig = Rig(clients=2)
        a = rig.coordinator
        b: QuorumCoordinator = rig.network.endpoint(-2)
        assert rig.run(lambda cb: a.write("k", "v0", cb)).success
        assert rig.reconfigure(mostly_read(8), ["k"]).success
        # the peer writes after the swap; pre-fix it still uses 1-3-5
        assert rig.run(lambda cb: b.write("k", "v1", cb)).success
        for _ in range(8):
            result = rig.run(lambda cb: a.read("k", cb))
            assert result.success
            assert result.value == "v1", "stale read from a pool peer's write"

    def test_client_write_during_migration_not_lost(self):
        """Regression (quiescence TOCTOU): traffic must stay paused.

        ``reconfigure()`` checks ``is_quiescent()`` once at the start.  A
        client write submitted mid-migration used to race the per-key
        re-write: it version-rounds on the old tree, then the migration
        re-writes the *old* value at a higher version through the new
        tree, and the client's update is lost after the swap.
        """
        rig = Rig()
        assert rig.write("k", "v0").success
        box, wbox = [], []
        rig.reconfigurer.reconfigure(mostly_write(8), ["k"], box.append)
        # the quiescence check has passed; this write sneaks into the window
        rig.coordinator.write("k", "v1", wbox.append)
        while not (box and wbox):
            assert rig.scheduler.step(), "stalled"
        assert box[0].success
        assert wbox[0].success
        result = rig.read("k")
        assert result.success
        assert result.value == "v1", "migration reinstated the old value"

    def test_migrated_version_dominates_everywhere(self):
        """The re-written copy must supersede stale old-level copies."""
        rig = Rig()
        first = rig.write("k", "v")
        assert rig.reconfigure(mostly_write(8), ["k"]).success
        # every replica that now holds k has a version above the original
        holders = [
            site for site in rig.sites if site.store.read("k").value is not None
        ]
        assert holders
        for site in holders:
            entry = site.store.read("k")
            if entry.timestamp.version > first.timestamp.version:
                assert entry.value == "v"
