"""Integration: simulator measurements converge to the closed forms.

These are the repository's ground-truth experiments: the full message-level
stack (sites, network, locks, 2PC) must reproduce the paper's analytical
communication costs, per-replica loads and availabilities.
"""

import pytest

from repro.core import analyse, from_spec, metrics, recommended_tree
from repro.sim import BernoulliFailures, SimulationConfig, WorkloadSpec, simulate


@pytest.fixture(scope="module")
def failure_free_result():
    return simulate(
        SimulationConfig(
            tree=from_spec("1-3-5"),
            workload=WorkloadSpec(operations=3000, read_fraction=0.5, keys=16),
            seed=0,
        )
    )


class TestFailureFree:
    def test_costs_match(self, failure_free_result):
        tree = from_spec("1-3-5")
        summary = failure_free_result.summary()
        assert summary["read_cost"] == pytest.approx(metrics.read_cost(tree))
        assert summary["write_cost"] == pytest.approx(
            metrics.write_cost_avg(tree), rel=0.05
        )

    def test_loads_match(self, failure_free_result):
        tree = from_spec("1-3-5")
        summary = failure_free_result.summary()
        assert summary["read_load"] == pytest.approx(
            metrics.read_load(tree), rel=0.15
        )
        assert summary["write_load"] == pytest.approx(
            metrics.write_load(tree), rel=0.15
        )

    def test_everything_succeeds(self, failure_free_result):
        assert failure_free_result.monitor.reads.availability == 1.0
        assert failure_free_result.monitor.writes.availability == 1.0

    def test_load_spread_is_uniform_within_levels(self, failure_free_result):
        """The uniform strategy loads same-level replicas equally."""
        tree = from_spec("1-3-5")
        reads = failure_free_result.monitor.per_replica_read_load()
        for k in tree.physical_levels:
            sids = tree.replica_ids_at(k)
            values = [reads[sid] for sid in sids]
            expected = 1.0 / tree.m_phy(k)
            for value in values:
                assert value == pytest.approx(expected, rel=0.2)


class TestAvailabilityConvergence:
    @pytest.mark.parametrize("p", [0.6, 0.75, 0.9])
    def test_measured_matches_formula(self, p):
        tree = from_spec("1-3-5")
        result = simulate(
            SimulationConfig(
                tree=tree,
                workload=WorkloadSpec(
                    operations=6000, read_fraction=0.5, keys=64,
                    arrival="poisson", rate=0.25,
                ),
                failures=BernoulliFailures(p=p, seed=11, resample_every=40.0),
                max_attempts=1,
                timeout=8.0,
                seed=13,
            )
        )
        summary = result.summary()
        assert summary["read_availability"] == pytest.approx(
            metrics.read_availability(tree, p), abs=0.035
        )
        assert summary["write_availability"] == pytest.approx(
            metrics.write_availability(tree, p), abs=0.05
        )

    def test_deeper_tree_write_availability(self):
        tree = recommended_tree(32)
        p = 0.85
        result = simulate(
            SimulationConfig(
                tree=tree,
                workload=WorkloadSpec(
                    operations=4000, read_fraction=0.0, keys=64,
                    arrival="poisson", rate=0.2,
                ),
                failures=BernoulliFailures(p=p, seed=3, resample_every=50.0),
                max_attempts=1,
                timeout=8.0,
                seed=3,
            )
        )
        assert result.summary()["write_availability"] == pytest.approx(
            metrics.write_availability(tree, p), abs=0.05
        )


class TestConfigurationContrast:
    """The paper's qualitative trade-off, measured end to end."""

    def _run(self, tree, read_fraction):
        return simulate(
            SimulationConfig(
                tree=tree,
                workload=WorkloadSpec(
                    operations=1500, read_fraction=read_fraction, keys=16
                ),
                seed=21,
            )
        ).summary()

    def test_mostly_read_vs_mostly_write_costs(self):
        from repro.core.builder import mostly_read, mostly_write

        reads_cheap = self._run(mostly_read(9), read_fraction=0.5)
        writes_cheap = self._run(mostly_write(9), read_fraction=0.5)
        assert reads_cheap["read_cost"] == 1.0
        assert reads_cheap["write_cost"] == 9.0
        assert writes_cheap["read_cost"] == 4.0
        assert writes_cheap["write_cost"] < 3.0

    def test_measured_matches_analyse_summary(self):
        tree = recommended_tree(30)
        summary = self._run(tree, read_fraction=0.5)
        predicted = analyse(tree, p=1.0)
        assert summary["read_cost"] == pytest.approx(predicted.read_cost)
        assert summary["write_cost"] == pytest.approx(
            predicted.write_cost_avg, rel=0.1
        )
