"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_analyse_takes_spec(self):
        args = build_parser().parse_args(["analyse", "1-3-5", "--p", "0.8"])
        assert args.spec == "1-3-5"
        assert args.p == 0.8

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.n == 48 and args.read_fraction == 0.5


class TestCommands:
    def test_example_prints_table1(self, capsys):
        assert main(["example"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "0.9706" in output      # RD_availability(0.7)
        assert "0.7733" in output     # E[L_WR] (paper rounds to 0.775)

    def test_fig2(self, capsys):
        assert main(["fig2", "--p", "0.7"]) == 0
        output = capsys.readouterr().out
        assert "read_cost" in output and "MOSTLY-READ" in output

    def test_fig3_and_fig4(self, capsys):
        assert main(["fig3"]) == 0
        assert "read_load" in capsys.readouterr().out
        assert main(["fig4"]) == 0
        assert "write_load" in capsys.readouterr().out

    def test_survey(self, capsys):
        assert main(["survey", "--n", "121"]) == 0
        output = capsys.readouterr().out
        assert "HQC" in output and "ROWA" in output

    def test_analyse(self, capsys):
        assert main(["analyse", "1-3-5", "--p", "0.7"]) == 0
        output = capsys.readouterr().out
        assert "0.4534" in output      # write availability

    def test_tune(self, capsys):
        assert main(["tune", "--n", "24", "--read-fraction", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "1-24" in output        # pure reads -> one wide level

    def test_simulate(self, capsys):
        assert main([
            "simulate", "1-3-5", "--operations", "200", "--seed", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated" in output
        assert "messages" in output

    def test_simulate_with_failures(self, capsys):
        assert main([
            "simulate", "1-3-5", "--operations", "300", "--p", "0.8",
        ]) == 0
        assert "availability" in capsys.readouterr().out
