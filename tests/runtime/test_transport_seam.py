"""Transport-seam regression tests.

The protocol layer (coordinator, site, locks, leases, retries) may only
touch the surface in :mod:`repro.runtime.interfaces`.  These tests run
the full protocol over :class:`~repro.runtime.loopback.LoopbackTransport`
— a transport that deliberately has NO ``scheduler`` attribute — so any
code path that still reaches for simulator internals
(``network.scheduler``, cached ``Scheduler`` references) fails loudly.
Before the seam fix, ``QuorumCoordinator.__init__`` and
``Site.__init__`` both did ``network.scheduler`` and the leased-read
completion path scheduled via a cached simulator reference: every test
in this module failed with ``AttributeError``.
"""

import random

import pytest

from repro.core.builder import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.runtime.loopback import LoopbackTransport
from repro.sim.coordinator import QuorumCoordinator
from repro.sim.events import Scheduler
from repro.sim.leases import LeaseCache
from repro.sim.locks import LockManager
from repro.sim.site import Site


def _build(spec="1-3", delay=0.1, leases=False, batch_window=0.0):
    clock = Scheduler()
    transport = LoopbackTransport(clock, delay=delay)
    assert not hasattr(transport, "scheduler")  # the point of the suite
    system = ArbitraryProtocol(from_spec(spec))
    n = len(system.universe)
    sites = [Site(sid, transport) for sid in range(n)]
    locks = LockManager(clock)
    lease_cache = (
        LeaseCache(epoch=transport.current_liveness_epoch) if leases else None
    )
    coordinator = QuorumCoordinator(
        sid=-1,
        network=transport,
        system=system,
        locks=locks,
        detector=lambda sid: sites[sid].up,
        rng=random.Random(7),
        timeout=10.0,
        writer_id=n,
        liveness_epoch=transport.current_liveness_epoch,
        leases=lease_cache,
        batch_window=batch_window,
    )
    return clock, transport, sites, coordinator


class TestProtocolOverSeamOnlyTransport:
    def test_write_then_read_completes(self):
        clock, transport, sites, coordinator = _build()
        outcomes = []
        coordinator.write("k", "v1", outcomes.append)
        clock.run()
        coordinator.read("k", outcomes.append)
        clock.run()
        assert [o.success for o in outcomes] == [True, True]
        assert outcomes[1].value == "v1"
        assert outcomes[1].timestamp.version == 1
        assert transport.sent > 0 and transport.dropped == 0

    def test_crash_retry_and_timeout_go_through_the_clock(self):
        clock, transport, sites, coordinator = _build(spec="1-3")
        outcomes = []
        coordinator.write("k", "v1", outcomes.append)
        clock.run()
        sites[2].crash()  # 1-3 write quorum needs all three: writes die
        coordinator.read("k", outcomes.append)  # reads survive
        clock.run()
        coordinator.write("k", "v2", outcomes.append)
        clock.run()
        assert [o.success for o in outcomes] == [True, True, False]
        # The failure consumed real (virtual) time through the seam clock
        # — unavailability retries are scheduled, not synchronous.
        assert clock.now > 0.0

    def test_site_recovery_termination_protocol_over_seam(self):
        clock, transport, sites, coordinator = _build(spec="1-3")
        outcomes = []
        coordinator.write("k", "v1", outcomes.append)
        clock.run()
        sites[1].crash()
        sites[1].recover()  # DecisionRequest flows back through the seam
        clock.run()
        assert outcomes[0].success

    def test_batching_flush_timer_uses_seam_clock(self):
        clock, transport, sites, coordinator = _build(batch_window=0.5)
        outcomes = []
        coordinator.write("k", "v", outcomes.append)
        clock.run()
        coordinator.read("k", outcomes.append)
        coordinator.read("k", outcomes.append)  # coalesces in the window
        clock.run()
        assert [o.success for o in outcomes] == [True, True, True]
        assert outcomes[1].value == "v" and outcomes[2].value == "v"


class TestLeasedReadDelivery:
    """The leased-read fast path must deliver through the seam clock."""

    def _leased_setup(self):
        clock, transport, sites, coordinator = _build(leases=True)
        outcomes = []
        coordinator.write("k", "v1", outcomes.append)  # write-through grant
        clock.run()
        assert outcomes[0].success
        return clock, coordinator, outcomes

    def test_leased_read_is_asynchronous(self):
        clock, coordinator, outcomes = self._leased_setup()
        coordinator.read("k", outcomes.append)
        # Regression: delivery must be scheduled, never synchronous —
        # a closed-loop caller would otherwise recurse into itself.
        assert len(outcomes) == 1
        clock.run()
        assert len(outcomes) == 2
        assert outcomes[1].leased and outcomes[1].value == "v1"

    def test_leased_delivery_preserves_event_order(self):
        clock, coordinator, outcomes = self._leased_setup()
        order = []
        coordinator.read("k", lambda o: order.append("read-1"))
        clock.call_later(0.0, lambda: order.append("marker"))
        coordinator.read("k", lambda o: order.append("read-2"))
        clock.run()
        # Zero-delay events fire in scheduling order on both backends
        # (heap (time, seq) order / asyncio FIFO): the first leased read
        # precedes the foreign marker event, the second follows it.
        assert order == ["read-1", "marker", "read-2"]


class TestSeamSurface:
    def test_coordinator_clock_and_legacy_alias(self):
        clock, transport, sites, coordinator = _build()
        assert coordinator.clock is clock
        # Legacy consumers (reconfiguration, the engine) use .scheduler;
        # it must resolve to the same seam clock on any transport.
        assert coordinator.scheduler is clock

    def test_sim_network_exposes_the_same_object_for_both(self):
        from repro.sim.network import Network

        scheduler = Scheduler()
        network = Network(scheduler, random.Random(0))
        assert network.clock is scheduler
        assert network.scheduler is scheduler

    def test_duplicate_registration_rejected(self):
        clock = Scheduler()
        transport = LoopbackTransport(clock)
        transport.register(0, object.__new__(Site))
        with pytest.raises(ValueError, match="already registered"):
            transport.register(0, object.__new__(Site))
