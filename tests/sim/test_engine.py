"""Unit tests for the end-to-end simulation engine."""

import math

import pytest

from repro.core.builder import from_spec
from repro.protocols.tree_quorum import TreeQuorumProtocol
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.failures import BernoulliFailures
from repro.sim.workload import WorkloadSpec


def assert_summaries_equal(a: dict, b: dict) -> None:
    """Dict equality where NaN == NaN (absent data is still deterministic)."""
    assert a.keys() == b.keys()
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, float) and math.isnan(va):
            assert isinstance(vb, float) and math.isnan(vb), key
        else:
            assert va == vb, key


class TestConfigResolution:
    def test_tree_config(self):
        config = SimulationConfig(tree=from_spec("1-3-5"))
        system, n = config.resolve()
        assert n == 8
        assert system.num_write_quorums == 2

    def test_system_config(self):
        system = TreeQuorumProtocol(7)
        config = SimulationConfig(system=system)
        resolved, n = config.resolve()
        assert n == 7 and resolved is system

    def test_missing_everything_rejected(self):
        with pytest.raises(ValueError, match="provide either"):
            SimulationConfig().resolve()

    def test_tree_and_system_together_rejected(self):
        config = SimulationConfig(
            tree=from_spec("1-3-5"), system=TreeQuorumProtocol(7)
        )
        with pytest.raises(ValueError, match="not both"):
            config.resolve()


class TestSimulate:
    def test_failure_free_run_all_succeed(self):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=200, read_fraction=0.5),
                seed=2,
            )
        )
        assert result.monitor.reads.failed == 0
        assert result.monitor.writes.failed == 0
        assert result.duration > 0
        assert result.events_processed > 0

    def test_deterministic_given_seed(self):
        config = SimulationConfig(
            tree=from_spec("1-3-5"),
            workload=WorkloadSpec(operations=100),
            seed=7,
        )
        a = simulate(config).summary()
        b = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=100),
                seed=7,
            )
        ).summary()
        assert_summaries_equal(a, b)

    def test_identical_seed_identical_monitor_output(self):
        """Full per-operation regression: same seed -> identical streams.

        Stronger than comparing summaries — every outcome field, including
        the exact quorums chosen and per-operation timings, must match.
        The child RNGs (network, coordinators, workload) are seeded with
        getrandbits(64) off the master seed, so the whole event history is
        a pure function of ``SimulationConfig.seed``.
        """

        def run():
            return simulate(
                SimulationConfig(
                    tree=from_spec("1-3-5"),
                    workload=WorkloadSpec(
                        operations=150, read_fraction=0.5, keys=16,
                        arrival="poisson", rate=0.3,
                    ),
                    failures=BernoulliFailures(p=0.8, seed=11, resample_every=25.0),
                    timeout=6.0,
                    seed=11,
                )
            ).monitor

        a, b = run(), run()
        trace_a = [
            (o.op_type, o.key, o.success, o.quorum, o.version_quorum,
             o.attempts, o.started_at, o.finished_at, o.reason)
            for o in a.outcomes
        ]
        trace_b = [
            (o.op_type, o.key, o.success, o.quorum, o.version_quorum,
             o.attempts, o.started_at, o.finished_at, o.reason)
            for o in b.outcomes
        ]
        assert trace_a == trace_b
        assert_summaries_equal(a.summary(), b.summary())

    def test_different_seeds_differ(self):
        def run(seed):
            return simulate(
                SimulationConfig(
                    tree=from_spec("1-3-5"),
                    workload=WorkloadSpec(operations=100),
                    seed=seed,
                )
            ).monitor.outcomes

        keys_a = [outcome.key for outcome in run(1)]
        keys_b = [outcome.key for outcome in run(2)]
        assert keys_a != keys_b

    def test_event_budget_guard(self):
        with pytest.raises(RuntimeError, match="exceeded"):
            simulate(
                SimulationConfig(
                    tree=from_spec("1-3-5"),
                    workload=WorkloadSpec(operations=1000),
                ),
                max_events=50,
            )

    def test_simulation_with_baseline_system(self):
        """The engine can run the BINARY baseline end to end too."""
        result = simulate(
            SimulationConfig(
                system=TreeQuorumProtocol(7),
                workload=WorkloadSpec(operations=100, read_fraction=0.5),
                seed=0,
            )
        )
        assert result.monitor.reads.failed == 0
        assert result.monitor.writes.failed == 0
        # every quorum is a root-to-leaf path of 3 replicas
        assert result.monitor.reads.mean_cost == pytest.approx(3.0)

    def test_lossy_network_still_completes_with_retries(self):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=150, read_fraction=0.5),
                drop_probability=0.05,
                timeout=6.0,
                max_attempts=10,
                seed=3,
            )
        )
        assert result.network_stats.dropped_loss > 0
        availability = result.monitor.reads.availability
        assert availability > 0.95

    def test_summary_contains_network_counters(self):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=10),
            )
        )
        summary = result.summary()
        assert summary["messages_sent"] > 0
        assert summary["duration"] == result.duration


class TestFailureIntegration:
    def test_bernoulli_failures_reduce_availability(self):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(
                    operations=800, read_fraction=0.5, keys=32,
                    arrival="poisson", rate=0.2,
                ),
                failures=BernoulliFailures(p=0.6, seed=5, resample_every=50.0),
                max_attempts=1,
                timeout=8.0,
                seed=5,
            )
        )
        assert 0.0 < result.monitor.writes.availability < 1.0
        assert result.monitor.reads.availability > result.monitor.writes.availability

    def test_retries_mask_failures(self):
        no_retry = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=400, read_fraction=0.5, keys=16),
                failures=BernoulliFailures(p=0.75, seed=8, resample_every=30.0),
                max_attempts=1,
                timeout=6.0,
                seed=8,
            )
        )
        with_retry = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=400, read_fraction=0.5, keys=16),
                failures=BernoulliFailures(p=0.75, seed=8, resample_every=30.0),
                max_attempts=5,
                timeout=6.0,
                seed=8,
            )
        )
        assert (
            with_retry.monitor.writes.availability
            >= no_retry.monitor.writes.availability
        )
