"""The introduction's related-work comparison as an executable table.

Section 1 of the paper walks through the replica control landscape with a
specific cost/load figure for each protocol.  This module reproduces that
survey as data: one :class:`RelatedWorkEntry` per protocol with the intro's
formulas evaluated at a given ``n`` (snapped to each protocol's admissible
sizes), used by ``benchmarks/bench_related_work.py``.

Every constructible protocol comes out of :mod:`repro.protocols.zoo` as a
unified :class:`~repro.quorums.system.QuorumSystem`; the per-row load
figures are read through the interface's ``load(op)`` accessor (which each
protocol backs with its closed form), while the cost columns use the
protocol-specific formulas the intro quotes.

Two of the surveyed tree protocols are represented by their published cost
formulas only (the paper cites but does not define them):

* Koch [7] — ternary tree (S = 3), read cost 1 .. S^h, write cost
  O(log n); cost-1 reads load the root: load 1;
* Choi-Youn-Choi [5] — symmetric ternary tree, read cost 1 .. S^(h/2),
  write cost O(log n); cost-1 reads induce load 0.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.metrics import read_cost as arbitrary_read_cost
from repro.core.metrics import write_cost_avg
from repro.protocols.zoo import fpp_system, quorum_system


@dataclass(frozen=True)
class RelatedWorkEntry:
    """One row of the intro survey, evaluated at a concrete size."""

    protocol: str
    reference: str
    n: int
    read_cost_best: float
    read_cost_worst: float
    write_cost: float
    read_load: float
    write_load: float


def _nearest(sizes: list[int], n: int) -> int:
    return min(sizes, key=lambda candidate: abs(candidate - n))


def survey(n: int = 121) -> list[RelatedWorkEntry]:
    """Evaluate every intro protocol at (approximately) ``n`` replicas."""
    entries: list[RelatedWorkEntry] = []

    rowa = quorum_system("rowa", n)
    entries.append(RelatedWorkEntry(
        protocol="ROWA", reference="[3]", n=rowa.n,
        read_cost_best=1, read_cost_worst=1, write_cost=rowa.n,
        read_load=rowa.load("read"), write_load=rowa.load("write"),
    ))

    majority = quorum_system("majority", n)
    entries.append(RelatedWorkEntry(
        protocol="Majority", reference="[13]", n=majority.n,
        read_cost_best=(majority.n + 1) / 2,
        read_cost_worst=(majority.n + 1) / 2,
        write_cost=(majority.n + 1) / 2,
        read_load=majority.load("read"), write_load=majority.load("write"),
    ))

    fpp = fpp_system(n)
    entries.append(RelatedWorkEntry(
        protocol="FPP (sqrt n)", reference="[9]", n=fpp.n,
        read_cost_best=fpp.quorum_size(), read_cost_worst=fpp.quorum_size(),
        write_cost=fpp.quorum_size(),
        read_load=fpp.load("read"), write_load=fpp.load("write"),
    ))

    grid = quorum_system("grid", n)
    entries.append(RelatedWorkEntry(
        protocol="Grid", reference="[4]", n=grid.n,
        read_cost_best=grid.read_cost(), read_cost_worst=grid.read_cost(),
        write_cost=grid.write_cost(),
        read_load=grid.load("read"), write_load=grid.load("write"),
    ))

    binary = quorum_system("tree-quorum", n)
    entries.append(RelatedWorkEntry(
        protocol="Tree quorum", reference="[2]", n=binary.n,
        read_cost_best=binary.min_cost(), read_cost_worst=binary.max_cost(),
        write_cost=binary.average_cost(),
        read_load=binary.load("read"), write_load=binary.load("write"),
    ))

    hqc = quorum_system("hqc", n)
    entries.append(RelatedWorkEntry(
        protocol="HQC", reference="[8]", n=hqc.n,
        read_cost_best=hqc.quorum_size(), read_cost_worst=hqc.quorum_size(),
        write_cost=hqc.quorum_size(),
        read_load=hqc.load("read"), write_load=hqc.load("write"),
    ))

    ae = quorum_system("ae-tree", n)
    entries.append(RelatedWorkEntry(
        protocol="AE tree (VLDB90)", reference="[1]", n=ae.n,
        read_cost_best=ae.read_cost_min(), read_cost_worst=ae.read_cost_max(),
        write_cost=ae.write_cost_exact(),
        read_load=ae.load("read"), write_load=ae.load("write"),
    ))

    entries.append(koch_model(n))
    entries.append(choi_model(n))

    arbitrary = quorum_system("arbitrary", n)
    entries.append(RelatedWorkEntry(
        protocol="Arbitrary (this paper)", reference="-", n=arbitrary.n,
        read_cost_best=arbitrary_read_cost(arbitrary.tree),
        read_cost_worst=arbitrary_read_cost(arbitrary.tree),
        write_cost=write_cost_avg(arbitrary.tree),
        read_load=arbitrary.load("read"),
        write_load=arbitrary.load("write"),
    ))
    return entries


def _ternary_height(n: int) -> tuple[int, int]:
    """(height, size) of the complete ternary tree with size nearest n."""
    sizes = {(3 ** (h + 1) - 1) // 2: h for h in range(1, 10)}
    snapped = _nearest(list(sizes), n)
    return sizes[snapped], snapped


def koch_model(n: int) -> RelatedWorkEntry:
    """Koch [7] per the intro: reads 1..3^h, writes O(log n), load 1."""
    height, snapped = _ternary_height(n)
    return RelatedWorkEntry(
        protocol="Koch", reference="[7]", n=snapped,
        read_cost_best=1, read_cost_worst=3.0**height,
        write_cost=math.log(snapped, 3) + 1,   # O(log n) path-style writes
        read_load=1.0,                          # cost-1 reads hit the root
        write_load=1.0,                         # the root is in every write
    )


def choi_model(n: int) -> RelatedWorkEntry:
    """Choi-Youn-Choi [5] per the intro: reads 1..3^(h/2), load 0.5."""
    height, snapped = _ternary_height(n)
    return RelatedWorkEntry(
        protocol="Choi symmetric", reference="[5]", n=snapped,
        read_cost_best=1, read_cost_worst=3.0 ** (height / 2),
        write_cost=math.log(snapped, 3) + 1,
        read_load=0.5,                          # the intro's quoted load
        write_load=1.0,
    )
