"""Unit tests for the failure injectors."""

import random

import pytest

from repro.sim.events import Scheduler
from repro.sim.failures import (
    BernoulliFailures,
    CompositeFailures,
    CrashRepairProcess,
    NoFailures,
    PartitionSchedule,
)
from repro.sim.network import Network, PartitionSpec
from repro.sim.site import Site


@pytest.fixture
def rig():
    scheduler = Scheduler()
    network = Network(scheduler, random.Random(0))
    sites = [Site(sid, network) for sid in range(20)]
    return scheduler, network, sites


class TestNoFailures:
    def test_everything_stays_up(self, rig):
        scheduler, network, sites = rig
        NoFailures().install(scheduler, sites, network)
        scheduler.run()
        assert all(site.is_up for site in sites)


class TestBernoulli:
    def test_initial_snapshot_roughly_p(self, rig):
        scheduler, network, sites = rig
        BernoulliFailures(p=0.5, seed=0).install(scheduler, sites, network)
        up = sum(site.is_up for site in sites)
        assert 3 <= up <= 17  # loose binomial band for n=20

    def test_p_one_keeps_everyone_up(self, rig):
        scheduler, network, sites = rig
        BernoulliFailures(p=1.0, seed=0).install(scheduler, sites, network)
        assert all(site.is_up for site in sites)

    def test_p_zero_crashes_everyone(self, rig):
        scheduler, network, sites = rig
        BernoulliFailures(p=0.0, seed=0).install(scheduler, sites, network)
        assert not any(site.is_up for site in sites)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            BernoulliFailures(p=1.5)

    def test_mapping_p_drives_per_site_fate(self, rig):
        scheduler, network, sites = rig
        p = {site.sid: (1.0 if site.sid % 2 == 0 else 0.0) for site in sites}
        BernoulliFailures(p=p, seed=0).install(scheduler, sites, network)
        assert all(site.is_up == (site.sid % 2 == 0) for site in sites)

    def test_mapping_p_must_cover_every_site(self, rig):
        """Regression: a partial mapping used to die with a bare KeyError
        on the first missing SID (and an empty mapping passed vacuously)."""
        scheduler, network, sites = rig
        partial = {site.sid: 0.5 for site in sites[:-3]}
        with pytest.raises(ValueError, match="missing SIDs"):
            BernoulliFailures(p=partial, seed=0).install(
                scheduler, sites, network
            )
        with pytest.raises(ValueError, match="missing SIDs"):
            BernoulliFailures(p={}, seed=0).install(scheduler, sites, network)

    def test_resampling_changes_states(self, rig):
        scheduler, network, sites = rig
        BernoulliFailures(p=0.5, seed=3, resample_every=10.0).install(
            scheduler, sites, network
        )
        states = []
        for window in range(1, 6):
            scheduler.run(until=window * 10.0 + 0.5)
            states.append(tuple(site.is_up for site in sites))
        assert len(set(states)) > 1

    def test_long_run_fraction_matches_p(self, rig):
        scheduler, network, sites = rig
        BernoulliFailures(p=0.7, seed=1, resample_every=5.0).install(
            scheduler, sites, network
        )
        total_up = 0
        samples = 200
        for window in range(1, samples + 1):
            scheduler.run(until=window * 5.0 + 0.5)
            total_up += sum(site.is_up for site in sites)
        assert total_up / (samples * len(sites)) == pytest.approx(0.7, abs=0.04)


class TestCrashRepair:
    def test_long_run_availability_property(self):
        process = CrashRepairProcess(mean_uptime=300.0, mean_downtime=100.0)
        assert process.long_run_availability == pytest.approx(0.75)

    def test_invalid_means_rejected(self):
        with pytest.raises(ValueError):
            CrashRepairProcess(mean_uptime=0.0, mean_downtime=1.0)

    def test_sites_cycle_through_states(self, rig):
        scheduler, network, sites = rig
        CrashRepairProcess(
            mean_uptime=10.0, mean_downtime=5.0, seed=2, horizon=500.0
        ).install(scheduler, sites, network)
        scheduler.run()
        assert all(site.stats.crashes > 0 for site in sites)
        assert all(site.stats.recoveries > 0 for site in sites)

    def test_measured_availability_tracks_stationary(self, rig):
        scheduler, network, sites = rig
        process = CrashRepairProcess(
            mean_uptime=40.0, mean_downtime=10.0, seed=4, horizon=20_000.0
        )
        process.install(scheduler, sites, network)
        up_samples = 0
        total = 0
        for tick in range(1, 2000):
            scheduler.run(until=tick * 10.0)
            up_samples += sum(site.is_up for site in sites)
            total += len(sites)
        assert up_samples / total == pytest.approx(
            process.long_run_availability, abs=0.05
        )

    def test_horizon_stops_new_crashes(self, rig):
        scheduler, network, sites = rig
        CrashRepairProcess(
            mean_uptime=5.0, mean_downtime=5.0, seed=0, horizon=50.0
        ).install(scheduler, sites, network)
        last_crash_at = 0.0
        crashes = [site.stats.crashes for site in sites]
        while scheduler.step():
            now_crashes = [site.stats.crashes for site in sites]
            if now_crashes != crashes:
                crashes = now_crashes
                last_crash_at = scheduler.now
        assert crashes and sum(crashes) > 0
        assert last_crash_at <= 50.0

    def test_recovery_paired_even_past_horizon(self, rig):
        """Regression: a crash whose repair falls past the horizon must
        still recover — the horizon ends the crash process, it does not
        strand sites in the down state forever."""
        scheduler, network, sites = rig
        CrashRepairProcess(
            mean_uptime=5.0, mean_downtime=5.0, seed=0, horizon=50.0
        ).install(scheduler, sites, network)
        scheduler.run()
        for site in sites:
            assert site.stats.crashes == site.stats.recoveries
            assert site.is_up


class TestPartitionSchedule:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            PartitionSchedule(PartitionSpec.split({0}, {1}), start=5.0, end=2.0)

    def test_partition_applied_and_healed(self, rig):
        scheduler, network, sites = rig
        spec = PartitionSpec.split({0, 1}, {2, 3})
        PartitionSchedule(spec, start=10.0, end=20.0).install(
            scheduler, sites, network
        )
        scheduler.run(until=15.0)
        assert network.partitioned
        assert not network.reachable(0, 2)
        scheduler.run(until=25.0)
        assert not network.partitioned


class TestComposite:
    def test_installs_all_children(self, rig):
        scheduler, network, sites = rig
        composite = CompositeFailures([
            BernoulliFailures(p=0.0, seed=0),
            PartitionSchedule(PartitionSpec.split({0}, {1}), 5.0, 10.0),
        ])
        composite.install(scheduler, sites, network)
        assert not any(site.is_up for site in sites)
        scheduler.run(until=7.0)
        assert network.partitioned
