"""Memoised bitset-dispatched quorum selection: the simulator's hot path.

Every quorum attempt in the simulator asks the same question — *give me a
uniformly random quorum that is a subset of the current live set* — and the
pre-existing answers were all per-attempt work: the generic
:class:`~repro.quorums.system.QuorumSystem` scan re-enumerates and re-packs
the quorum collection on every call, and the structural protocol selectors
rebuild their candidate lists from frozensets.  Live sets, however, change
only when a site crashes or recovers or a partition is installed/healed —
orders of magnitude less often than operations are issued.

:class:`SelectionIndex` exploits that: it packs a system's quorum
collections into :class:`~repro.quorums.bitset.PackedQuorums` matrices
*once*, memoises the viable-row index vector per ``(op, live-mask)`` (one
vectorised mask-AND when a live set is first seen), and serves every
subsequent selection with a single ``rng.randrange`` over the viable count —
O(live-set) to build the mask, O(1) to pick.

Distribution contract
---------------------
The index picks **uniformly among the viable quorums** (the quorums that
are subsets of the live set).  That is exactly the distribution of the
generic reservoir scan, and of every structural selector that declares
``uniform_selection = True`` (the paper's arbitrary protocol: independent
uniform per-level choices; majority: ``rng.sample`` over the live set;
ROWA: a uniform live singleton).  Protocols whose structural selectors
*prefer* primary quorums (tree-quorum's root path, HQC's top-level
recursion, the grid's column orientation) declare
``uniform_selection = False`` and are never dispatched here — substituting
a uniform pick would change their measured costs and loads.

:func:`select_uniform_reference` is the pure-Python frozenset twin used by
the agreement tests and benchmarks: filter the quorum list by the live set,
draw one ``randrange``.  Index and reference consume identical RNG streams,
so selections agree bit-for-bit under the same seed.
"""

from __future__ import annotations

import random
from collections.abc import Collection, Sequence

import numpy as np

from repro.quorums.bitset import PackedQuorums, mask_to_words, try_pack
from repro.quorums.liveness import Liveness, as_oracle

#: Materialisation guard: systems with more quorums than this keep their
#: structural selectors (enumeration would cost more than it saves).
DEFAULT_MAX_QUORUMS = 4096

#: Viable-row cache entries kept per index before a wholesale flush.  Long
#: Bernoulli-failure runs see a new live mask per resample epoch; the flush
#: bounds memory without tracking recency on the hot path.
DEFAULT_CACHE_LIMIT = 1024

_OPS = ("read", "write")


def select_uniform_reference(
    quorums: Sequence[frozenset[int]],
    live: Liveness,
    rng: random.Random | None = None,
) -> frozenset[int] | None:
    """Uniform-over-viable selection on plain frozensets (reference path).

    Builds the viable candidate list per call — the very cost the index
    memoises away — then draws one ``rng.randrange(len(viable))``.  With
    ``rng=None`` the first viable quorum (enumeration order) is returned.
    """
    oracle = as_oracle(live)
    viable = [
        quorum
        for quorum in quorums
        if all(oracle(sid) for sid in quorum)
    ]
    if not viable:
        return None
    if rng is None:
        return viable[0]
    return viable[rng.randrange(len(viable))]


class SelectionIndex:
    """Per-system cache turning quorum selection into an O(1) uniform pick.

    Parameters
    ----------
    system:
        Any :class:`~repro.quorums.system.QuorumSystem`-shaped object.  The
        index materialises and packs its quorum collections lazily, per
        operation, on first use; systems that cannot be packed (quorum
        count above ``max_quorums``, non-integer universe, or no
        ``materialise``/``universe`` at all) fall back to the system's own
        ``select_read_quorum`` / ``select_write_quorum`` transparently.
    max_quorums:
        Materialisation guard per operation.
    cache_limit:
        Viable-row cache entries kept before the cache is flushed.

    The ``packed_selects`` / ``fallback_selects`` / ``cache_hits`` /
    ``cache_misses`` counters make the dispatch observable to tests and
    benchmarks.
    """

    __slots__ = (
        "_system",
        "_max_quorums",
        "_cache_limit",
        "_packed",
        "_quorums",
        "_viable",
        "packed_selects",
        "fallback_selects",
        "cache_hits",
        "cache_misses",
    )

    def __init__(
        self,
        system,
        max_quorums: int = DEFAULT_MAX_QUORUMS,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
    ) -> None:
        if max_quorums < 1:
            raise ValueError("max_quorums must be positive")
        if cache_limit < 1:
            raise ValueError("cache_limit must be positive")
        self._system = system
        self._max_quorums = max_quorums
        self._cache_limit = cache_limit
        #: op -> PackedQuorums | None (None = tried and unpackable).
        self._packed: dict[str, PackedQuorums | None] = {}
        #: op -> materialised quorums, aligned with the packed row order.
        self._quorums: dict[str, tuple[frozenset[int], ...]] = {}
        #: (op, live-mask) -> indices of viable rows, as a plain list:
        #: picks index it once per selection, and list indexing returns
        #: a Python int directly where an ndarray would hand back a
        #: numpy scalar needing an ``int()`` round-trip every time.
        self._viable: dict[tuple[str, int], list[int]] = {}
        self.packed_selects = 0
        self.fallback_selects = 0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def system(self):
        """The system selections are served for."""
        return self._system

    def supported(self, op: str) -> bool:
        """Whether ``op`` selections run on the packed fast path."""
        return self._tables(op) is not None

    def _tables(self, op: str) -> PackedQuorums | None:
        if op not in _OPS:
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        if op in self._packed:
            return self._packed[op]
        packed: PackedQuorums | None = None
        materialise = getattr(self._system, "materialise", None)
        universe = getattr(self._system, "universe", None)
        if materialise is not None and universe is not None:
            try:
                quorums = materialise(op, self._max_quorums)
            except ValueError:
                quorums = None
            if quorums:
                packed = try_pack(quorums, universe)
                if packed is not None:
                    self._quorums[op] = tuple(quorums)
        self._packed[op] = packed
        return packed

    def select(
        self,
        op: str,
        live: Collection[int],
        rng: random.Random | None = None,
    ) -> frozenset[int] | None:
        """A uniformly chosen viable quorum of ``op``, or ``None``.

        ``live`` must be an explicit collection of live SIDs (the caller
        owns liveness-epoch caching); callables are routed to the fallback.
        """
        packed = self._tables(op)
        if packed is None or callable(live):
            self.fallback_selects += 1
            if op == "read":
                return self._system.select_read_quorum(live, rng)
            return self._system.select_write_quorum(live, rng)
        mask = 0
        index = packed.index
        for sid in live:
            bit = index.get(sid)
            if bit is not None:
                mask |= 1 << bit
        return self._pick(op, packed, mask, rng)

    def live_mask(self, live: Collection[int]) -> int | None:
        """Pack live SIDs into the kernel's bit positions, or ``None``.

        ``None`` means no operation of this system is packable and
        :meth:`select_masked` cannot be used.  Both operations' packed
        tables index the same sorted universe, so one mask serves read
        and write selections alike — callers caching the live set per
        liveness epoch (the coordinator) can cache its mask right next
        to it and skip the per-selection packing loop entirely.
        """
        packed = self._tables("read") or self._tables("write")
        if packed is None:
            return None
        mask = 0
        index = packed.index
        for sid in live:
            bit = index.get(sid)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def select_masked(
        self,
        op: str,
        mask: int,
        rng: random.Random | None = None,
    ) -> frozenset[int] | None:
        """Like :meth:`select` with a pre-packed live mask (same RNG draws).

        Only valid when :meth:`supported` is true for ``op`` (there is no
        live *collection* here to hand a structural fallback).
        """
        packed = self._tables(op)
        if packed is None:
            raise ValueError(
                f"{op!r} selections are not packed; check supported() "
                "before using select_masked()"
            )
        return self._pick(op, packed, mask, rng)

    def _pick(
        self,
        op: str,
        packed: PackedQuorums,
        mask: int,
        rng: random.Random | None,
    ) -> frozenset[int] | None:
        self.packed_selects += 1
        key = (op, mask)
        rows = self._viable.get(key)
        if rows is None:
            self.cache_misses += 1
            if len(self._viable) >= self._cache_limit:
                self._viable.clear()
            rows = np.nonzero(
                packed.live_filter(mask_to_words(mask, packed.words))
            )[0].tolist()
            self._viable[key] = rows
        else:
            self.cache_hits += 1
        if not rows:
            return None
        quorums = self._quorums[op]
        if rng is None:
            return quorums[rows[0]]
        # randrange(len) draws exactly what randrange(rows.size) drew —
        # same integer, same underlying getrandbits stream.
        return quorums[rows[rng.randrange(len(rows))]]

    def select_avoiding(
        self,
        op: str,
        live: Collection[int],
        avoid: Collection[int],
        rng: random.Random | None = None,
    ) -> tuple[frozenset[int] | None, bool]:
        """Prefer viable quorums that dodge ``avoid``; fall back blind.

        The failure detector's entry point: ``avoid`` is the suspected
        set.  Returns ``(quorum, avoided)`` where ``avoided`` is True iff
        the quorum was chosen from the suspected-free candidates — i.e.
        the preference actually both narrowed the live set and still
        found a quorum.  When no suspected-free quorum exists the blind
        selection runs so suspicion can only redirect load, never
        manufacture unavailability.  Preferred masks share the per-mask
        viable-row cache with blind ones (a restricted live set is just
        another mask).
        """
        if avoid:
            live_tuple = tuple(live)
            preferred = tuple(sid for sid in live_tuple if sid not in avoid)
            if len(preferred) != len(live_tuple):
                quorum = self.select(op, preferred, rng)
                if quorum is not None:
                    return quorum, True
            live = live_tuple
        return self.select(op, live, rng), False

    def select_read(
        self, live: Collection[int], rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """A uniformly chosen viable read quorum, or ``None``."""
        return self.select("read", live, rng)

    def select_write(
        self, live: Collection[int], rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """A uniformly chosen viable write quorum, or ``None``."""
        return self.select("write", live, rng)

    def __repr__(self) -> str:
        name = getattr(self._system, "name", type(self._system).__name__)
        return (
            f"SelectionIndex({name!r}, packed={self.packed_selects}, "
            f"fallback={self.fallback_selects}, hits={self.cache_hits})"
        )
