"""Unit tests for replica service times and FIFO queueing."""

import random

import pytest

from repro.sim.events import Scheduler
from repro.sim.messages import ReadReply, ReadRequest
from repro.sim.network import Network
from repro.sim.site import Site


class Client:
    up = True

    def __init__(self):
        self.received = []

    @property
    def is_up(self):
        return True

    def receive(self, message):
        self.received.append(message)


@pytest.fixture
def rig():
    scheduler = Scheduler()
    network = Network(scheduler, random.Random(0), latency=1.0)
    client = Client()
    network.register(-1, client)
    return scheduler, network, client


def _ask(network, rid):
    network.send(ReadRequest(src=-1, dst=0, key="k", request_id=rid))


class TestServiceTime:
    def test_zero_service_time_is_immediate(self, rig):
        scheduler, network, client = rig
        Site(0, network, service_time=0.0)
        _ask(network, 1)
        scheduler.run()
        assert scheduler.now == 2.0  # pure network round trip

    def test_positive_service_time_delays_reply(self, rig):
        scheduler, network, client = rig
        Site(0, network, service_time=3.0)
        _ask(network, 1)
        scheduler.run()
        assert scheduler.now == 5.0  # 1 out + 3 service + 1 back
        assert len(client.received) == 1

    def test_queue_serialises_requests(self, rig):
        scheduler, network, client = rig
        Site(0, network, service_time=2.0)
        for rid in (1, 2, 3):
            _ask(network, rid)
        scheduler.run()
        # arrivals at t=1; service back-to-back: replies sent at 3, 5, 7
        assert scheduler.now == 8.0  # last reply delivered at 7 + 1
        assert [m.request_id for m in client.received] == [1, 2, 3]

    def test_max_queue_depth_recorded(self, rig):
        scheduler, network, client = rig
        site = Site(0, network, service_time=2.0)
        for rid in range(5):
            _ask(network, rid)
        scheduler.run()
        # the first arrival goes straight into service; four wait behind it
        assert site.stats.max_queue_depth == 4

    def test_crash_drops_queued_messages(self, rig):
        scheduler, network, client = rig
        site = Site(0, network, service_time=2.0)
        for rid in (1, 2, 3):
            _ask(network, rid)
        scheduler.run(until=1.5)  # all three queued, none served yet
        site.crash()
        scheduler.run()
        assert client.received == []

    def test_recovery_serves_new_traffic(self, rig):
        scheduler, network, client = rig
        site = Site(0, network, service_time=1.0)
        site.crash()
        site.recover()
        _ask(network, 9)
        scheduler.run()
        assert [m.request_id for m in client.received] == [9]

    def test_negative_service_time_rejected(self, rig):
        _scheduler, network, _client = rig
        with pytest.raises(ValueError, match="service time"):
            Site(0, network, service_time=-1.0)

    def test_replies_are_correct_under_queueing(self, rig):
        scheduler, network, client = rig
        site = Site(0, network, service_time=1.0)
        from repro.sim.replica import Timestamp

        site.store.apply_write("k", "v", Timestamp(4, 0))
        _ask(network, 7)
        scheduler.run()
        (reply,) = client.received
        assert isinstance(reply, ReadReply)
        assert reply.value == "v" and reply.timestamp == Timestamp(4, 0)
