"""Table 1 + the Section 3.4 worked example (the 1-3-5 tree).

Regenerates every number the paper reports for its running example of 8
replicas arranged as ``1-3-5`` (logical root, physical levels of 3 and 5):

* Table 1 — per-level total/physical/logical node counts;
* m(R) = 15 read quorums, m(W) = 2 write quorums;
* RD_cost = 2, RD_availability(0.7) = 0.97, L_RD = 1/3;
* WR_cost = 4, WR_availability(0.7) = 0.45, L_WR = 1/2;
* E[L_RD] = 0.35, E[L_WR] = 0.775.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import ArbitraryProtocol, ArbitraryTree, analyse, from_spec

P = 0.7


@pytest.fixture(scope="module")
def tree():
    # The exact Figure 1 tree: a logical root, 3 physical nodes at level 1,
    # and 5 physical + 4 logical nodes at level 2 (m_2 = 9 in Table 1).
    # The compressed spec "1-3-5" captures only the physical structure, which
    # is all the protocol's behaviour depends on.
    return ArbitraryTree.from_level_counts([0, 3, 5], [1, 0, 4])


def test_table1_level_counts(tree, emit, benchmark):
    rows = benchmark(tree.level_table)
    emit(
        "table1_levels",
        format_table(
            ["level k", "m_k", "m_phy_k", "m_log_k"],
            [[row.level, row.total, row.physical, row.logical] for row in rows],
            title="Table 1: node counts per level of the 1-3-5 tree",
        ),
    )
    assert [(r.total, r.physical, r.logical) for r in rows] == [
        (1, 0, 1),
        (3, 3, 0),
        (9, 5, 4),
    ]


def test_example_structure(tree, benchmark):
    benchmark(lambda: from_spec("1-3-5"))
    assert tree.n == 8
    assert tree.height == 2
    assert tree.physical_levels == (1, 2)
    assert tree.logical_levels == (0,)
    assert tree.spec() == "1-3-5"


def test_example_quorum_counts(tree, benchmark):
    protocol = benchmark(ArbitraryProtocol, tree)
    assert protocol.num_read_quorums == 15  # 3 * 5 (Fact 3.2.1)
    assert protocol.num_write_quorums == 2  # |K_phy| (Fact 3.2.2)


def test_example_metrics(tree, emit, benchmark):
    metrics = benchmark(analyse, tree, P)
    emit(
        "table1_metrics",
        format_table(
            ["quantity", "measured", "paper"],
            [
                ["RD_cost", metrics.read_cost, 2],
                ["RD_availability(0.7)", round(metrics.read_availability, 4), 0.97],
                ["L_RD", round(metrics.read_load, 4), "1/3"],
                ["WR_cost (avg)", metrics.write_cost_avg, 4],
                ["WR_availability(0.7)", round(metrics.write_availability, 4), 0.45],
                ["L_WR", round(metrics.write_load, 4), "1/2"],
                ["E[L_RD]", round(metrics.expected_read_load, 4), 0.35],
                ["E[L_WR]", round(metrics.expected_write_load, 4), 0.775],
            ],
            title="Section 3.4 example quantities (1-3-5 tree, p = 0.7)",
        ),
    )
    assert metrics.read_cost == 2
    assert metrics.read_availability == pytest.approx(0.97, abs=0.005)
    assert metrics.read_load == pytest.approx(1 / 3)
    assert metrics.write_cost_avg == pytest.approx(4.0)
    assert metrics.write_availability == pytest.approx(0.45, abs=0.005)
    assert metrics.write_load == pytest.approx(0.5)
    assert metrics.expected_read_load == pytest.approx(0.35, abs=0.005)
    assert metrics.expected_write_load == pytest.approx(0.775, abs=0.005)
