"""Optimal system load via linear programming (Naor-Wool).

The *system load* ``L(S)`` of Definition 2.5 is the minimum over all
strategies of the maximum per-element induced load.  It is the value of the
linear program

    minimise    L
    subject to  sum_{j : i in S_j} w_j <= L      for every element i,
                sum_j w_j = 1,
                w_j >= 0,

whose dual (after normalisation) is exactly Proposition 2.1: ``L`` is optimal
iff there exists a probability vector ``y`` over the universe with
``y(S) >= L`` for every quorum ``S``.  We solve both the primal (optimal
strategy) and the dual (the witness ``y``) with :func:`scipy.optimize.linprog`.

This module is the ground truth against which the paper's closed-form loads
(``1/d`` for reads, ``1/|K_phy|`` for writes, Appendix 6) are verified in the
test suite and in ``benchmarks/bench_load_optimality.py``.
"""

from __future__ import annotations

from collections.abc import Collection, Hashable, Iterable
from dataclasses import dataclass
from typing import TypeVar

import numpy as np
from scipy.optimize import linprog

from repro.quorums.base import SetSystem
from repro.quorums.bitset import try_pack
from repro.quorums.strategy import Strategy

Element = TypeVar("Element", bound=Hashable)

_LP_TOLERANCE = 1e-7


@dataclass(frozen=True)
class OptimalLoad:
    """Result of the optimal-load linear program.

    Attributes
    ----------
    load:
        The optimal system load ``L(S)``.
    strategy:
        An optimal strategy achieving that load.
    witness:
        A dual witness ``y`` (probability vector over the universe, keyed by
        element) certifying optimality per Proposition 2.1.
    """

    load: float
    strategy: Strategy
    witness: dict

    def verify(self, tolerance: float = 1e-6) -> bool:
        """Check primal feasibility, dual feasibility and matching values."""
        primal_ok = self.strategy.induced_load() <= self.load + tolerance
        dual_ok = verify_load_witness(
            self.strategy.system, self.witness, self.load, tolerance=tolerance
        )
        return primal_ok and dual_ok


def _membership_matrix_reference(system: SetSystem) -> tuple[np.ndarray, list]:
    """Cell-by-cell membership matrix build (kernel reference path)."""
    elements = sorted(system.universe)
    index = {element: row for row, element in enumerate(elements)}
    matrix = np.zeros((len(elements), len(system)), dtype=float)
    for col, quorum in enumerate(system.quorums):
        for element in quorum:
            matrix[index[element], col] = 1.0
    return matrix, elements


def _membership_matrix(
    system: SetSystem, packed=None
) -> tuple[np.ndarray, list]:
    """Binary element x quorum membership matrix plus the element order.

    Integer universes are packed into the bitset kernel and the matrix is
    extracted with one vectorised bit-unpack instead of a Python loop per
    (quorum, element) cell.  Callers holding a pre-packed collection (e.g.
    ``CachedQuorumSystem``) pass it via ``packed`` to skip re-packing.
    """
    if packed is None:
        packed = try_pack(system.quorums, system.universe)
    if packed is not None:
        return packed.membership_matrix(dtype=float), list(packed.elements)
    return _membership_matrix_reference(system)


def optimal_load(
    quorums: Iterable[Collection[Element]] | SetSystem,
    universe: Collection[Element] | None = None,
    packed=None,
) -> OptimalLoad:
    """Compute the optimal system load of an explicitly enumerated system.

    Parameters
    ----------
    quorums:
        Either a :class:`SetSystem` or an iterable of quorums.
    universe:
        Ground set (only used when ``quorums`` is an iterable).  Elements of
        the universe that belong to no quorum trivially carry zero load.
    packed:
        Optional pre-built :class:`~repro.quorums.bitset.PackedQuorums` of
        the same collection (must be packed over the same universe, in the
        same quorum order); skips re-packing for the membership matrix.

    Returns
    -------
    OptimalLoad
        Optimal load, an optimal strategy, and a dual witness.

    Notes
    -----
    Complexity is polynomial in the *number of quorums*, which for the
    arbitrary protocol is ``prod_k m_phy_k`` for reads — exponential in the
    number of levels.  Use this for the small/medium systems in tests and
    benches; the closed forms in :mod:`repro.core.metrics` cover all sizes.
    """
    if isinstance(quorums, SetSystem):
        system = quorums
    else:
        system = SetSystem(quorums, universe=universe)

    membership, elements = _membership_matrix(system, packed=packed)
    n_elements, n_quorums = membership.shape

    # Primal: variables (w_1..w_m, L); minimise L.
    cost = np.zeros(n_quorums + 1)
    cost[-1] = 1.0
    # membership @ w - L <= 0 for every element.
    a_ub = np.hstack([membership, -np.ones((n_elements, 1))])
    b_ub = np.zeros(n_elements)
    a_eq = np.zeros((1, n_quorums + 1))
    a_eq[0, :n_quorums] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, None)] * n_quorums + [(0.0, None)]
    primal = linprog(
        cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not primal.success:  # pragma: no cover - HiGHS is reliable on these LPs
        raise RuntimeError(f"optimal-load primal LP failed: {primal.message}")

    weights_raw = np.clip(primal.x[:n_quorums], 0.0, None)
    weights = weights_raw / weights_raw.sum()
    load = float(primal.x[-1])
    strategy = Strategy(system, tuple(float(w) for w in weights))

    # Dual witness (Proposition 2.1): maximise t subject to
    # y(S) >= t for every quorum S, sum(y) = 1, y >= 0.
    # Variables (y_1..y_n, t); minimise -t.
    dual_cost = np.zeros(n_elements + 1)
    dual_cost[-1] = -1.0
    # t - y(S) <= 0 for every quorum.
    dual_a_ub = np.hstack([-membership.T, np.ones((n_quorums, 1))])
    dual_b_ub = np.zeros(n_quorums)
    dual_a_eq = np.zeros((1, n_elements + 1))
    dual_a_eq[0, :n_elements] = 1.0
    dual = linprog(
        dual_cost, A_ub=dual_a_ub, b_ub=dual_b_ub, A_eq=dual_a_eq,
        b_eq=np.array([1.0]), bounds=[(0.0, None)] * (n_elements + 1),
        method="highs",
    )
    if not dual.success:  # pragma: no cover
        raise RuntimeError(f"optimal-load dual LP failed: {dual.message}")
    witness = {
        element: float(value)
        for element, value in zip(elements, dual.x[:n_elements])
    }

    dual_value = float(dual.x[-1])
    if abs(dual_value - load) > 1e-5:  # pragma: no cover - duality gap
        raise RuntimeError(
            f"LP duality gap: primal load {load} vs dual value {dual_value}"
        )
    return OptimalLoad(load=load, strategy=strategy, witness=witness)


def optimal_operation_load(
    system,
    op: str = "read",
    max_quorums: int = 200_000,
) -> OptimalLoad:
    """Optimal load of one operation of a quorum system.

    ``system`` is anything implementing the
    :class:`~repro.quorums.system.QuorumSystem` interface (``universe`` plus
    ``read_quorums()``/``write_quorums()``); ``op`` selects which quorum
    collection to analyse.  Enumeration is guarded by ``max_quorums`` because
    quorum counts grow exponentially for most protocols, and goes through
    ``system.materialise`` when available so a ``CachedQuorumSystem`` serves
    its memoized collection instead of re-draining its iterators on every
    ``load()``/``strategy()`` call.
    """
    if op not in ("read", "write"):
        raise ValueError(f"op must be 'read' or 'write', got {op!r}")
    if hasattr(system, "materialise"):
        quorums = system.materialise(op, max_quorums)
    else:  # pragma: no cover - duck-typed minimal systems
        quorums = []
        source = system.read_quorums() if op == "read" else system.write_quorums()
        for quorum in source:
            quorums.append(quorum)
            if len(quorums) > max_quorums:
                raise ValueError(
                    f"more than {max_quorums} {op} quorums; "
                    "raise max_quorums or use a closed form"
                )
    return optimal_load(quorums, universe=system.universe)


def verify_load_witness(
    system: SetSystem,
    witness: dict,
    load: float,
    tolerance: float = 1e-6,
) -> bool:
    """Check a Proposition 2.1 witness: y >= 0, y(U) = 1, y(S) >= L for all S.

    A valid witness proves ``L`` is a *lower bound* on the system load; paired
    with a strategy achieving ``L`` it proves optimality.  The appendix of the
    paper constructs such witnesses by hand (all mass on the thinnest physical
    level for reads; one replica per physical level for writes).
    """
    if any(value < -tolerance for value in witness.values()):
        return False
    total = float(sum(witness.get(element, 0.0) for element in system.universe))
    if abs(total - 1.0) > tolerance:
        return False
    for quorum in system.quorums:
        mass = float(sum(witness.get(element, 0.0) for element in quorum))
        if mass < load - tolerance:
            return False
    return True
