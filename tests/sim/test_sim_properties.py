"""Property-based tests: random schedules never violate one-copy equivalence.

Hypothesis generates interleaved writes, reads, crashes and recoveries on
small trees; every successful read must return the latest successfully
written value, and write versions must be strictly monotone per key —
regardless of the failure pattern.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import from_physical_level_sizes
from repro.sim.engine import SimulationConfig, build_simulation

KEYS = ("a", "b")


def _actions():
    crash = st.tuples(st.just("crash"), st.integers(min_value=0, max_value=7))
    recover = st.tuples(st.just("recover"), st.integers(min_value=0, max_value=7))
    write = st.tuples(st.just("write"), st.sampled_from(KEYS))
    read = st.tuples(st.just("read"), st.sampled_from(KEYS))
    return st.lists(
        st.one_of(write, read, crash, recover), min_size=1, max_size=30
    )


class _Harness:
    def __init__(self, sizes, seed=0):
        tree = from_physical_level_sizes(list(sizes))
        config = SimulationConfig(
            tree=tree, seed=seed, max_attempts=2, timeout=6.0
        )
        (self.scheduler, _w, self.monitor,
         self.network, self.sites) = build_simulation(config)
        self.coordinator = self.network.endpoint(-1)
        self.latest: dict = {}
        self.last_version: dict = {}
        self.counter = 0

    def _call(self, op):
        box = []
        op(box.append)
        while not box:
            assert self.scheduler.step(), "simulation stalled"
        return box[0]

    def apply(self, action):
        kind, arg = action
        if kind == "crash":
            self.sites[arg % len(self.sites)].crash()
            return
        if kind == "recover":
            self.sites[arg % len(self.sites)].recover()
            # recovery may enqueue termination-protocol traffic; drain it
            self.scheduler.run()
            return
        if kind == "write":
            self.counter += 1
            value = f"v{self.counter}"
            outcome = self._call(
                lambda cb: self.coordinator.write(arg, value, cb)
            )
            if outcome.success:
                self.latest[arg] = value
                version = outcome.timestamp.version
                assert version > self.last_version.get(arg, 0), (
                    "write versions must be strictly monotone"
                )
                self.last_version[arg] = version
            return
        outcome = self._call(lambda cb: self.coordinator.read(arg, cb))
        if outcome.success and arg in self.latest:
            assert outcome.value == self.latest[arg], (
                f"read of {arg!r} returned {outcome.value!r}, "
                f"latest write was {self.latest[arg]!r}"
            )


@given(actions=_actions(), seed=st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_one_copy_equivalence_on_random_schedules(actions, seed):
    harness = _Harness((3, 5), seed=seed)
    for action in actions:
        harness.apply(action)


@given(
    actions=_actions(),
    sizes=st.sampled_from([(2, 2, 4), (1, 2, 5), (8,), (2, 3, 3)]),
)
@settings(max_examples=40, deadline=None)
def test_random_schedules_on_varied_tree_shapes(actions, sizes):
    harness = _Harness(sizes, seed=1)
    for action in actions:
        harness.apply(action)


@given(actions=_actions())
@settings(max_examples=25, deadline=None)
def test_random_schedules_with_lossy_network(actions):
    tree = from_physical_level_sizes([3, 5])
    config = SimulationConfig(
        tree=tree, seed=3, max_attempts=4, timeout=6.0, drop_probability=0.05
    )
    harness = _Harness.__new__(_Harness)
    (harness.scheduler, _w, harness.monitor,
     harness.network, harness.sites) = build_simulation(config)
    harness.coordinator = harness.network.endpoint(-1)
    harness.latest = {}
    harness.last_version = {}
    harness.counter = 0
    for action in actions:
        harness.apply(action)
