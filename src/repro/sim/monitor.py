"""Measurement: per-replica load, availability, latency, message counts.

The monitor receives every :class:`~repro.sim.coordinator.OperationOutcome`
and aggregates the quantities the paper analyses:

* **measured load** — for each replica, the fraction of operations (of each
  kind) whose quorum contained it; the *system* load is the maximum over
  replicas, directly mirroring Definition 2.5 with the empirical operation
  mix as the strategy;
* **measured availability** — the success fraction (run the workload with
  ``max_attempts=1`` so retries don't mask failures);
* **measured cost** — mean quorum size per operation kind;
* latency percentiles and attempt counts.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.sim.coordinator import OperationOutcome


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return math.nan
    index = min(
        len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


@dataclass
class OperationSummary:
    """Aggregates for one operation kind (read or write)."""

    attempted: int = 0
    succeeded: int = 0
    failed: int = 0
    total_attempts: int = 0
    total_quorum_size: int = 0
    latencies: list[float] = field(default_factory=list)
    failure_reasons: Counter = field(default_factory=Counter)

    @property
    def availability(self) -> float:
        """Success fraction (NaN when nothing ran)."""
        if self.attempted == 0:
            return math.nan
        return self.succeeded / self.attempted

    @property
    def mean_cost(self) -> float:
        """Mean quorum size over successful operations."""
        if self.succeeded == 0:
            return math.nan
        return self.total_quorum_size / self.succeeded

    @property
    def mean_latency(self) -> float:
        """Mean simulated latency of successful operations."""
        if not self.latencies:
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    def latency_percentile(self, fraction: float) -> float:
        """Latency percentile (e.g. 0.5, 0.95) of successful operations."""
        return _percentile(sorted(self.latencies), fraction)


class Monitor:
    """Collects outcomes and computes the measured counterparts of the
    paper's analytical quantities."""

    def __init__(self, replica_ids: tuple[int, ...]) -> None:
        self._replica_ids = replica_ids
        self.reads = OperationSummary()
        self.writes = OperationSummary()
        self._read_touches: Counter = Counter()
        self._write_touches: Counter = Counter()
        self.outcomes: list[OperationOutcome] = []

    def record(self, outcome: OperationOutcome) -> None:
        """Ingest one finished operation."""
        self.outcomes.append(outcome)
        summary = self.reads if outcome.op_type == "read" else self.writes
        touches = (
            self._read_touches if outcome.op_type == "read" else self._write_touches
        )
        summary.attempted += 1
        summary.total_attempts += outcome.attempts
        if outcome.success:
            summary.succeeded += 1
            summary.total_quorum_size += len(outcome.quorum)
            summary.latencies.append(outcome.latency)
            for sid in outcome.quorum:
                touches[sid] += 1
        else:
            summary.failed += 1
            summary.failure_reasons[outcome.reason.value] += 1

    # ------------------------------------------------------------------
    # measured load (Definition 2.5, empirically)
    # ------------------------------------------------------------------

    def measured_read_load(self) -> float:
        """Max over replicas of (read quorums containing it / reads done)."""
        if self.reads.succeeded == 0:
            return math.nan
        busiest = max(
            (self._read_touches.get(sid, 0) for sid in self._replica_ids),
            default=0,
        )
        return busiest / self.reads.succeeded

    def measured_write_load(self) -> float:
        """Max over replicas of (write quorums containing it / writes done)."""
        if self.writes.succeeded == 0:
            return math.nan
        busiest = max(
            (self._write_touches.get(sid, 0) for sid in self._replica_ids),
            default=0,
        )
        return busiest / self.writes.succeeded

    def per_replica_read_load(self) -> dict[int, float]:
        """Read-quorum participation fraction per replica."""
        if self.reads.succeeded == 0:
            return {sid: math.nan for sid in self._replica_ids}
        return {
            sid: self._read_touches.get(sid, 0) / self.reads.succeeded
            for sid in self._replica_ids
        }

    def per_replica_write_load(self) -> dict[int, float]:
        """Write-quorum participation fraction per replica."""
        if self.writes.succeeded == 0:
            return {sid: math.nan for sid in self._replica_ids}
        return {
            sid: self._write_touches.get(sid, 0) / self.writes.succeeded
            for sid in self._replica_ids
        }

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    @property
    def total_operations(self) -> int:
        """Reads plus writes attempted."""
        return self.reads.attempted + self.writes.attempted

    def summary(self) -> dict[str, float]:
        """A flat dict of the headline measured quantities."""
        return {
            "reads": self.reads.attempted,
            "writes": self.writes.attempted,
            "read_availability": self.reads.availability,
            "write_availability": self.writes.availability,
            "read_cost": self.reads.mean_cost,
            "write_cost": self.writes.mean_cost,
            "read_load": self.measured_read_load(),
            "write_load": self.measured_write_load(),
            "read_latency_mean": self.reads.mean_latency,
            "write_latency_mean": self.writes.mean_latency,
        }
