"""Figure/table analysis layer: sweeps, expected loads and text tables.

These helpers regenerate the series behind the paper's Figures 2-4 and
Table 1; the executable entry points live in ``benchmarks/``.
"""

from repro.analysis.crossover import (
    expected_write_crossover_p,
    first_crossing,
    quantity_crossover_n,
)
from repro.analysis.expected import expected_loads, stability_report
from repro.analysis.formulas import (
    ConfigPoint,
    evaluate_configuration,
    evaluate_all,
)
from repro.analysis.sweeps import (
    figure2_series,
    figure3_series,
    figure4_series,
    sweep_configurations,
)
from repro.analysis.tables import format_series, format_table

__all__ = [
    "ConfigPoint",
    "evaluate_all",
    "evaluate_configuration",
    "expected_loads",
    "expected_write_crossover_p",
    "first_crossing",
    "quantity_crossover_n",
    "figure2_series",
    "figure3_series",
    "figure4_series",
    "format_series",
    "format_table",
    "stability_report",
    "sweep_configurations",
]
