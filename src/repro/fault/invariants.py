"""Safety invariants audited on every committed operation under chaos.

Chaos scenarios are only useful if a violated guarantee is *loud*.  The
:class:`InvariantChecker` sits on the outcome stream (it wraps any
``on_outcome`` callback, composing with the monitor) and asserts, per
completed operation, the two safety properties the paper's protocol is
built around:

* **read/write quorum intersection** — every successful read's quorum
  must intersect the quorum of the latest committed write of that key
  (the bi-coterie condition of Section 3.2.3, checked empirically on
  the quorums the coordinator actually used).  Write quorums of the
  arbitrary protocol are *levels* and deliberately do not intersect
  each other — write/write safety comes from versioning, not overlap —
  so no write/write check exists;
* **version monotonicity** — committed write timestamps per key are
  strictly increasing, and a successful read never returns a timestamp
  older than the latest write committed before it (completion order is a
  valid serialisation order under the centralised lock manager).

Violations either raise :class:`InvariantViolation` immediately
(``strict=True``, the default — chaos CI fails on first blood) or are
collected in :attr:`violations` for post-mortem inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # annotation-only: runtime imports here would close the
    # repro.fault <-> repro.sim import cycle (engine imports this module)
    from repro.sim.coordinator import OperationOutcome
    from repro.sim.replica import Timestamp


class InvariantViolation(AssertionError):
    """A safety property the protocol guarantees was observed broken."""


@dataclass
class _KeyHistory:
    write_quorum: frozenset[int] | None = None
    write_timestamp: Timestamp | None = None
    highest_read: Timestamp | None = None
    #: Reconfiguration epoch the latest committed write landed in, for
    #: epoch-annotated violation messages (straddle diagnosis).
    write_epoch: int | None = None


class InvariantChecker:
    """Audits the outcome stream for quorum-intersection and version
    monotonicity violations.

    Use :meth:`wrap` to splice the checker in front of an existing
    outcome callback::

        monitor = Monitor(...)
        checker = InvariantChecker()
        workload = Workload(..., on_outcome=checker.wrap(monitor.record))
    """

    def __init__(self, strict: bool = True) -> None:
        self._strict = strict
        self._keys: dict[Any, _KeyHistory] = {}
        #: Human-readable description of every violation observed.
        self.violations: list[str] = []
        #: Operations audited (successful reads + writes).
        self.checked = 0
        #: Reconfiguration epoch annotations: current epoch number, its
        #: state ("stable"/"transition"), and the audit counts per state —
        #: outcomes straddling an epoch boundary are where reconfiguration
        #: bugs live, so violations name the epoch they were observed in.
        self.epoch = 0
        self.epoch_state = "stable"
        self.checked_by_state: dict[str, int] = {}
        #: ``(epoch, state, simulated-time)`` transition log.
        self.epoch_log: list[tuple[int, str, float]] = []

    def note_epoch(self, epoch: int, state: str, at: float = 0.0) -> None:
        """Record a reconfiguration epoch edge the audited stream crossed.

        Called by the reconfigurer at every state-machine transition
        (stable -> transition -> stable).  Subsequent outcomes are audited
        under — and any violation is attributed to — this epoch.
        """
        self.epoch = epoch
        self.epoch_state = state
        self.epoch_log.append((epoch, state, at))

    def _violate(self, description: str) -> None:
        description = (
            f"[epoch {self.epoch}/{self.epoch_state}] {description}"
        )
        self.violations.append(description)
        if self._strict:
            raise InvariantViolation(description)

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------

    def check(self, outcome: OperationOutcome) -> None:
        """Audit one completed operation (failed ones are ignored)."""
        if not outcome.success:
            return
        self.checked += 1
        state = self.epoch_state
        self.checked_by_state[state] = self.checked_by_state.get(state, 0) + 1
        history = self._keys.get(outcome.key)
        if history is None:
            history = self._keys[outcome.key] = _KeyHistory()
        if outcome.op_type == "write":
            self._check_write(outcome, history)
        else:
            self._check_read(outcome, history)

    def _check_write(
        self, outcome: OperationOutcome, history: _KeyHistory
    ) -> None:
        if (
            outcome.timestamp is not None
            and history.write_timestamp is not None
            and outcome.timestamp.sort_key() <= history.write_timestamp.sort_key()
        ):
            self._violate(
                f"write version {outcome.timestamp} of key {outcome.key!r} "
                f"does not advance past committed {history.write_timestamp}"
            )
        history.write_quorum = outcome.quorum
        history.write_timestamp = outcome.timestamp
        history.write_epoch = self.epoch

    def _check_read(
        self, outcome: OperationOutcome, history: _KeyHistory
    ) -> None:
        # Leased reads contacted no quorum at all (their quorum is empty
        # by design), so there is nothing to intersect — but they are
        # still held to every freshness property below: a lease is
        # revoked at a conflicting write's exclusive-lock grant and
        # re-granted only at its commit, so a leased serve returning a
        # timestamp behind the latest committed write (or behind an
        # earlier read) is a genuine safety bug this audit must catch.
        if not outcome.leased and history.write_quorum is not None and not (
            outcome.quorum & history.write_quorum
        ):
            self._violate(
                f"read quorum {sorted(outcome.quorum)} of key "
                f"{outcome.key!r} does not intersect the latest committed "
                f"write quorum {sorted(history.write_quorum)} "
                f"(written in epoch {history.write_epoch})"
            )
        if outcome.timestamp is None:
            return
        if (
            history.write_timestamp is not None
            and outcome.timestamp.sort_key() < history.write_timestamp.sort_key()
        ):
            self._violate(
                f"read of key {outcome.key!r} returned stale version "
                f"{outcome.timestamp} behind committed {history.write_timestamp}"
            )
        if (
            history.highest_read is not None
            and outcome.timestamp.sort_key() < history.highest_read.sort_key()
        ):
            self._violate(
                f"reads of key {outcome.key!r} went backwards: "
                f"{outcome.timestamp} after {history.highest_read}"
            )
        history.highest_read = outcome.timestamp

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------

    def wrap(
        self, on_outcome: Callable[[OperationOutcome], None]
    ) -> Callable[[OperationOutcome], None]:
        """An outcome callback that audits, then forwards to ``on_outcome``."""

        def audit(outcome: OperationOutcome) -> None:
            self.check(outcome)
            on_outcome(outcome)

        return audit

    @property
    def ok(self) -> bool:
        """True iff no violation has been observed."""
        return not self.violations

    def __repr__(self) -> str:
        return (
            f"InvariantChecker(checked={self.checked}, "
            f"violations={len(self.violations)})"
        )
