"""Property tests for the keyspace routers: deterministic, total, stable."""

import pytest

from repro.shard.router import (
    ROUTER_KINDS,
    HashRouter,
    RangeRouter,
    make_router,
    mix64,
)


class TestMix64:
    def test_process_stable_snapshot(self):
        # Hardcoded outputs pin the placement function across processes,
        # interpreter versions and PYTHONHASHSEED values: if any of these
        # change, previously recorded shard placements silently shift.
        assert mix64(0) == 0
        assert mix64(1) == 0x5692161D100B05E5
        assert mix64(0xDEADBEEF) == 0x4E062702EC929EEA
        assert mix64(2**64 - 1) == 0xB4D055FCF2CBBD7B

    def test_stays_in_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1, 2**64 + 17, -1):
            assert 0 <= mix64(value) < 2**64


class TestRouterContract:
    """The router contract: deterministic, total, reseed-stable."""

    @pytest.mark.parametrize("kind", ROUTER_KINDS)
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_total_over_keyspace(self, kind, shards):
        keys = 257
        router = make_router(kind, shards, keys, seed=42)
        placement = router.placement(keys)
        assert len(placement) == keys
        assert all(0 <= shard < shards for shard in placement)

    @pytest.mark.parametrize("kind", ROUTER_KINDS)
    def test_deterministic_rebuild(self, kind):
        a = make_router(kind, 5, 1000, seed=7)
        b = make_router(kind, 5, 1000, seed=7)
        assert a.placement(1000) == b.placement(1000)

    @pytest.mark.parametrize("kind", ROUTER_KINDS)
    def test_stable_under_shard_count_preserving_reseed(self, kind):
        # Rebuilding the router with the same constructor parameters —
        # even from a differently seeded simulation — reproduces the
        # identical key -> shard map.
        import random

        rng = random.Random(123)
        rng.getrandbits(64)  # unrelated RNG activity must not matter
        before = make_router(kind, 4, 512, seed=9).placement(512)
        rng.getrandbits(64)
        after = make_router(kind, 4, 512, seed=9).placement(512)
        assert before == after

    def test_hash_seed_changes_placement(self):
        base = HashRouter(shards=8, seed=0).placement(4096)
        other = HashRouter(shards=8, seed=1).placement(4096)
        assert base != other

    def test_hash_placement_snapshot(self):
        # Pinned placement for (shards=4, seed=0): guards against any
        # silent change to the mixing constants or reduction.
        router = HashRouter(shards=4, seed=0)
        assert [router.shard_of(k) for k in range(12)] == [
            0, 1, 2, 0, 0, 0, 0, 0, 0, 3, 1, 1,
        ]

    def test_hash_near_uniform_spread(self):
        shards, keys = 8, 40_000
        counts = [0] * shards
        router = HashRouter(shards=shards, seed=3)
        for key in range(keys):
            counts[router.shard_of(key)] += 1
        expected = keys / shards
        for count in counts:
            assert abs(count - expected) < 0.08 * expected

    def test_hash_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            HashRouter(shards=4).shard_of(-1)

    @pytest.mark.parametrize("shards,seed", [(1, 0), (4, 0), (8, 7),
                                             (16, 2**63 + 11)])
    def test_hash_placement_bit_identical_to_unhoisted_formula(
        self, shards, seed
    ):
        # The hoisted per-instance mixed seed must reproduce the original
        # per-call formula ``mix64(key ^ mix64(seed)) % shards`` exactly —
        # a placement shift would silently reshuffle every sharded store
        # built from the same (shards, seed) parameters.
        router = HashRouter(shards=shards, seed=seed)
        expected = [
            mix64(key ^ mix64(seed)) % shards for key in range(2048)
        ]
        assert router.placement(2048) == expected

    def test_hash_mixed_seed_hoisted_once(self):
        # ``shard_of`` must not re-derive mix64(seed) per call: the cached
        # value is computed at construction and reused verbatim.
        router = HashRouter(shards=4, seed=123)
        assert router._mixed_seed == mix64(123)
        sentinel = object()
        object.__setattr__(router, "_mixed_seed", sentinel)
        with pytest.raises(TypeError):
            router.shard_of(0)  # proves the cached value is what's used


class TestRangeRouter:
    def test_monotone_and_contiguous(self):
        router = RangeRouter(shards=3, keys=10)
        placement = router.placement(10)
        assert placement == sorted(placement)
        for shard in range(3):
            lo, hi = router.range_of(shard)
            assert all(router.shard_of(k) == shard for k in range(lo, hi))

    def test_ranges_partition_keyspace(self):
        router = RangeRouter(shards=4, keys=11)
        covered = []
        for shard in range(4):
            lo, hi = router.range_of(shard)
            covered.extend(range(lo, hi))
        assert covered == list(range(11))

    def test_balanced_within_one_key(self):
        router = RangeRouter(shards=7, keys=100)
        sizes = [hi - lo for lo, hi in (router.range_of(s) for s in range(7))]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100

    def test_bounds_checked(self):
        router = RangeRouter(shards=2, keys=8)
        with pytest.raises(ValueError):
            router.shard_of(8)
        with pytest.raises(ValueError):
            router.shard_of(-1)
        with pytest.raises(ValueError):
            router.range_of(2)

    def test_more_shards_than_keys_rejected(self):
        with pytest.raises(ValueError):
            RangeRouter(shards=9, keys=8)


class TestFactory:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_router("consistent-hashing", 4, 100)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            make_router("hash", 0, 100)
