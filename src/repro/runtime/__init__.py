"""The real execution backend: the tree protocol over processes and sockets.

Everything in :mod:`repro.sim` runs against the discrete-event simulator;
this package runs the *same* coordinator, site, lock, lease and retry
logic over actual asyncio TCP connections, with each replica site a real
OS process:

* :mod:`~repro.runtime.interfaces` — the ``Clock``/``Transport`` seam
  both backends implement;
* :mod:`~repro.runtime.clock` — wall-clock ``Clock`` over an asyncio
  event loop;
* :mod:`~repro.runtime.codec` — length-prefixed JSON frames for the
  protocol messages;
* :mod:`~repro.runtime.loopback` — the minimal in-process transport
  (seam conformance tests);
* :mod:`~repro.runtime.siteserver` — one replica site served over TCP
  (the ``repro serve`` entry point);
* :mod:`~repro.runtime.transport` — the coordinator-side TCP transport;
* :mod:`~repro.runtime.cluster` — spawn N local site processes, wire a
  coordinator front-end, serve a get/put KV API, and inject SIGKILL
  chaos (the ``repro cluster`` entry point).

Nothing here imports the simulator's event loop; nothing in the protocol
layer imports this package except through the seam.
"""

from repro.runtime.interfaces import CancelHandle, Clock, Endpoint, Transport

__all__ = ["CancelHandle", "Clock", "Endpoint", "Transport"]
