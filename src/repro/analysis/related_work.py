"""The introduction's related-work comparison as an executable table.

Section 1 of the paper walks through the replica control landscape with a
specific cost/load figure for each protocol.  This module reproduces that
survey as data: one :class:`RelatedWorkEntry` per protocol with the intro's
formulas evaluated at a given ``n`` (snapped to each protocol's admissible
sizes), used by ``benchmarks/bench_related_work.py``.

Two of the surveyed tree protocols are represented by their published cost
formulas only (the paper cites but does not define them):

* Koch [7] — ternary tree (S = 3), read cost 1 .. S^h, write cost
  O(log n); cost-1 reads load the root: load 1;
* Choi-Youn-Choi [5] — symmetric ternary tree, read cost 1 .. S^(h/2),
  write cost O(log n); cost-1 reads induce load 0.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.builder import recommended_tree
from repro.core.metrics import read_cost as arbitrary_read_cost
from repro.core.metrics import read_load as arbitrary_read_load
from repro.core.metrics import write_cost_avg, write_load
from repro.protocols.agrawal_tree import AgrawalTreeProtocol
from repro.protocols.fpp import FiniteProjectivePlaneProtocol, fpp_sizes
from repro.protocols.grid import GridProtocol
from repro.protocols.hqc import HQCProtocol, hqc_sizes
from repro.protocols.majority import MajorityProtocol
from repro.protocols.rowa import RowaProtocol
from repro.protocols.tree_quorum import TreeQuorumProtocol, binary_tree_sizes


@dataclass(frozen=True)
class RelatedWorkEntry:
    """One row of the intro survey, evaluated at a concrete size."""

    protocol: str
    reference: str
    n: int
    read_cost_best: float
    read_cost_worst: float
    write_cost: float
    read_load: float
    write_load: float


def _nearest(sizes: list[int], n: int) -> int:
    return min(sizes, key=lambda candidate: abs(candidate - n))


def survey(n: int = 121) -> list[RelatedWorkEntry]:
    """Evaluate every intro protocol at (approximately) ``n`` replicas."""
    entries: list[RelatedWorkEntry] = []

    rowa = RowaProtocol(n)
    entries.append(RelatedWorkEntry(
        protocol="ROWA", reference="[3]", n=n,
        read_cost_best=1, read_cost_worst=1, write_cost=n,
        read_load=rowa.read_load(), write_load=rowa.write_load(),
    ))

    odd = n if n % 2 == 1 else n + 1
    majority = MajorityProtocol(odd)
    entries.append(RelatedWorkEntry(
        protocol="Majority", reference="[13]", n=odd,
        read_cost_best=(odd + 1) / 2, read_cost_worst=(odd + 1) / 2,
        write_cost=(odd + 1) / 2,
        read_load=majority.read_load(), write_load=majority.write_load(),
    ))

    fpp_n = _nearest(fpp_sizes(23), n)
    fpp = FiniteProjectivePlaneProtocol(fpp_n)
    entries.append(RelatedWorkEntry(
        protocol="FPP (sqrt n)", reference="[9]", n=fpp_n,
        read_cost_best=fpp.quorum_size(), read_cost_worst=fpp.quorum_size(),
        write_cost=fpp.quorum_size(),
        read_load=fpp.read_load(), write_load=fpp.write_load(),
    ))

    side = max(2, math.isqrt(n))
    grid = GridProtocol(side * side)
    entries.append(RelatedWorkEntry(
        protocol="Grid", reference="[4]", n=side * side,
        read_cost_best=grid.read_cost(), read_cost_worst=grid.read_cost(),
        write_cost=grid.write_cost(),
        read_load=grid.read_load(), write_load=grid.write_load(),
    ))

    binary_n = _nearest(binary_tree_sizes(12), n)
    binary = TreeQuorumProtocol(binary_n)
    entries.append(RelatedWorkEntry(
        protocol="Tree quorum", reference="[2]", n=binary_n,
        read_cost_best=binary.min_cost(), read_cost_worst=binary.max_cost(),
        write_cost=binary.average_cost(),
        read_load=binary.optimal_load(), write_load=binary.optimal_load(),
    ))

    hqc_n = _nearest(hqc_sizes(7), n)
    hqc = HQCProtocol(hqc_n)
    entries.append(RelatedWorkEntry(
        protocol="HQC", reference="[8]", n=hqc_n,
        read_cost_best=hqc.quorum_size(), read_cost_worst=hqc.quorum_size(),
        write_cost=hqc.quorum_size(),
        read_load=hqc.optimal_load(), write_load=hqc.optimal_load(),
    ))

    # [1]: complete (2d+1)-ary tree with d = 1 -> ternary; pick the height
    # whose size is nearest n.
    heights = range(1, 8)
    sizes = {(3 ** (h + 1) - 1) // 2: h for h in heights}
    ae_n = _nearest(list(sizes), n)
    ae = AgrawalTreeProtocol(d=1, height=sizes[ae_n])
    entries.append(RelatedWorkEntry(
        protocol="AE tree (VLDB90)", reference="[1]", n=ae.n,
        read_cost_best=ae.read_cost_min(), read_cost_worst=ae.read_cost_max(),
        write_cost=ae.write_cost_exact(),
        read_load=ae.read_load(), write_load=ae.write_load(),
    ))

    entries.append(koch_model(n))
    entries.append(choi_model(n))

    arbitrary = recommended_tree(n)
    entries.append(RelatedWorkEntry(
        protocol="Arbitrary (this paper)", reference="-", n=n,
        read_cost_best=arbitrary_read_cost(arbitrary),
        read_cost_worst=arbitrary_read_cost(arbitrary),
        write_cost=write_cost_avg(arbitrary),
        read_load=arbitrary_read_load(arbitrary),
        write_load=write_load(arbitrary),
    ))
    return entries


def _ternary_height(n: int) -> tuple[int, int]:
    """(height, size) of the complete ternary tree with size nearest n."""
    sizes = {(3 ** (h + 1) - 1) // 2: h for h in range(1, 10)}
    snapped = _nearest(list(sizes), n)
    return sizes[snapped], snapped


def koch_model(n: int) -> RelatedWorkEntry:
    """Koch [7] per the intro: reads 1..3^h, writes O(log n), load 1."""
    height, snapped = _ternary_height(n)
    return RelatedWorkEntry(
        protocol="Koch", reference="[7]", n=snapped,
        read_cost_best=1, read_cost_worst=3.0**height,
        write_cost=math.log(snapped, 3) + 1,   # O(log n) path-style writes
        read_load=1.0,                          # cost-1 reads hit the root
        write_load=1.0,                         # the root is in every write
    )


def choi_model(n: int) -> RelatedWorkEntry:
    """Choi-Youn-Choi [5] per the intro: reads 1..3^(h/2), load 0.5."""
    height, snapped = _ternary_height(n)
    return RelatedWorkEntry(
        protocol="Choi symmetric", reference="[5]", n=snapped,
        read_cost_best=1, read_cost_worst=3.0 ** (height / 2),
        write_cost=math.log(snapped, 3) + 1,
        read_load=0.5,                          # the intro's quoted load
        write_load=1.0,
    )
