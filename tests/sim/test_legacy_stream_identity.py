"""Golden-fingerprint guard for the legacy (unbatched, unleased) hot path.

The throughput work — coordinator batching, read leases, the slotted event
ring, multicast scheduling, dispatch-table receive, masked quorum
selection, and the bisect key picker — is all required to be *invisible*
when ``batch_window=0`` and ``leases=False`` (the defaults): every RNG
stream, event ordering and monitor fold must replay exactly as before.

These tests pin ``result.summary()`` of seven configurations spanning the
protocol zoo and the fault layer to the values the pre-optimisation
simulator produced (captured on `main` before the hot-path changes).  Any
float in any summary moving by one ULP means a default-path behaviour
change and must fail loudly here.  ``events_processed`` is deliberately
NOT pinned: scheduler-internal event *counts* may shrink (the multicast
fast path delivers a broadcast as one event), but everything observable —
message counters, outcome streams, latencies, durations — is exact.

The goldens were captured by running exactly the configs below; regenerate
only when a PR deliberately changes default-path semantics, and say so in
its description.
"""

import math

import pytest

from repro.core.builder import from_spec
from repro.fault.retry import RetryPolicySpec
from repro.fault.scenarios import chaos_injector
from repro.protocols.zoo import quorum_system
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.failures import BernoulliFailures
from repro.sim.workload import WorkloadSpec

NAN = float("nan")


def _configs():
    yield "tree_1-3-5_closed", SimulationConfig(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(operations=120, read_fraction=0.5),
        seed=7,
    )
    yield "tree_1-2-4_poisson_zipf_bernoulli", SimulationConfig(
        tree=from_spec("1-2-4"),
        workload=WorkloadSpec(
            operations=150, read_fraction=0.5, keys=16,
            arrival="poisson", rate=0.3, zipf_s=1.2,
        ),
        failures=BernoulliFailures(p=0.8, seed=11, resample_every=25.0),
        timeout=6.0,
        seed=11,
    )
    yield "majority_7_two_clients_service_time", SimulationConfig(
        system=quorum_system("majority", 7),
        workload=WorkloadSpec(operations=100, read_fraction=0.7, keys=8),
        clients=2,
        service_time=0.5,
        seed=3,
    )
    yield "grid_9_structural_poisson", SimulationConfig(
        system=quorum_system("grid", 9),
        workload=WorkloadSpec(
            operations=100, read_fraction=0.5, keys=8,
            arrival="poisson", rate=0.4,
        ),
        seed=5,
    )
    yield "tree_quorum_7_lossy", SimulationConfig(
        system=quorum_system("tree-quorum", 7),
        workload=WorkloadSpec(operations=120, read_fraction=0.5, keys=8),
        drop_probability=0.05,
        duplicate_probability=0.02,
        timeout=6.0,
        max_attempts=5,
        seed=13,
    )
    yield "chaos_mass_crash_detector_retry", SimulationConfig(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(
            operations=150, read_fraction=0.5, keys=16,
            arrival="poisson", rate=0.3,
        ),
        failures=chaos_injector("mass-crash", 8, seed=21, horizon=500.0),
        timeout=8.0,
        max_attempts=3,
        detector=True,
        retry_policy=RetryPolicySpec(kind="exponential", base=0.5, jitter=0.2),
        check_invariants=True,
        seed=21,
    )
    yield "tree_1-3-5_duplicating", SimulationConfig(
        # Duplicate delivery exercises the second RNG draw + second
        # scheduled delivery per message in Network.send — the closure-free
        # rewrite must replay both draws and both deliveries exactly.
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(operations=150, read_fraction=0.5, keys=8),
        duplicate_probability=0.25,
        timeout=6.0,
        max_attempts=4,
        seed=17,
    )
    yield "chaos_flapping_invariants", SimulationConfig(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(
            operations=150, read_fraction=0.5, keys=16,
            arrival="poisson", rate=0.3,
        ),
        failures=chaos_injector("flapping", 8, seed=9, horizon=500.0),
        timeout=8.0,
        max_attempts=3,
        check_invariants=True,
        seed=9,
    )


CONFIGS = dict(_configs())

GOLDEN_SUMMARIES = {
    "tree_1-3-5_closed": {
        "duration": 492.0,
        "failure_latency_mean": NAN,
        "messages_delivered": 1460.0,
        "messages_dropped": 0.0,
        "messages_sent": 1460.0,
        "read_availability": 1.0,
        "read_cost": 2.0,
        "read_failure_latency_mean": NAN,
        "read_latency_mean": 2.0,
        "read_load": 0.43859649122807015,
        "reads": 57,
        "write_availability": 1.0,
        "write_cost": 3.888888888888889,
        "write_cost_total": 5.888888888888889,
        "write_failure_latency_mean": NAN,
        "write_latency_mean": 6.0,
        "write_load": 0.5555555555555556,
        "write_version_cost": 2.0,
        "writes": 63,
    },
    "tree_1-2-4_poisson_zipf_bernoulli": {
        "duration": 543.3622303023353,
        "failure_latency_mean": 25.585766618316903,
        "messages_delivered": 1221.0,
        "messages_dropped": 11.0,
        "messages_sent": 1232.0,
        "read_availability": 0.9102564102564102,
        "read_cost": 2.0,
        "read_failure_latency_mean": 18.083376357489367,
        "read_latency_mean": 8.206076766267623,
        "read_load": 0.5070422535211268,
        "reads": 78,
        "write_availability": 0.7083333333333334,
        "write_cost": 2.7058823529411766,
        "write_cost_total": 4.705882352941177,
        "write_failure_latency_mean": 28.086563371926076,
        "write_latency_mean": 10.891728082627937,
        "write_load": 0.6470588235294118,
        "write_version_cost": 2.0,
        "writes": 72,
    },
    "majority_7_two_clients_service_time": {
        "duration": 370.0,
        "failure_latency_mean": NAN,
        "messages_delivered": 1184.0,
        "messages_dropped": 0.0,
        "messages_sent": 1184.0,
        "read_availability": 1.0,
        "read_cost": 4.0,
        "read_failure_latency_mean": NAN,
        "read_latency_mean": 2.5,
        "read_load": 0.6578947368421053,
        "reads": 76,
        "write_availability": 1.0,
        "write_cost": 4.0,
        "write_cost_total": 8.0,
        "write_failure_latency_mean": NAN,
        "write_latency_mean": 7.5,
        "write_load": 0.875,
        "write_version_cost": 4.0,
        "writes": 24,
    },
    "grid_9_structural_poisson": {
        "duration": 284.39094643000817,
        "failure_latency_mean": NAN,
        "messages_delivered": 1500.0,
        "messages_dropped": 0.0,
        "messages_sent": 1500.0,
        "read_availability": 1.0,
        "read_cost": 3.0,
        "read_failure_latency_mean": NAN,
        "read_latency_mean": 2.475942323871401,
        "read_load": 0.43636363636363634,
        "reads": 55,
        "write_availability": 1.0,
        "write_cost": 5.0,
        "write_cost_total": 8.0,
        "write_failure_latency_mean": NAN,
        "write_latency_mean": 6.485790446608687,
        "write_load": 0.6666666666666666,
        "write_version_cost": 3.0,
        "writes": 45,
    },
    "tree_quorum_7_lossy": {
        "duration": 1183.0,
        "failure_latency_mean": 31.25,
        "messages_delivered": 2111.0,
        "messages_dropped": 107.0,
        "messages_sent": 2174.0,
        "read_availability": 0.921875,
        "read_cost": 3.0,
        "read_failure_latency_mean": 30.0,
        "read_latency_mean": 4.033898305084746,
        "read_load": 1.0,
        "reads": 64,
        "write_availability": 0.9464285714285714,
        "write_cost": 3.0,
        "write_cost_total": 6.0,
        "write_failure_latency_mean": 33.333333333333336,
        "write_latency_mean": 13.11320754716981,
        "write_load": 1.0,
        "write_version_cost": 3.0,
        "writes": 56,
    },
    "chaos_mass_crash_detector_retry": {
        "duration": 529.8633887386293,
        "failure_latency_mean": 9.430997768760884,
        "messages_delivered": 1852.0,
        "messages_dropped": 0.0,
        "messages_sent": 1852.0,
        "read_availability": 1.0,
        "read_cost": 2.0,
        "read_failure_latency_mean": NAN,
        "read_latency_mean": 2.2374851628533765,
        "read_load": 0.4461538461538462,
        "reads": 65,
        "write_availability": 0.8352941176470589,
        "write_cost": 3.9859154929577465,
        "write_cost_total": 5.985915492957746,
        "write_failure_latency_mean": 9.430997768760884,
        "write_latency_mean": 6.210960244431989,
        "write_load": 0.5070422535211268,
        "write_version_cost": 2.0,
        "writes": 85,
    },
    "tree_1-3-5_duplicating": {
        "duration": 600.0,
        "failure_latency_mean": NAN,
        "messages_delivered": 2516.0,
        "messages_dropped": 0.0,
        "messages_sent": 2007.0,
        "read_availability": 1.0,
        "read_cost": 2.0,
        "read_failure_latency_mean": NAN,
        "read_latency_mean": 2.0,
        "read_load": 0.3466666666666667,
        "reads": 75,
        "write_availability": 1.0,
        "write_cost": 3.96,
        "write_cost_total": 5.96,
        "write_failure_latency_mean": NAN,
        "write_latency_mean": 6.0,
        "write_load": 0.52,
        "write_version_cost": 2.0,
        "writes": 75,
    },
    "chaos_flapping_invariants": {
        "duration": 522.9804330542281,
        "failure_latency_mean": 24.236987779518604,
        "messages_delivered": 1481.0,
        "messages_dropped": 10.0,
        "messages_sent": 1491.0,
        "read_availability": 0.8536585365853658,
        "read_cost": 2.0,
        "read_failure_latency_mean": 24.307308892370543,
        "read_latency_mean": 4.942057143504568,
        "read_load": 0.4142857142857143,
        "reads": 82,
        "write_availability": 0.8235294117647058,
        "write_cost": 4.142857142857143,
        "write_cost_total": 6.142857142857143,
        "write_failure_latency_mean": 24.166666666666668,
        "write_latency_mean": 9.185066352524997,
        "write_load": 0.5714285714285714,
        "write_version_cost": 2.0,
        "writes": 68,
    },
}


def assert_summary_exact(actual: dict, golden: dict, name: str) -> None:
    """Exact equality (NaN matches NaN) with a readable per-key diff."""
    assert actual.keys() == golden.keys(), (
        f"{name}: summary keys changed: "
        f"+{sorted(actual.keys() - golden.keys())} "
        f"-{sorted(golden.keys() - actual.keys())}"
    )
    for key, expected in golden.items():
        value = actual[key]
        if isinstance(expected, float) and math.isnan(expected):
            assert isinstance(value, float) and math.isnan(value), (
                f"{name}.{key}: expected NaN, got {value!r}"
            )
        else:
            assert value == expected, (
                f"{name}.{key}: expected {expected!r}, got {value!r}"
            )


@pytest.mark.parametrize("name", list(CONFIGS))
def test_default_path_reproduces_golden_stream(name):
    config = CONFIGS[name]
    assert config.batch_window == 0.0 and config.leases is False
    # reconfiguration must be fully disarmed on the legacy path: no
    # reshape is ever scheduled, so the streams cannot have moved
    assert config.reshape_at == 0.0 and config.reshape_spec is None
    result = simulate(config)
    assert result.reconfiguration is None
    assert_summary_exact(result.summary(), GOLDEN_SUMMARIES[name], name)
    if config.check_invariants:
        assert result.invariants is not None and result.invariants.ok


def test_goldens_cover_chaos_and_structural_paths():
    """The fixture zoo spans every legacy code path the hot path rewrote."""
    names = set(CONFIGS)
    assert any("chaos" in name for name in names)
    assert any("lossy" in name for name in names)
    assert any("structural" in name for name in names)
    assert any("service_time" in name for name in names)
    assert any("duplicating" in name for name in names)


def test_duplicate_delivery_stream_pinned():
    """The duplicating config actually exercises duplication, exactly.

    Pinning the network's ``duplicated`` counter pins the second RNG draw
    and the second scheduled delivery of every duplicated message.  The
    delivered total stays slightly below ``sent + duplicated`` because the
    run stops the instant the last operation completes, with a tail of
    duplicates still in flight — exactly as the pre-optimisation
    simulator behaved.
    """
    result = simulate(CONFIGS["tree_1-3-5_duplicating"])
    stats = result.network_stats
    assert stats.duplicated == 510
    assert stats.sent < stats.delivered <= stats.sent + stats.duplicated
