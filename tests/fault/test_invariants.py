"""Unit tests for the chaos safety invariant checker."""

import pytest

from repro.fault.invariants import InvariantChecker, InvariantViolation
from repro.sim.coordinator import OperationOutcome
from repro.sim.replica import Timestamp


def write(key, version, quorum, writer=0):
    return OperationOutcome(
        op_type="write", key=key, success=True, value=f"v{version}",
        timestamp=Timestamp(version=version, sid=writer),
        quorum=frozenset(quorum),
    )


def read(key, version, quorum, writer=0):
    return OperationOutcome(
        op_type="read", key=key, success=True, value=f"v{version}",
        timestamp=Timestamp(version=version, sid=writer),
        quorum=frozenset(quorum),
    )


def failure(key):
    return OperationOutcome(op_type="read", key=key, success=False)


class TestCleanStreams:
    def test_healthy_history_passes(self):
        checker = InvariantChecker()
        checker.check(write("k", 1, {0, 1, 2}))
        checker.check(read("k", 1, {2, 3}))
        checker.check(write("k", 2, {3, 4, 5}))
        checker.check(read("k", 2, {5, 6}))
        assert checker.ok
        assert checker.checked == 4

    def test_failures_are_ignored(self):
        checker = InvariantChecker()
        checker.check(failure("k"))
        assert checker.checked == 0
        assert checker.ok

    def test_write_quorums_need_not_intersect_each_other(self):
        # The arbitrary protocol's write quorums are whole levels and are
        # pairwise disjoint by design; only read/write intersection and
        # version monotonicity are protocol guarantees.
        checker = InvariantChecker()
        checker.check(write("k", 1, {0}))
        checker.check(write("k", 2, {4, 5, 6}))
        assert checker.ok

    def test_keys_are_independent(self):
        checker = InvariantChecker()
        checker.check(write("a", 5, {0, 1}))
        checker.check(write("b", 1, {2, 3}))
        assert checker.ok


class TestViolations:
    def test_read_quorum_must_intersect_latest_write_quorum(self):
        checker = InvariantChecker()
        checker.check(write("k", 1, {0, 1, 2}))
        with pytest.raises(InvariantViolation, match="does not intersect"):
            checker.check(read("k", 1, {7, 8}))

    def test_stale_read_version_caught(self):
        checker = InvariantChecker()
        checker.check(write("k", 3, {0, 1}))
        with pytest.raises(InvariantViolation, match="stale"):
            checker.check(read("k", 2, {1, 5}))

    def test_write_version_must_advance(self):
        checker = InvariantChecker()
        checker.check(write("k", 2, {0, 1}))
        with pytest.raises(InvariantViolation, match="does not advance"):
            checker.check(write("k", 2, {1, 2}))

    def test_reads_must_not_go_backwards(self):
        checker = InvariantChecker(strict=False)
        checker.check(write("k", 1, {0, 1}))
        checker.check(read("k", 5, {1, 2}, writer=3))
        checker.check(read("k", 1, {1, 2}))
        assert any("backwards" in v for v in checker.violations)

    def test_non_strict_collects_instead_of_raising(self):
        checker = InvariantChecker(strict=False)
        checker.check(write("k", 1, {0, 1, 2}))
        checker.check(read("k", 1, {7, 8}))
        assert not checker.ok
        assert len(checker.violations) == 1
        assert "does not intersect" in checker.violations[0]


class TestWrap:
    def test_wrap_audits_then_forwards(self):
        checker = InvariantChecker()
        seen = []
        audit = checker.wrap(seen.append)
        outcome = write("k", 1, {0, 1})
        audit(outcome)
        assert seen == [outcome]
        assert checker.checked == 1

    def test_wrap_raises_before_forwarding_on_violation(self):
        checker = InvariantChecker()
        seen = []
        audit = checker.wrap(seen.append)
        audit(write("k", 1, {0, 1}))
        with pytest.raises(InvariantViolation):
            audit(read("k", 1, {9}))
        assert len(seen) == 1  # the violating outcome never reached the sink
