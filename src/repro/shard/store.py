"""The sharded multi-object keyspace: N replica groups behind one router.

The paper's protocol replicates a *single* object; a production keyspace
serves millions of keys.  This module composes the two: a
:class:`~repro.shard.router.ShardRouter` partitions the key indices onto
``shards`` shards, each shard runs its own complete replica group — any
:mod:`repro.protocols.zoo` quorum system, heterogeneous shapes allowed —
on a shared discrete-event scheduler, and a
:class:`~repro.shard.balancer.LoadBalancer` spreads the client stream
over each shard's coordinator pool.  The
:class:`~repro.sim.workload.Workload` drives the whole thing through its
dispatcher hook: every picked key is routed to its shard's coordinator
instead of an assumed single object.

Determinism contract (mirrors the engine's): one master RNG seeded with
``seed`` derives, in order, a ``(network, coordinator, failure)`` seed
triple per shard (shard order), then the workload seed — so a run is a
pure function of its config, and repeated-seed fan-outs merge
bit-identically through :class:`~repro.sim.monitor.ShardedMonitor`'s
shard-wise folds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.fault.retry import RetryPolicySpec
from repro.quorums.system import QuorumSystem
from repro.shard.balancer import LoadBalancer
from repro.shard.router import ShardRouter, make_router
from repro.sim.coordinator import OperationOutcome, QuorumCoordinator
from repro.sim.engine import (
    ReplicaGroup,
    SimulationConfig,
    build_replica_group,
    run_workload,
)
from repro.sim.events import Scheduler
from repro.sim.failures import BernoulliFailures, NoFailures
from repro.sim.monitor import Monitor, ShardedMonitor
from repro.sim.network import NetworkStats, RegionLatencyMatrix
from repro.sim.workload import Workload, WorkloadSpec
from repro.obs.recorder import NULL_RECORDER


@dataclass
class ShardedConfig:
    """Everything a sharded simulation run needs.

    Attributes
    ----------
    workload:
        The client stream (mix, arrivals, key popularity).  ``keys`` is
        the size of the *global* keyspace the router partitions.
    shards:
        Number of shards (replica groups).
    systems:
        Per-shard quorum systems.  Each entry is either a built
        :class:`~repro.quorums.system.QuorumSystem` or a plain-data
        system reference (``("tree", "1-3-5")`` / ``("protocol",
        "majority", 9)`` — the runner's picklable format).  A single
        entry is broadcast to every shard; otherwise the length must
        equal ``shards``.  Heterogeneous shapes are explicitly allowed —
        e.g. a read-optimised tree for the Zipf head shard and majority
        elsewhere.
    router / router_seed:
        Partitioning scheme (``"hash"`` or ``"range"``) and the hash
        placement seed.
    balancer:
        Coordinator-pool policy per shard (``"round-robin"`` or
        ``"least-outstanding"``).
    clients_per_shard:
        Coordinators per shard; the balancer spreads traffic over them.
    p:
        Per-replica Bernoulli availability per shard (1.0 = no
        failures), resampled every 40 time units like the CLI default.
    regions / local_latency / remote_latency / latency_jitter:
        When ``regions > 0``, each shard's sites are assigned round-robin
        to that many regions and messages pay a
        :class:`~repro.sim.network.RegionLatencyMatrix` cost
        (``local_latency`` intra-region, ``remote_latency`` across).
        ``latency`` is used as the scalar model when ``regions == 0``.
    """

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    shards: int = 4
    systems: tuple = (("tree", "1-3-5"),)
    router: str = "hash"
    router_seed: int = 0
    balancer: str = "round-robin"
    clients_per_shard: int = 1
    p: float = 1.0
    latency: Any = 1.0
    regions: int = 0
    local_latency: float = 1.0
    remote_latency: float = 3.0
    latency_jitter: float = 0.0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    timeout: float = 16.0
    max_attempts: int = 3
    service_time: float = 0.0
    seed: int = 0
    retry_policy: RetryPolicySpec | None = None
    detector: bool = False
    probe_interval: float = 30.0
    suspect_threshold: int = 1
    batch_window: float = 0.0
    leases: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if not self.systems:
            raise ValueError("need at least one system (broadcast) entry")
        if len(self.systems) not in (1, self.shards):
            raise ValueError(
                f"systems must have 1 or {self.shards} entries, "
                f"got {len(self.systems)}"
            )
        if self.clients_per_shard < 1:
            raise ValueError("need at least one client per shard")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("p must be in [0, 1]")

    def resolve_systems(self) -> list[tuple[QuorumSystem, int]]:
        """The per-shard ``(system, replica count)`` pairs, refs resolved."""
        from repro.runner.tasks import resolve_system

        entries = list(self.systems)
        if len(entries) == 1:
            entries = entries * self.shards
        resolved: list[tuple[QuorumSystem, int]] = []
        for entry in entries:
            system = (
                resolve_system(entry) if isinstance(entry, tuple) else entry
            )
            universe = system.universe
            n = len(universe)
            if universe != frozenset(range(n)):
                raise ValueError(
                    f"shard system {getattr(system, 'name', system)!r} must "
                    f"have universe 0..{n - 1} to map onto replica sites"
                )
            resolved.append((system, n))
        return resolved


class ShardedStore:
    """Router + balancer + per-shard replica groups, ready to dispatch.

    :meth:`dispatch` is the workload's dispatcher: key index -> shard
    (router) -> coordinator (balancer), plus a per-operation sink that
    releases the balancer slot and records the outcome into the shard's
    monitor.
    """

    def __init__(
        self,
        router: ShardRouter,
        balancer: LoadBalancer,
        groups: list[ReplicaGroup],
        monitor: ShardedMonitor,
    ) -> None:
        if len(groups) != router.shards or len(monitor) != router.shards:
            raise ValueError("router/groups/monitor shard counts must agree")
        self.router = router
        self.balancer = balancer
        self.groups = groups
        self.monitor = monitor

    @property
    def shards(self) -> int:
        """Number of shards."""
        return self.router.shards

    @property
    def coordinators(self) -> list[QuorumCoordinator]:
        """Every coordinator, shard-major (shard 0's pool first)."""
        return [
            coordinator
            for group in self.groups
            for coordinator in group.coordinators
        ]

    def dispatch(self, key_index: int):
        """Route one key index: ``(coordinator, outcome sink)``."""
        shard = self.router.shard_of(key_index)
        slot, coordinator = self.balancer.pick(shard)
        record = self.monitor.shards[shard].record

        def sink(outcome: OperationOutcome) -> None:
            self.balancer.release(shard, slot)
            record(outcome)

        return coordinator, sink

    def shard_keys(self, shard: int, keyspace: int) -> list[str]:
        """Key names of a ``keyspace``-key workload that route to ``shard``.

        The workload names key index ``i`` as ``f"k{i}"``; a shard's
        migration key list is exactly the indices the router sends to it.
        """
        return [
            f"k{index}" for index in range(keyspace)
            if self.router.shard_of(index) == shard
        ]

    def reconfigure_shard(
        self,
        shard: int,
        new_tree,
        keys: list[str],
        on_done,
        online: bool = True,
        invariants=None,
    ):
        """Launch a tree change on one shard's replica group.

        Reconfiguration is naturally shard-local: only the chosen shard's
        coordinator pool transitions (online dual-quorum epochs by
        default, quiescent stop-the-world with ``online=False``) while
        every other shard keeps serving untouched.  ``keys`` is the
        shard's own key list (see :meth:`shard_keys`).  Returns the
        :class:`~repro.sim.reconfigure.TreeReconfigurer` so callers can
        watch its epoch state.
        """
        from repro.sim.reconfigure import TreeReconfigurer

        group = self.groups[shard]
        reconfigurer = TreeReconfigurer(
            group.coordinators[0], invariants=invariants
        )
        if online:
            reconfigurer.reconfigure_online(new_tree, keys, on_done)
        else:
            reconfigurer.reconfigure(new_tree, keys, on_done, wait=True)
        return reconfigurer

    def network_stats(self) -> NetworkStats:
        """Message counters summed across every shard's network."""
        total = NetworkStats()
        for group in self.groups:
            stats = group.network.stats
            total.sent += stats.sent
            total.delivered += stats.delivered
            total.duplicated += stats.duplicated
            total.dropped_loss += stats.dropped_loss
            total.dropped_partition += stats.dropped_partition
            total.dropped_dead += stats.dropped_dead
        return total


def _shard_latency(config: ShardedConfig, n: int) -> Any:
    """The latency model one shard's network runs under."""
    if config.regions <= 0:
        return config.latency
    return RegionLatencyMatrix.round_robin(
        range(n),
        config.regions,
        local=config.local_latency,
        remote=config.remote_latency,
        jitter=config.latency_jitter,
    )


def build_sharded_simulation(
    config: ShardedConfig,
) -> tuple[Scheduler, Workload, ShardedStore]:
    """Wire a sharded simulation without running it.

    Seed derivation order (the determinism contract): for each shard in
    shard order, a ``(network, coordinator, failure)`` 64-bit triple off
    the master stream — the failure seed is drawn even when ``p == 1`` so
    turning failures on never reshuffles another shard's streams — then
    one workload seed.
    """
    resolved = config.resolve_systems()
    scheduler = Scheduler()
    master = random.Random(config.seed)
    groups: list[ReplicaGroup] = []
    monitors: list[Monitor] = []
    for system, n in resolved:
        network_seed = master.getrandbits(64)
        coordinator_seed = master.getrandbits(64)
        failure_seed = master.getrandbits(64)
        failures = (
            NoFailures()
            if config.p >= 1.0
            else BernoulliFailures(
                p=config.p, seed=failure_seed, resample_every=40.0
            )
        )
        shard_config = SimulationConfig(
            system=system,
            workload=config.workload,
            failures=failures,
            latency=_shard_latency(config, n),
            drop_probability=config.drop_probability,
            duplicate_probability=config.duplicate_probability,
            timeout=config.timeout,
            max_attempts=config.max_attempts,
            clients=config.clients_per_shard,
            service_time=config.service_time,
            retry_policy=config.retry_policy,
            detector=config.detector,
            probe_interval=config.probe_interval,
            suspect_threshold=config.suspect_threshold,
            batch_window=config.batch_window,
            leases=config.leases,
        )
        groups.append(
            build_replica_group(
                shard_config, system, n, scheduler, NULL_RECORDER,
                network_seed, coordinator_seed,
            )
        )
        monitors.append(Monitor(replica_ids=tuple(range(n))))
    workload_seed = master.getrandbits(64)
    router = make_router(
        config.router, config.shards, config.workload.keys, config.router_seed
    )
    balancer = LoadBalancer(
        [group.coordinators for group in groups], policy=config.balancer
    )
    store = ShardedStore(
        router=router,
        balancer=balancer,
        groups=groups,
        monitor=ShardedMonitor(monitors),
    )
    workload = Workload(
        spec=config.workload,
        coordinator=store.coordinators,
        scheduler=scheduler,
        rng=random.Random(workload_seed),
        on_outcome=lambda _outcome: None,
        dispatcher=store.dispatch,
    )
    return scheduler, workload, store


@dataclass
class ShardedResult:
    """Everything measured by one sharded simulation run."""

    config: ShardedConfig
    monitor: ShardedMonitor
    store: ShardedStore
    duration: float
    events_processed: int

    def summary(self) -> dict[str, float]:
        """Aggregate headline numbers plus throughput and message counters.

        ``ops_per_sec`` is *simulated* throughput: completed operations
        per simulated time unit — the capacity number shard counts are
        benchmarked on.
        """
        result = self.monitor.summary()
        completed = result["reads"] + result["writes"]
        result["ops_per_sec"] = (
            completed / self.duration if self.duration > 0 else float("nan")
        )
        stats = self.store.network_stats()
        result["messages_sent"] = float(stats.sent)
        result["messages_delivered"] = float(stats.delivered)
        result["messages_dropped"] = float(stats.dropped)
        result["duration"] = self.duration
        return result


def simulate_sharded(
    config: ShardedConfig, max_events: int = 50_000_000
) -> ShardedResult:
    """Run one configured sharded simulation until the workload completes."""
    scheduler, workload, store = build_sharded_simulation(config)
    run_workload(scheduler, workload, max_events)
    return ShardedResult(
        config=config,
        monitor=store.monitor,
        store=store,
        duration=scheduler.now,
        events_processed=scheduler.processed_events,
    )
