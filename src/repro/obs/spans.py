"""Typed trace spans: the unit of the observability layer.

A *trace* is the tree of everything one operation did: the root span is
the operation itself ("read"/"write"), its children are the lock wait and
each quorum attempt, and attempt children are the protocol phases
(READ/VERSION/PREPARE/COMMIT), unavailability deferrals and point events
(timeouts, retries).  Spans carry interval timestamps in *simulated* time,
a status, and free-form attributes, so the whole measurement pipeline —
per-phase latency breakdowns, failure accounting, flame summaries — can be
rebuilt from the span stream alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class SpanKind(str, enum.Enum):
    """What a span measures."""

    #: Root span: one whole read or write operation.
    OPERATION = "operation"
    #: Time between requesting a lock and the grant/deny decision.
    LOCK_WAIT = "lock_wait"
    #: One quorum attempt (an operation retries up to ``max_attempts``).
    ATTEMPT = "attempt"
    #: One protocol phase inside an attempt (read/version/prepare/commit).
    PHASE = "phase"
    #: Waiting out an unavailability window before retrying.
    DEFER = "defer"
    #: A point-in-time occurrence (timeout, retry, retransmit); start == end.
    EVENT = "event"


#: Span status for a span that completed normally.
STATUS_OK = "ok"


@dataclass
class Span:
    """One timed interval inside a trace.

    ``trace_id`` is the id of the root (operation) span; the root's
    ``parent_id`` is ``None``.  ``end`` stays ``None`` while the span is
    open — a finished trace must have no open spans.
    """

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    kind: SpanKind
    start: float
    end: float | None = None
    status: str = STATUS_OK
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated time (open spans report 0)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        """Whether the span has been closed."""
        return self.end is not None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (one JSONL record)."""
        return {
            "record": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind.value,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": self.attributes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trace_id=data["trace"],
            span_id=data["span"],
            parent_id=data["parent"],
            name=data["name"],
            kind=SpanKind(data["kind"]),
            start=data["start"],
            end=data["end"],
            status=data["status"],
            attributes=dict(data.get("attrs", {})),
        )
