"""Parallel experiment runner: process-pool fan-out with mergeable results.

The runner shards the repository's three embarrassingly parallel workloads
— parameter sweeps, Monte-Carlo availability estimation and repeated-seed
simulation runs — across a process pool, with three invariants:

* **determinism** — every task's seed is derived from the master seed by
  ``getrandbits(64)`` child streams (:func:`~repro.runner.pool.derive_seeds`),
  and the task list, chunk sizes and seeds never depend on ``jobs``;
* **order-stable merging** — shard results are folded in task order through
  the ``merge()`` paths on :class:`~repro.sim.monitor.Monitor`,
  :class:`~repro.obs.recorder.TraceRecorder`,
  :class:`~repro.obs.stats.Histogram` and
  :class:`~repro.analysis.sweeps.FigureSeries`;
* therefore **bit-identity** — a run at ``--jobs 4`` produces exactly the
  bytes of the ``--jobs 1`` run under the same master seed.

Layout: :mod:`~repro.runner.pool` is the generic fan-out primitive,
:mod:`~repro.runner.tasks` defines the picklable task records and the three
workload orchestrators, :mod:`~repro.runner.merge` folds shard results and
:mod:`~repro.runner.progress` renders completion ticks.
"""

from repro.runner.merge import (
    merge_availability,
    merge_monitors,
    merge_series,
    merge_sharded_monitors,
)
from repro.runner.pool import derive_seeds, run_tasks
from repro.runner.progress import ProgressPrinter, null_progress
from repro.runner.tasks import (
    AvailabilityChunk,
    ShardParams,
    SimParams,
    SweepTask,
    SystemRef,
    build_sharded_config,
    build_sim_config,
    parallel_availability,
    parallel_shard_simulations,
    parallel_simulations,
    parallel_sweep,
    resolve_system,
)

__all__ = [
    "AvailabilityChunk",
    "ProgressPrinter",
    "ShardParams",
    "SimParams",
    "SweepTask",
    "SystemRef",
    "build_sharded_config",
    "build_sim_config",
    "derive_seeds",
    "merge_availability",
    "merge_monitors",
    "merge_series",
    "merge_sharded_monitors",
    "null_progress",
    "parallel_availability",
    "parallel_shard_simulations",
    "parallel_simulations",
    "parallel_sweep",
    "resolve_system",
    "run_tasks",
]
