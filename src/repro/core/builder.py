"""Tree constructors: Algorithm 1 and the named shapes of Sections 3.3-4.

Every constructor returns an :class:`repro.core.tree.ArbitraryTree` that
satisfies Assumption 3.1 and conserves the requested number of replicas
``n``.  Where the paper's arithmetic is non-integral (``sqrt(n)`` levels,
``(n-28)/(sqrt(n)-7)`` replicas per level) we floor the level count and
spread the remainder over the *deepest* levels, which keeps the level sizes
non-decreasing; see DESIGN.md §4 for the two documented deviations.
"""

from __future__ import annotations

import math
import re

from repro.core.tree import ArbitraryTree

_SPEC_PATTERN = re.compile(r"^(?:(?P<physroot>P)?1-)?(?P<sizes>\d+(?:-\d+)*)$")


def from_spec(spec: str) -> ArbitraryTree:
    """Parse the paper's compressed tree notation.

    ``"1-3-5"`` denotes a logical root above physical levels of sizes 3 and
    5 (the Figure 1 / Table 1 example).  ``"P1-2-4"`` denotes a *physical*
    root of one replica above physical levels 2 and 4 (used for UNMODIFIED
    trees).  A bare ``"8"`` is a logical root above a single physical level
    of 8 replicas (MOSTLY-READ).
    """
    text = spec.strip()
    if text.startswith("P"):
        sizes = [int(token) for token in text[1:].split("-")]
        if sizes[0] != 1:
            raise ValueError(f"physical root level must have size 1: {spec!r}")
        return from_physical_level_sizes(sizes, logical_root=False)
    tokens = [int(token) for token in text.split("-")]
    if len(tokens) > 1 and tokens[0] == 1:
        tokens = tokens[1:]
    return from_physical_level_sizes(tokens, logical_root=True)


def from_physical_level_sizes(
    sizes: list[int] | tuple[int, ...],
    logical_root: bool = True,
    sid_order: list[int] | tuple[int, ...] | None = None,
) -> ArbitraryTree:
    """Build a tree from explicit physical-level sizes.

    With ``logical_root=True`` a single logical node is placed at level 0
    and ``sizes[u]`` physical nodes at level ``u + 1``.  With
    ``logical_root=False`` the first size must be 1 (the physical root) and
    the remaining sizes occupy levels 1, 2, ...  ``sid_order`` optionally
    permutes which SID lands on which slot (see
    :meth:`ArbitraryTree.from_level_counts`).
    """
    if not sizes:
        raise ValueError("at least one physical level is required")
    if any(size < 1 for size in sizes):
        raise ValueError(f"level sizes must be positive: {sizes}")
    if logical_root:
        physical = [0, *sizes]
        logical = [1] + [0] * len(sizes)
    else:
        if sizes[0] != 1:
            raise ValueError("a physical root level must have exactly 1 node")
        physical = list(sizes)
        logical = [0] * len(sizes)
    return ArbitraryTree.from_level_counts(
        physical, logical, sid_order=sid_order
    )


def _spread(total: int, buckets: int, minimum: int = 1) -> list[int]:
    """Split ``total`` into ``buckets`` non-decreasing parts, each >= minimum.

    The base share goes to every bucket and the remainder is added one unit
    at a time to the *deepest* buckets, so the resulting sequence is sorted
    ascending — exactly what Assumption 3.1 needs.
    """
    if buckets < 1:
        raise ValueError("need at least one bucket")
    base, remainder = divmod(total, buckets)
    if base < minimum:
        raise ValueError(
            f"cannot place {total} replicas on {buckets} levels with "
            f"at least {minimum} each"
        )
    sizes = [base] * buckets
    for offset in range(remainder):
        sizes[buckets - 1 - offset] += 1
    return sizes


def mostly_read(n: int) -> ArbitraryTree:
    """The MOSTLY-READ configuration: all replicas on one physical level.

    Behaves like ROWA: read cost 1, write cost ``n``, read load ``1/n``,
    write load 1.
    """
    if n < 1:
        raise ValueError("need at least one replica")
    return from_physical_level_sizes([n])


def mostly_write(n: int) -> ArbitraryTree:
    """The MOSTLY-WRITE configuration: two replicas per physical level.

    For odd ``n`` the paper prescribes ``(n-1)/2`` physical levels of two
    replicas, which accounts for ``n - 1`` replicas; we attach the leftover
    replica to the deepest level (making it 3) so that ``n`` is conserved.
    The paper's reported quantities are unchanged: read cost ``(n-1)/2``,
    write cost 2 (minimum), read load ``1/2``, write load ``2/(n-1)``.
    """
    if n < 2:
        raise ValueError("MOSTLY-WRITE needs at least two replicas")
    levels = n // 2
    sizes = [2] * levels
    if n % 2 == 1:
        sizes[-1] += 1
    return from_physical_level_sizes(sizes)


def algorithm_1(n: int) -> ArbitraryTree:
    """Algorithm 1 of Section 3.3 (defined by the paper for ``n > 64``).

    1. logical root; ``|K_phy| = floor(sqrt(n))`` physical levels;
    2. four replicas on each of the first seven physical levels;
    3. the remaining ``n - 28`` replicas spread evenly over the remaining
       ``|K_phy| - 7`` levels, remainder pushed to the deepest levels so
       Assumption 3.1 holds.

    Yields write load ``1/sqrt(n)``, average write cost ``~sqrt(n)``, read
    cost ``~sqrt(n)`` and read load ``1/4``.
    """
    if n <= 64:
        raise ValueError(
            "Algorithm 1 is defined for n > 64; "
            "use balanced_tree or recommended_tree for smaller systems"
        )
    levels = math.isqrt(n)
    head = [4] * 7
    tail = _spread(n - 28, levels - 7, minimum=4)
    return from_physical_level_sizes(head + tail)


def balanced_tree(n: int) -> ArbitraryTree:
    """The Section 3.3 prescription for ``32 < n <= 64``.

    Seven physical levels of four replicas each; the remaining ``n - 28``
    replicas go to succeeding physical levels (one extra level when at least
    four remain, otherwise appended to the deepest level) while obeying
    Assumption 3.1.
    """
    if n <= 28:
        raise ValueError("balanced_tree needs n > 28; use sqrt_levels instead")
    sizes = [4] * 7
    leftover = n - 28
    if leftover == 0:
        pass
    elif leftover >= 4:
        sizes.append(leftover)
    else:
        sizes[-1] += leftover
    return from_physical_level_sizes(sizes)


def sqrt_levels(n: int) -> ArbitraryTree:
    """A generalisation of Algorithm 1 that works for every ``n >= 1``.

    Uses ``floor(sqrt(n))`` physical levels with near-even, non-decreasing
    sizes.  For ``n > 64`` prefer :func:`algorithm_1`, which reproduces the
    paper's exact head-of-tree shape (seven levels of four).
    """
    if n < 1:
        raise ValueError("need at least one replica")
    levels = max(1, math.isqrt(n))
    return from_physical_level_sizes(_spread(n, levels))


def recommended_tree(n: int) -> ArbitraryTree:
    """The paper's recommended proportional-frequency configuration.

    Dispatches on ``n``: Algorithm 1 for ``n > 64``, the Section 3.3 balanced
    prescription for ``28 < n <= 64``, and near-even ``sqrt(n)`` levels below
    that (the paper gives no recipe for very small systems).
    """
    if n > 64:
        return algorithm_1(n)
    if n > 28:
        return balanced_tree(n)
    return sqrt_levels(n)


def uniform_tree(branching: int, height: int) -> ArbitraryTree:
    """A complete ``branching``-ary tree whose nodes are *all* physical.

    This is the UNMODIFIED configuration of Section 4: the paper's protocol
    applied directly to the tree-quorum structure of Agrawal-El Abbadi
    without reshaping.  ``n = (branching^(h+1) - 1) / (branching - 1)`` for
    ``branching >= 2``.
    """
    if branching < 2:
        raise ValueError("branching factor must be at least 2")
    if height < 0:
        raise ValueError("height must be non-negative")
    sizes = [branching**k for k in range(height + 1)]
    return from_physical_level_sizes(sizes, logical_root=False)


def unmodified_binary(n: int) -> ArbitraryTree:
    """UNMODIFIED on a complete binary tree of ``n = 2^(h+1) - 1`` replicas."""
    height = _complete_binary_height(n)
    return uniform_tree(2, height)


def _complete_binary_height(n: int) -> int:
    """Height of the complete binary tree with exactly ``n`` nodes."""
    height = (n + 1).bit_length() - 2
    if n < 1 or 2 ** (height + 1) - 1 != n:
        raise ValueError(
            f"n={n} is not of the form 2^(h+1)-1 (complete binary tree)"
        )
    return height
