"""Unit tests for the six Section-4 configurations."""

import math

import pytest

from repro.core.config import (
    ALL_CONFIGURATIONS,
    ArbitraryTreeModel,
    Configuration,
    admissible_size,
    make_model,
    make_tree,
)
from repro.protocols.hqc import HQCProtocol
from repro.protocols.tree_quorum import TreeQuorumProtocol


class TestAdmissibleSize:
    def test_binary_snaps_to_complete_tree(self):
        assert admissible_size(Configuration.BINARY, 100) == 127
        assert admissible_size(Configuration.BINARY, 70) == 63
        assert admissible_size(Configuration.UNMODIFIED, 31) == 31

    def test_hqc_snaps_to_power_of_three(self):
        assert admissible_size(Configuration.HQC, 100) == 81
        assert admissible_size(Configuration.HQC, 200) == 243
        assert admissible_size(Configuration.HQC, 27) == 27

    def test_arbitrary_accepts_anything(self):
        assert admissible_size(Configuration.ARBITRARY, 97) == 97

    def test_mostly_write_minimum_two(self):
        assert admissible_size(Configuration.MOSTLY_WRITE, 1) == 2

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            admissible_size(Configuration.ARBITRARY, 0)


class TestMakeTree:
    def test_unmodified(self):
        tree = make_tree(Configuration.UNMODIFIED, 15)
        assert tree.physical_level_sizes == (1, 2, 4, 8)

    def test_arbitrary(self):
        tree = make_tree(Configuration.ARBITRARY, 100)
        assert tree.n == 100
        assert tree.physical_level_sizes[:7] == (4,) * 7

    def test_mostly_read(self):
        assert make_tree(Configuration.MOSTLY_READ, 12).num_physical_levels == 1

    def test_mostly_write(self):
        assert make_tree(Configuration.MOSTLY_WRITE, 12).d == 2

    def test_quorum_protocols_have_no_tree(self):
        for config in (Configuration.BINARY, Configuration.HQC):
            with pytest.raises(ValueError, match="not backed"):
                make_tree(config, 27)


class TestMakeModel:
    def test_binary_model_type(self):
        assert isinstance(make_model(Configuration.BINARY, 31), TreeQuorumProtocol)

    def test_hqc_model_type(self):
        assert isinstance(make_model(Configuration.HQC, 27), HQCProtocol)

    def test_tree_models(self):
        for config in (
            Configuration.UNMODIFIED,
            Configuration.ARBITRARY,
            Configuration.MOSTLY_READ,
            Configuration.MOSTLY_WRITE,
        ):
            model = make_model(config, 31)
            assert isinstance(model, ArbitraryTreeModel)
            assert model.name == str(config)

    def test_every_model_answers_every_quantity(self):
        for config in ALL_CONFIGURATIONS:
            model = make_model(config, 81)
            assert model.read_cost() > 0
            assert model.write_cost() > 0
            assert 0 < model.read_load() <= 1
            assert 0 < model.write_load() <= 1
            assert 0 <= model.read_availability(0.7) <= 1
            assert 0 <= model.write_availability(0.7) <= 1
            assert 0 <= model.expected_read_load(0.7) <= 1 + 1e-9
            assert 0 <= model.expected_write_load(0.7) <= 1 + 1e-9


class TestModelValues:
    def test_mostly_read_is_rowa(self):
        model = make_model(Configuration.MOSTLY_READ, 20)
        assert model.read_cost() == 1
        assert model.write_cost() == 20
        assert model.write_load() == pytest.approx(1.0)

    def test_unmodified_loads(self):
        model = make_model(Configuration.UNMODIFIED, 63)
        assert model.read_load() == pytest.approx(1.0)
        assert model.write_load() == pytest.approx(1 / 6)

    def test_arbitrary_model_quorums(self):
        model = make_model(Configuration.ARBITRARY, 16)
        reads = list(model.read_quorums())
        writes = list(model.write_quorums())
        assert len(writes) == model.tree.num_physical_levels
        assert len(reads) == math.prod(model.tree.physical_level_sizes)

    def test_binary_costs_match_formula(self):
        model = make_model(Configuration.BINARY, 31)
        h = 4
        expected = (2**h * (1 + h) ** h) / (h * (2 + h) ** (h - 1)) - 2 / h
        assert model.read_cost() == pytest.approx(expected)

    def test_configuration_str(self):
        assert str(Configuration.MOSTLY_READ) == "MOSTLY-READ"
