"""Unit tests for the suspicion-based failure detector."""

import pytest

from repro.fault.detector import COUNTER_GROUP, SuspectList
from repro.obs.recorder import TraceRecorder


class TestSuspicion:
    def test_suspect_on_first_miss_by_default(self):
        suspects = SuspectList(probe_interval=10.0)
        suspects.record_timeout([3], now=0.0)
        assert suspects.is_suspected(3, now=0.0)
        assert suspects.suspected(now=0.0) == frozenset({3})
        assert suspects.suspicions_total == 1

    def test_threshold_requires_repeated_evidence(self):
        suspects = SuspectList(probe_interval=10.0, threshold=3)
        suspects.record_timeout([5], now=0.0)
        suspects.record_timeout([5], now=1.0)
        assert not suspects.is_suspected(5, now=1.0)
        suspects.record_timeout([5], now=2.0)
        assert suspects.is_suspected(5, now=2.0)

    def test_rehabilitation_after_probe_interval(self):
        suspects = SuspectList(probe_interval=10.0)
        suspects.record_timeout([1], now=5.0)
        assert suspects.is_suspected(1, now=14.9)
        assert not suspects.is_suspected(1, now=15.0)
        assert suspects.rehabilitations_total == 1
        # Evidence resets on rehabilitation: threshold counts start over.
        assert suspects.suspects_active == 0

    def test_repeated_evidence_extends_suspicion(self):
        suspects = SuspectList(probe_interval=10.0)
        suspects.record_timeout([1], now=0.0)
        suspects.record_timeout([1], now=8.0)
        assert suspects.is_suspected(1, now=15.0)  # extended to 18
        assert suspects.suspicions_total == 1  # still one suspicion episode

    def test_exoneration_clears_suspicion_and_evidence(self):
        suspects = SuspectList(probe_interval=10.0, threshold=2)
        suspects.record_timeout([2, 2], now=0.0)
        assert suspects.is_suspected(2, now=1.0)
        suspects.exonerate(2, now=1.0)
        assert not suspects.is_suspected(2, now=1.0)
        assert suspects.exonerations_total == 1
        # evidence was cleared, a single new miss is below threshold again
        suspects.record_timeout([2], now=2.0)
        assert not suspects.is_suspected(2, now=2.0)

    def test_exonerating_unsuspected_site_is_free(self):
        suspects = SuspectList()
        suspects.exonerate(9, now=0.0)
        assert suspects.exonerations_total == 0

    def test_record_drop_counts_as_evidence(self):
        suspects = SuspectList(threshold=2)
        suspects.record_drop(4, now=0.0)
        suspects.record_drop(4, now=1.0)
        assert suspects.is_suspected(4, now=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SuspectList(probe_interval=0.0)
        with pytest.raises(ValueError):
            SuspectList(threshold=0)


class TestPreferred:
    def test_no_suspects_returns_live_unchanged(self):
        suspects = SuspectList()
        kept, narrowed = suspects.preferred([1, 2, 3], now=0.0)
        assert kept == (1, 2, 3)
        assert narrowed is False

    def test_suspected_sites_filtered(self):
        suspects = SuspectList(probe_interval=10.0)
        suspects.record_timeout([2], now=0.0)
        kept, narrowed = suspects.preferred([1, 2, 3], now=1.0)
        assert kept == (1, 3)
        assert narrowed is True

    def test_irrelevant_suspects_do_not_narrow(self):
        suspects = SuspectList(probe_interval=10.0)
        suspects.record_timeout([99], now=0.0)
        kept, narrowed = suspects.preferred([1, 2, 3], now=1.0)
        assert kept == (1, 2, 3)
        assert narrowed is False

    def test_counters_snapshot(self):
        suspects = SuspectList(probe_interval=5.0)
        suspects.record_timeout([1, 2], now=0.0)
        suspects.note_avoided()
        suspects.exonerate(1, now=1.0)
        assert suspects.counters() == {
            "suspects_active": 1,
            "suspicions_total": 2,
            "rehabilitations_total": 0,
            "exonerations_total": 1,
            "selection_avoided": 1,
        }


class TestObservability:
    def test_transitions_emit_events_and_counters(self):
        recorder = TraceRecorder()
        suspects = SuspectList(probe_interval=10.0, recorder=recorder)
        suspects.record_timeout([7], now=1.0)
        suspects.exonerate(7, now=2.0)
        suspects.record_timeout([8], now=3.0)
        assert not suspects.is_suspected(8, now=20.0)  # rehabilitated
        suspects.note_avoided()

        counters = recorder.counters[COUNTER_GROUP]
        assert counters["suspected"] == 2
        assert counters["exonerated"] == 1
        assert counters["rehabilitated"] == 1
        assert counters["selection_avoided"] == 1

        trace_id = recorder.singleton_trace("failure_detector")
        events = [
            span.name for span in recorder.trace(trace_id)
            if span.trace_id == trace_id and span.span_id != trace_id
        ]
        assert events == ["suspected", "exonerated", "suspected",
                          "rehabilitated"]
        # every detector event carries the sid it concerns
        for span in recorder.trace(trace_id):
            if span.span_id != trace_id:
                assert "sid" in span.attributes

    def test_null_recorder_keeps_detector_silent_but_counting(self):
        suspects = SuspectList(probe_interval=10.0)
        suspects.record_timeout([1], now=0.0)
        assert suspects.suspicions_total == 1
