"""Unit tests for the related-work survey module."""

import math

import pytest

from repro.analysis.related_work import (
    RelatedWorkEntry,
    choi_model,
    koch_model,
    survey,
)


class TestSurvey:
    @pytest.fixture(scope="class")
    def entries(self):
        return {entry.protocol: entry for entry in survey(121)}

    def test_covers_all_protocols(self, entries):
        assert set(entries) == {
            "ROWA", "Majority", "FPP (sqrt n)", "Grid", "Tree quorum",
            "HQC", "AE tree (VLDB90)", "Koch", "Choi symmetric",
            "Arbitrary (this paper)",
        }

    def test_sizes_snap_to_admissible(self, entries):
        assert entries["Tree quorum"].n == 127      # 2^7 - 1
        assert entries["HQC"].n == 81               # 3^4
        assert entries["FPP (sqrt n)"].n == 133     # 11^2 + 11 + 1
        assert entries["Majority"].n % 2 == 1

    def test_loads_in_unit_interval(self, entries):
        for entry in entries.values():
            assert 0.0 < entry.read_load <= 1.0
            assert 0.0 < entry.write_load <= 1.0

    def test_costs_positive_and_ordered(self, entries):
        for entry in entries.values():
            assert 1 <= entry.read_cost_best <= entry.read_cost_worst
            assert entry.write_cost >= 1

    def test_even_n_majority_bumped_to_odd(self):
        entries = {entry.protocol: entry for entry in survey(100)}
        assert entries["Majority"].n == 101


class TestFormulaModels:
    def test_koch_read_range(self):
        entry = koch_model(121)
        height = round(math.log(2 * entry.n + 1, 3)) - 1
        assert entry.read_cost_worst == pytest.approx(3.0**height)
        assert entry.read_cost_best == 1

    def test_choi_read_range_is_square_root_of_koch(self):
        koch = koch_model(121)
        choi = choi_model(121)
        assert choi.read_cost_worst == pytest.approx(
            math.sqrt(koch.read_cost_worst)
        )

    def test_intro_load_quotes(self):
        assert koch_model(121).read_load == 1.0
        assert choi_model(121).read_load == 0.5

    def test_entry_is_frozen(self):
        entry = koch_model(121)
        with pytest.raises(AttributeError):
            entry.read_load = 0.0  # type: ignore[misc]

    def test_entry_type(self):
        assert isinstance(choi_model(10), RelatedWorkEntry)
