"""Tests for tree serialisation (to_dict / from_dict)."""

import json

import pytest

from repro.core.builder import from_spec, mostly_write, recommended_tree
from repro.core.tree import ArbitraryTree


class TestRoundTrip:
    @pytest.mark.parametrize(
        "tree",
        [
            from_spec("1-3-5"),
            from_spec("P1-2-4"),
            mostly_write(9),
            recommended_tree(40),
            ArbitraryTree.from_level_counts([0, 3, 5], [1, 0, 4]),
        ],
        ids=lambda t: t.spec(),
    )
    def test_round_trip_preserves_structure(self, tree):
        rebuilt = ArbitraryTree.from_dict(tree.to_dict())
        assert rebuilt.spec() == tree.spec()
        assert rebuilt.n == tree.n
        assert rebuilt.physical_levels == tree.physical_levels
        assert [rebuilt.m_log(k) for k in range(rebuilt.height + 1)] == [
            tree.m_log(k) for k in range(tree.height + 1)
        ]

    def test_payload_is_json_serialisable(self):
        tree = from_spec("1-3-5")
        payload = json.loads(json.dumps(tree.to_dict()))
        assert ArbitraryTree.from_dict(payload).spec() == "1-3-5"

    def test_figure1_logical_nodes_survive(self):
        tree = ArbitraryTree.from_level_counts([0, 3, 5], [1, 0, 4])
        rebuilt = ArbitraryTree.from_dict(tree.to_dict())
        assert rebuilt.m(2) == 9
        assert rebuilt.m_log(2) == 4


class TestMalformedPayloads:
    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            ArbitraryTree.from_dict({"physical": [0, 3]})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            ArbitraryTree.from_dict(None)  # type: ignore[arg-type]

    def test_invalid_counts_still_validated(self):
        with pytest.raises(ValueError):
            ArbitraryTree.from_dict({"physical": [0, -1], "logical": [1, 2]})
