"""Unit tests for the analysis layer: configuration points and sweeps."""

import pytest

from repro.analysis.expected import expected_loads, stability_report
from repro.analysis.formulas import evaluate_all, evaluate_configuration
from repro.analysis.sweeps import (
    figure2_series,
    figure3_series,
    figure4_series,
    sweep_configurations,
)
from repro.core.builder import from_spec, recommended_tree
from repro.core.config import ALL_CONFIGURATIONS, Configuration


class TestEvaluateConfiguration:
    def test_point_fields(self):
        point = evaluate_configuration(Configuration.ARBITRARY, 40, 0.8)
        assert point.config is Configuration.ARBITRARY
        assert point.n == 40
        assert point.p == 0.8
        assert point.read_cost == 8  # 7 head levels + 1

    def test_snapping_recorded(self):
        point = evaluate_configuration(Configuration.BINARY, 100, 0.7)
        assert point.n == 127

    def test_evaluate_all_covers_everything(self):
        points = evaluate_all(81)
        assert set(points) == set(ALL_CONFIGURATIONS)


class TestSweeps:
    def test_series_shape(self):
        series = sweep_configurations(
            ("read_cost",), sizes=(15, 31), configs=(Configuration.ARBITRARY,)
        )
        points = series.series[Configuration.ARBITRARY]["read_cost"]
        assert [point.requested_n for point in points] == [15, 31]
        assert series.quantities == ("read_cost",)

    def test_figure_helpers_quantities(self):
        assert figure2_series(sizes=(15,)).quantities == ("read_cost", "write_cost")
        assert figure3_series(sizes=(15,)).quantities == (
            "read_load", "expected_read_load",
        )
        assert figure4_series(sizes=(15,)).quantities == (
            "write_load", "expected_write_load",
        )

    def test_all_configs_present(self):
        series = figure2_series(sizes=(31,))
        assert set(series.series) == set(ALL_CONFIGURATIONS)

    def test_default_p(self):
        assert figure3_series(sizes=(15,)).p == 0.7


class TestExpectedLoads:
    def test_matches_metrics(self):
        from repro.core import metrics

        tree = from_spec("1-3-5")
        loads = expected_loads(tree, 0.7)
        assert loads.read_load == pytest.approx(metrics.read_load(tree))
        assert loads.expected_write_load == pytest.approx(
            metrics.expected_write_load(tree, 0.7)
        )

    def test_stability_report_gaps_shrink_with_p(self):
        tree = recommended_tree(64)
        report = stability_report(tree)
        assert report.write_gaps[0] > report.write_gaps[-1]
        assert all(gap >= -1e-12 for gap in report.read_gaps)

    def test_stable_from(self):
        tree = recommended_tree(64)
        report = stability_report(tree)
        threshold = report.stable_from(tolerance=0.05)
        assert threshold is not None
        # the paper's observation: stable once p > 0.8
        assert threshold <= 0.9

    def test_stable_from_none_when_never_stable(self):
        from repro.core.builder import mostly_write

        tree = mostly_write(101)
        report = stability_report(tree, p_values=(0.5, 0.6))
        # with 50 two-replica levels, read availability at p <= 0.6 is awful
        assert report.stable_from(tolerance=0.01) is None
