"""Property-based tests (hypothesis) on the quorum-theory substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quorums.availability import (
    estimate_availability_monte_carlo,
    exact_availability,
)
from repro.quorums.base import (
    SetSystem,
    is_antichain,
    is_cross_intersecting,
    minimise,
)
from repro.quorums.load import optimal_load
from repro.quorums.strategy import Strategy

# Small universes keep the exact computations and LPs fast.
elements = st.integers(min_value=0, max_value=7)
quorum = st.frozensets(elements, min_size=1, max_size=8)
quorum_list = st.lists(quorum, min_size=1, max_size=8)


@given(quorum_list)
def test_minimise_yields_antichain(quorums):
    assert is_antichain(minimise(quorums))


@given(quorum_list)
def test_minimise_preserves_coverage(quorums):
    """Every original set contains some surviving set (domination)."""
    survivors = minimise(quorums)
    for original in quorums:
        assert any(kept <= original for kept in survivors)


@given(quorum_list)
def test_uniform_strategy_load_bounds(quorums):
    """1/m <= induced load <= 1 for the uniform strategy over any system."""
    system = SetSystem(quorums)
    strategy = Strategy.uniform(system)
    load = strategy.induced_load()
    assert 0.0 < load <= 1.0 + 1e-9
    # some element appears in at least ceil(m / n) quorums... weaker check:
    assert load >= 1.0 / len(system) - 1e-9


@given(quorum_list)
@settings(max_examples=40, deadline=None)
def test_lp_load_bounded_by_uniform_strategy(quorums):
    """The optimal load never exceeds any concrete strategy's load."""
    system = SetSystem(quorums)
    lp = optimal_load(system)
    uniform = Strategy.uniform(system).induced_load()
    assert lp.load <= uniform + 1e-6
    assert lp.load >= 1.0 / len(system.universe) - 1e-6


@given(quorum_list)
@settings(max_examples=40, deadline=None)
def test_lp_witness_always_verifies(quorums):
    assert optimal_load(SetSystem(quorums)).verify()


@given(quorum_list, st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_exact_availability_in_unit_interval(quorums, p):
    value = exact_availability(quorums, p)
    assert -1e-12 <= value <= 1.0 + 1e-12


@given(quorum_list, st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=20, deadline=None)
def test_monte_carlo_tracks_exact(quorums, p):
    exact = exact_availability(quorums, p)
    estimate = estimate_availability_monte_carlo(
        quorums, p, samples=30_000, seed=0
    )
    assert math.isclose(estimate, exact, abs_tol=0.03)


@given(quorum_list, st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_exact_availability_monotone_in_p(quorums, p_low, p_high):
    low, high = sorted((p_low, p_high))
    assert exact_availability(quorums, low) <= (
        exact_availability(quorums, high) + 1e-9
    )


@given(
    st.lists(quorum, min_size=1, max_size=5),
    st.lists(quorum, min_size=1, max_size=5),
)
def test_cross_intersection_symmetric(reads, writes):
    assert is_cross_intersecting(reads, writes) == is_cross_intersecting(
        writes, reads
    )
