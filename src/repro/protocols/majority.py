"""Majority quorum consensus — Thomas [13].

Both reads and writes contact any majority of the replicas, i.e. any subset
of size ``ceil((n+1)/2)``.  For odd ``n`` this is the paper's quoted cost of
``(n+1)/2`` for both operations, with system load at least ``1/2`` and good
availability for ``p > 1/2`` (availability tends to 1 as ``n`` grows).

The model also supports asymmetric read/write thresholds (weighted-voting
style): thresholds ``r`` and ``w`` are valid when ``r + w > n`` (read/write
intersection) and ``2w > n`` (write/write intersection).
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator
from itertools import combinations

from repro.protocols.base import ProtocolModel, check_probability
from repro.quorums.liveness import Liveness, live_members


def _at_least(n: int, k: int, p: float) -> float:
    """P[Binomial(n, p) >= k]."""
    return math.fsum(
        math.comb(n, i) * p**i * (1.0 - p) ** (n - i) for i in range(k, n + 1)
    )


class MajorityProtocol(ProtocolModel):
    """Quorum consensus with (possibly asymmetric) size thresholds.

    Parameters
    ----------
    n:
        Number of replicas.
    read_threshold, write_threshold:
        Quorum sizes ``r`` and ``w``.  Default: simple majorities
        ``r = w = ceil((n+1)/2)``.
    """

    name = "Majority"

    def __init__(
        self,
        n: int,
        read_threshold: int | None = None,
        write_threshold: int | None = None,
    ) -> None:
        super().__init__(n)
        majority = (n + 2) // 2  # ceil((n+1)/2)
        self._r = majority if read_threshold is None else read_threshold
        self._w = majority if write_threshold is None else write_threshold
        if not 1 <= self._r <= n or not 1 <= self._w <= n:
            raise ValueError("thresholds must lie in [1, n]")
        if self._r + self._w <= n:
            raise ValueError(
                f"read/write thresholds {self._r}+{self._w} <= n={n}: "
                "read quorums would miss writes"
            )
        if 2 * self._w <= n:
            raise ValueError(
                f"write threshold {self._w} too small: concurrent writes "
                "could miss each other"
            )

    @property
    def read_threshold(self) -> int:
        """The read quorum size ``r``."""
        return self._r

    @property
    def write_threshold(self) -> int:
        """The write quorum size ``w``."""
        return self._w

    def _select_threshold(
        self, size: int, live: Liveness, rng: random.Random | None
    ) -> frozenset[int] | None:
        """Any ``size`` live replicas (rng-uniform subset, else the first)."""
        alive = live_members(range(self.n), live)
        if len(alive) < size:
            return None
        if rng is not None:
            return frozenset(rng.sample(alive, size))
        return frozenset(alive[:size])

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Any ``r`` live replicas, or ``None``."""
        return self._select_threshold(self._r, live, rng)

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Any ``w`` live replicas, or ``None``."""
        return self._select_threshold(self._w, live, rng)

    def read_cost(self) -> float:
        """Every read contacts exactly ``r`` replicas."""
        return float(self._r)

    def write_cost(self) -> float:
        """Every write contacts exactly ``w`` replicas."""
        return float(self._w)

    def read_availability(self, p: float) -> float:
        """At least ``r`` live replicas: a binomial tail."""
        check_probability(p)
        return _at_least(self.n, self._r, p)

    def write_availability(self, p: float) -> float:
        """At least ``w`` live replicas: a binomial tail."""
        check_probability(p)
        return _at_least(self.n, self._w, p)

    def read_load(self) -> float:
        """Optimal load of the k-of-n system: ``k/n`` (perfectly balanced)."""
        return self._r / self.n

    def write_load(self) -> float:
        """Optimal load ``w/n``; at least ``1/2`` as quoted in the intro."""
        return self._w / self.n

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """All ``r``-subsets of the replicas (combinatorial: small n only)."""
        for subset in combinations(range(self.n), self._r):
            yield frozenset(subset)

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """All ``w``-subsets of the replicas."""
        for subset in combinations(range(self.n), self._w):
            yield frozenset(subset)

    def quorum_masks(self, op: str = "read") -> list[int]:
        """Mask twin of the subset enumerations, same combination order."""
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        size = self._r if op == "read" else self._w
        bits = [1 << sid for sid in range(self.n)]
        return [sum(chosen) for chosen in combinations(bits, size)]
