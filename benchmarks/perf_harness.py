"""Perf-trajectory harness: timed kernel-vs-reference cases, JSON output.

The repo's other benches regenerate *paper* tables; this harness records the
*performance* trajectory of the codebase so future PRs have a baseline to
regress against.  A suite is a list of :class:`Case` objects, each naming a
reference callable (the pre-kernel pure-Python path) and a kernel callable
(the packed bitset path) computing the same quantity; :func:`run_suite`
times both, checks the returned values agree, and
:func:`write_bench_json` persists a machine-readable
``benchmarks/results/BENCH_<name>.json``::

    {
      "bench": "quorum_kernel",
      "host": {"python": "...", "numpy": "..."},
      "cases": [
        {"case": "exact_availability/arbitrary/n=20/read",
         "reference_median_ns": ..., "kernel_median_ns": ...,
         "speedup": ..., "repeat": ..., "values_agree": true}, ...
      ],
      "summary": {...}
    }

``reference_median_ns`` / ``kernel_median_ns`` are medians over ``repeat``
runs (slow references may use ``repeat=1``; the value is then that single
measurement).  ``speedup`` is reference / kernel.  Downstream consumers
(CI artifacts, EXPERIMENTS.md, future regression gates) should treat the
JSON as the interface, not the stdout.
"""

from __future__ import annotations

import json
import math
import os
import platform
import statistics
import subprocess
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass
class Case:
    """One kernel-vs-reference timing comparison."""

    name: str
    reference: Callable[[], object]
    kernel: Callable[[], object]
    #: Timing repetitions (median taken); slow references keep this at 1.
    repeat: int = 3
    #: Optional value comparator; default is exact equality.
    agree: Callable[[object, object], bool] = field(
        default=lambda a, b: a == b
    )


def time_callable(
    fn: Callable[[], object], repeat: int
) -> tuple[int, object]:
    """Median wall-clock nanoseconds over ``repeat`` runs + last value."""
    durations: list[int] = []
    value: object = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter_ns()
        value = fn()
        durations.append(time.perf_counter_ns() - start)
    return int(statistics.median(durations)), value


def run_case(case: Case) -> dict:
    """Time one case's reference and kernel sides and compare values."""
    reference_ns, reference_value = time_callable(case.reference, case.repeat)
    kernel_ns, kernel_value = time_callable(case.kernel, case.repeat)
    speedup = reference_ns / kernel_ns if kernel_ns else math.inf
    return {
        "case": case.name,
        "reference_median_ns": reference_ns,
        "kernel_median_ns": kernel_ns,
        "speedup": round(speedup, 2),
        "repeat": case.repeat,
        "values_agree": bool(case.agree(reference_value, kernel_value)),
    }


def run_suite(cases: list[Case], verbose: bool = True) -> list[dict]:
    """Run every case, printing one progress line per case."""
    results = []
    for case in cases:
        result = run_case(case)
        results.append(result)
        if verbose:
            print(
                f"{result['case']:<55} "
                f"ref {result['reference_median_ns'] / 1e6:>10.2f} ms  "
                f"kernel {result['kernel_median_ns'] / 1e6:>9.2f} ms  "
                f"{result['speedup']:>8.1f}x  "
                f"{'ok' if result['values_agree'] else 'MISMATCH'}"
            )
    return results


def _git_sha() -> str:
    """The repo HEAD commit, or "unknown" outside a usable git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def scheduler_events_per_sec(events: int = 50_000) -> int:
    """Calibrate the host: raw event-core throughput (events per second).

    A self-rescheduling ring on the simulator's scheduler — no protocol
    on top — so the number is a single-figure speed index for the host
    *as the simulator sees it* (interpreter + heap + dispatch), which
    platform strings and CPU counts cannot express.  Stamped into every
    fingerprint, it lets two BENCH_*.json files be compared with the
    hosts' relative speed known rather than guessed.
    """
    from repro.sim.events import Scheduler

    scheduler = Scheduler()
    state = [events - 1]

    def fire(state: list) -> None:
        if state[0] > 0:
            state[0] -= 1
            scheduler.call_later(1.0, fire, state)

    scheduler.call_later(1.0, fire, state)
    start = time.perf_counter()
    scheduler.run()
    elapsed = time.perf_counter() - start
    return round(events / elapsed) if elapsed else 0


def host_fingerprint() -> dict:
    """Everything needed to compare BENCH_*.json files across runs.

    Timings from different machines, interpreter versions or commits are
    not comparable; stamping platform, CPU count, the git SHA and a
    measured event-core throughput into every result file makes the perf
    trajectory interpretable after the fact.
    """
    import numpy
    import scipy

    return {
        "python_version": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "machine": platform.machine(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
        "scheduler_events_per_sec": scheduler_events_per_sec(),
    }


def write_bench_json(
    bench: str,
    results: list[dict],
    summary: dict,
    out: Path | str | None = None,
) -> Path:
    """Persist a bench run as ``benchmarks/results/BENCH_<bench>.json``."""
    path = Path(out) if out else RESULTS_DIR / f"BENCH_{bench}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "bench": bench,
        "host": host_fingerprint(),
        "cases": results,
        "summary": summary,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
