"""Measurement: per-replica load, availability, latency, message counts.

The monitor receives every :class:`~repro.sim.coordinator.OperationOutcome`
and aggregates the quantities the paper analyses:

* **measured load** — for each replica, the fraction of operations (of each
  kind) whose quorum contained it; the *system* load is the maximum over
  replicas, directly mirroring Definition 2.5 with the empirical operation
  mix as the strategy;
* **measured availability** — the success fraction (run the workload with
  ``max_attempts=1`` so retries don't mask failures);
* **measured cost** — mean quorum size per operation kind, reported both
  as the data quorum alone (the paper's m(R)/m(W)) and as the *total*
  replicas contacted — a write also runs the Section 3.2.2 version round
  against a read quorum, which the analytical write cost does not charge;
* latency percentiles (linear interpolation) and attempt counts, with
  failed operations' latencies tracked separately so timeout/retry cost
  stays visible;
* when a trace recorder is attached, a per-phase latency breakdown and
  phase-duration histograms built from the span stream.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.obs.recorder import NULL_RECORDER, NullRecorder
from repro.obs.report import PhaseStat, phase_breakdown, phase_histograms
from repro.obs.stats import Histogram, linear_percentile
from repro.sim.coordinator import OperationOutcome


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolation percentile of pre-sorted values.

    The previous nearest-rank implementation used ``round()``, whose
    banker's rounding misreported p50/p95 on small samples (e.g. the p50
    of two values was the *lower* one); delegate to the canonical fixed
    implementation.
    """
    return linear_percentile(sorted_values, fraction)


@dataclass
class OperationSummary:
    """Aggregates for one operation kind (read or write)."""

    attempted: int = 0
    succeeded: int = 0
    failed: int = 0
    total_attempts: int = 0
    total_quorum_size: int = 0
    total_version_quorum_size: int = 0
    total_replicas_contacted: int = 0
    latencies: list[float] = field(default_factory=list)
    failure_latencies: list[float] = field(default_factory=list)
    failure_reasons: Counter = field(default_factory=Counter)

    @property
    def availability(self) -> float:
        """Success fraction (NaN when nothing ran)."""
        if self.attempted == 0:
            return math.nan
        return self.succeeded / self.attempted

    @property
    def mean_cost(self) -> float:
        """Mean *data* quorum size over successful operations.

        This is the measured counterpart of the paper's m(R)/m(W); see
        :attr:`mean_total_cost` for everything an operation contacted.
        """
        if self.succeeded == 0:
            return math.nan
        return self.total_quorum_size / self.succeeded

    @property
    def mean_version_cost(self) -> float:
        """Mean version-round quorum size over successful operations.

        Zero for reads; for writes this is the Section 3.2.2 "obtain the
        highest version number" round the data-quorum cost omits.
        """
        if self.succeeded == 0:
            return math.nan
        return self.total_version_quorum_size / self.succeeded

    @property
    def mean_total_cost(self) -> float:
        """Mean total replicas contacted (data + version rounds)."""
        if self.succeeded == 0:
            return math.nan
        return self.total_replicas_contacted / self.succeeded

    @property
    def mean_latency(self) -> float:
        """Mean simulated latency of successful operations."""
        if not self.latencies:
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    @property
    def failure_latency_mean(self) -> float:
        """Mean simulated latency of *failed* operations.

        Failed operations burn real (simulated) time in timeouts, retries
        and lock waits; dropping them from latency accounting silently
        understated the cost of running at low availability.
        """
        if not self.failure_latencies:
            return math.nan
        return sum(self.failure_latencies) / len(self.failure_latencies)

    def latency_percentile(self, fraction: float) -> float:
        """Latency percentile (e.g. 0.5, 0.95) of successful operations."""
        return _percentile(sorted(self.latencies), fraction)

    def failure_latency_percentile(self, fraction: float) -> float:
        """Latency percentile of failed operations."""
        return _percentile(sorted(self.failure_latencies), fraction)

    def latency_histogram(
        self, start: float = 1.0, factor: float = 2.0, buckets: int = 12
    ) -> Histogram:
        """Histogram of successful-operation latencies."""
        return Histogram.exponential(start, factor, buckets).extend(
            self.latencies
        )

    def merge(self, other: "OperationSummary") -> "OperationSummary":
        """Fold ``other``'s aggregates into this summary (returns self).

        Merging is order-sensitive only through the latency lists, which
        are concatenated — the parallel runner folds shards in task order
        so a merged summary is identical to the serial one.
        """
        self.attempted += other.attempted
        self.succeeded += other.succeeded
        self.failed += other.failed
        self.total_attempts += other.total_attempts
        self.total_quorum_size += other.total_quorum_size
        self.total_version_quorum_size += other.total_version_quorum_size
        self.total_replicas_contacted += other.total_replicas_contacted
        self.latencies.extend(other.latencies)
        self.failure_latencies.extend(other.failure_latencies)
        self.failure_reasons.update(other.failure_reasons)
        return self


class Monitor:
    """Collects outcomes and computes the measured counterparts of the
    paper's analytical quantities."""

    def __init__(
        self,
        replica_ids: tuple[int, ...],
        recorder: NullRecorder = NULL_RECORDER,
    ) -> None:
        self._replica_ids = replica_ids
        #: The trace recorder the run was instrumented with (no-op unless
        #: tracing was enabled); phase breakdowns are built from it.
        self.recorder = recorder
        self.reads = OperationSummary()
        self.writes = OperationSummary()
        self._read_touches: Counter = Counter()
        self._write_touches: Counter = Counter()
        self.outcomes: list[OperationOutcome] = []

    def record(self, outcome: OperationOutcome) -> None:
        """Ingest one finished operation."""
        self.outcomes.append(outcome)
        summary = self.reads if outcome.op_type == "read" else self.writes
        touches = (
            self._read_touches if outcome.op_type == "read" else self._write_touches
        )
        summary.attempted += 1
        summary.total_attempts += outcome.attempts
        if outcome.success:
            summary.succeeded += 1
            summary.total_quorum_size += len(outcome.quorum)
            summary.total_version_quorum_size += len(outcome.version_quorum)
            summary.total_replicas_contacted += len(outcome.quorum) + len(
                outcome.version_quorum
            )
            # finished_at - started_at == outcome.latency, without the
            # per-outcome property call on the monitor's hottest line.
            summary.latencies.append(outcome.finished_at - outcome.started_at)
            # Counter.update counts iterable elements in C — same result
            # as a per-sid += 1 loop, measurably cheaper per outcome.
            touches.update(outcome.quorum)
        else:
            summary.failed += 1
            summary.failure_latencies.append(
                outcome.finished_at - outcome.started_at
            )
            summary.failure_reasons[outcome.reason.value] += 1

    def merge(self, other: "Monitor") -> "Monitor":
        """Fold another monitor's measurements into this one (returns self).

        Both monitors must observe the same replica set.  Outcome lists and
        latency samples are concatenated, so folding shard monitors in task
        order reproduces the serial monitor exactly.  Trace recorders merge
        when both runs were traced (span ids are renumbered into this
        recorder's id space).
        """
        if other._replica_ids != self._replica_ids:
            raise ValueError(
                "cannot merge monitors over different replica sets: "
                f"{self._replica_ids} vs {other._replica_ids}"
            )
        self.reads.merge(other.reads)
        self.writes.merge(other.writes)
        self._read_touches.update(other._read_touches)
        self._write_touches.update(other._write_touches)
        self.outcomes.extend(other.outcomes)
        if (
            self.recorder.enabled
            and other.recorder.enabled
            and hasattr(self.recorder, "merge")
        ):
            self.recorder.merge(other.recorder)
        return self

    # ------------------------------------------------------------------
    # measured load (Definition 2.5, empirically)
    # ------------------------------------------------------------------

    def measured_read_load(self) -> float:
        """Max over replicas of (read quorums containing it / reads done)."""
        if self.reads.succeeded == 0:
            return math.nan
        busiest = max(
            (self._read_touches.get(sid, 0) for sid in self._replica_ids),
            default=0,
        )
        return busiest / self.reads.succeeded

    def measured_write_load(self) -> float:
        """Max over replicas of (write quorums containing it / writes done)."""
        if self.writes.succeeded == 0:
            return math.nan
        busiest = max(
            (self._write_touches.get(sid, 0) for sid in self._replica_ids),
            default=0,
        )
        return busiest / self.writes.succeeded

    def per_replica_read_load(self) -> dict[int, float]:
        """Read-quorum participation fraction per replica."""
        if self.reads.succeeded == 0:
            return {sid: math.nan for sid in self._replica_ids}
        return {
            sid: self._read_touches.get(sid, 0) / self.reads.succeeded
            for sid in self._replica_ids
        }

    def per_replica_write_load(self) -> dict[int, float]:
        """Write-quorum participation fraction per replica."""
        if self.writes.succeeded == 0:
            return {sid: math.nan for sid in self._replica_ids}
        return {
            sid: self._write_touches.get(sid, 0) / self.writes.succeeded
            for sid in self._replica_ids
        }

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    @property
    def total_operations(self) -> int:
        """Reads plus writes attempted."""
        return self.reads.attempted + self.writes.attempted

    @property
    def failure_latency_mean(self) -> float:
        """Mean latency across every failed operation (reads and writes)."""
        latencies = self.reads.failure_latencies + self.writes.failure_latencies
        if not latencies:
            return math.nan
        return sum(latencies) / len(latencies)

    def phase_breakdown(self) -> list[PhaseStat]:
        """Per-phase latency statistics from the trace stream.

        Requires the run to have been traced (``recorder.enabled``);
        returns an empty list otherwise.
        """
        if not self.recorder.enabled:
            return []
        return phase_breakdown(self.recorder.finished_spans())

    def phase_histograms(self) -> dict[tuple[str, str], Histogram]:
        """Phase-duration histograms from the trace stream (see above)."""
        if not self.recorder.enabled:
            return {}
        return phase_histograms(self.recorder.finished_spans())

    def summary(self) -> dict[str, float]:
        """A flat dict of the headline measured quantities.

        ``write_cost`` is the data quorum alone (comparable to the
        analytical m(W)); ``write_cost_total`` adds the version round's
        quorum, i.e. every replica the write actually contacted.
        """
        return {
            "reads": self.reads.attempted,
            "writes": self.writes.attempted,
            "read_availability": self.reads.availability,
            "write_availability": self.writes.availability,
            "read_cost": self.reads.mean_cost,
            "write_cost": self.writes.mean_cost,
            "write_version_cost": self.writes.mean_version_cost,
            "write_cost_total": self.writes.mean_total_cost,
            "read_load": self.measured_read_load(),
            "write_load": self.measured_write_load(),
            "read_latency_mean": self.reads.mean_latency,
            "write_latency_mean": self.writes.mean_latency,
            "read_failure_latency_mean": self.reads.failure_latency_mean,
            "write_failure_latency_mean": self.writes.failure_latency_mean,
            "failure_latency_mean": self.failure_latency_mean,
        }


class ShardedMonitor:
    """Per-shard measurement with an order-stable aggregate view.

    One :class:`Monitor` per shard; the sharded store records every
    outcome into its shard's monitor (shards may run heterogeneous
    replica counts, so their per-replica views never mix).  Aggregates
    are computed **non-destructively** by folding copies of the per-shard
    :class:`OperationSummary` objects into a fresh accumulator in shard
    order, so calling :meth:`summary` never mutates shard state and the
    fold order never depends on completion timing.

    :meth:`merge` folds another run's sharded monitor shard-by-shard
    (shard i into shard i) through :meth:`Monitor.merge` — the same
    order-stable concatenation the parallel runner relies on, so a
    ``--jobs N`` fan-out of repeated sharded runs merges bit-identically
    to the serial fold.
    """

    def __init__(self, shards: Sequence[Monitor]) -> None:
        if not shards:
            raise ValueError("need at least one shard monitor")
        self.shards: list[Monitor] = list(shards)

    def __len__(self) -> int:
        return len(self.shards)

    def record(self, shard: int, outcome: OperationOutcome) -> None:
        """Ingest one finished operation into its shard's monitor."""
        self.shards[shard].record(outcome)

    def sink(self, shard: int) -> "Callable[[OperationOutcome], None]":
        """A bound per-shard outcome callback (the workload dispatcher's)."""
        return self.shards[shard].record

    def _fold(self, op: str) -> OperationSummary:
        fresh = OperationSummary()
        for monitor in self.shards:
            fresh.merge(monitor.reads if op == "read" else monitor.writes)
        return fresh

    @property
    def reads(self) -> OperationSummary:
        """Aggregate read summary (a fresh fold; mutating it is harmless)."""
        return self._fold("read")

    @property
    def writes(self) -> OperationSummary:
        """Aggregate write summary (a fresh fold; mutating it is harmless)."""
        return self._fold("write")

    @property
    def total_operations(self) -> int:
        """Reads plus writes attempted across every shard."""
        return sum(monitor.total_operations for monitor in self.shards)

    def merge(self, other: "ShardedMonitor") -> "ShardedMonitor":
        """Fold another sharded run's measurements shard-wise (returns self)."""
        if len(other.shards) != len(self.shards):
            raise ValueError(
                "cannot merge sharded monitors with different shard counts: "
                f"{len(self.shards)} vs {len(other.shards)}"
            )
        for mine, theirs in zip(self.shards, other.shards):
            mine.merge(theirs)
        return self

    def per_shard_summaries(self) -> list[dict[str, float]]:
        """Each shard's :meth:`Monitor.summary`, in shard order."""
        return [monitor.summary() for monitor in self.shards]

    def summary(self) -> dict[str, float]:
        """Aggregate headline numbers across every shard.

        Loads are not aggregated — a max over per-replica fractions only
        makes sense within one replica group; use
        :meth:`per_shard_summaries` for per-shard loads.
        """
        reads, writes = self.reads, self.writes
        return {
            "shards": float(len(self.shards)),
            "reads": reads.attempted,
            "writes": writes.attempted,
            "read_availability": reads.availability,
            "write_availability": writes.availability,
            "read_cost": reads.mean_cost,
            "write_cost": writes.mean_cost,
            "write_cost_total": writes.mean_total_cost,
            "read_latency_mean": reads.mean_latency,
            "write_latency_mean": writes.mean_latency,
            "read_latency_p50": reads.latency_percentile(0.5),
            "read_latency_p99": reads.latency_percentile(0.99),
            "write_latency_p50": writes.latency_percentile(0.5),
            "write_latency_p99": writes.latency_percentile(0.99),
            "failure_latency_mean": (
                OperationSummary().merge(reads).merge(writes)
                .failure_latency_mean
            ),
        }
