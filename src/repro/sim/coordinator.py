"""Quorum operation coordinator: executes reads and writes over the network.

The coordinator turns the abstract quorum rules into the message-level
protocol of Section 2.2:

* **read(key)** — take a shared lock at the centralised lock manager,
  assemble a read quorum from live replicas, fetch every member's
  value+timestamp, and return the value whose timestamp has the highest
  version number and lowest SID;
* **write(key, value)** — take an exclusive lock, obtain the highest
  version number from a read quorum and increment it (Section 3.2.2),
  assemble a write quorum, and run two-phase commit (prepare/vote then
  commit/abort) across its members.

Failures are transient and *detectable* (Section 2.2), so quorum selection
consults a liveness oracle; replicas that crash between selection and
delivery simply never answer, the attempt times out, and the coordinator
retries with a fresh quorum up to ``max_attempts`` times.  Every completed
operation is reported as an :class:`OperationOutcome`.

The coordinator is protocol-agnostic: it drives any
:class:`~repro.quorums.system.QuorumSystem` through the unified
``select_read_quorum(live, rng)`` / ``select_write_quorum(live, rng)``
interface — the paper's arbitrary protocol and all six comparison protocols
alike, with no per-protocol adaptation.

Two optional throughput features sit in front of the legacy pipeline and
leave its RNG/event streams byte-identical when disabled:

* **read leases** (``leases=LeaseCache(...)``) — reads of a leased key
  are served from the cache without touching the lock manager or the
  network; see :mod:`repro.sim.leases` for the invalidation rules;
* **operation batching** (``batch_window > 0``) — submissions are
  queued for a window and flushed together: same-key reads coalesce
  into one quorum round whose result fans out to every waiter, every
  read group in a flush shares one pre-selected read quorum, and
  same-key writes after the first skip the version round by deriving
  their timestamp from the shared version floor (the floor is updated
  at every commit decision *before* the exclusive lock is released, so
  it dominates every committed version the skipped round could have
  observed).  Within one window, coalesced reads order before that
  window's writes to the same key.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Callable
from dataclasses import dataclass
from functools import partial
from operator import attrgetter
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # annotation-only: repro.fault type-hints this module back
    from repro.fault.detector import SuspectList
    from repro.fault.retry import RetryPolicy
    from repro.runtime.interfaces import CancelHandle, Clock

from repro.obs.recorder import NULL_RECORDER, NullRecorder
from repro.obs.spans import STATUS_OK, SpanKind
from repro.quorums.liveness import LivenessOracle
from repro.quorums.selection import SelectionIndex
from repro.quorums.system import QuorumSystem
from repro.sim.leases import LeaseCache, LeaseEntry
from repro.sim.locks import LockManager, LockMode
from repro.sim.messages import (
    AbortMessage,
    AckMessage,
    CommitMessage,
    DecisionRequest,
    Message,
    PrepareMessage,
    ReadReply,
    ReadRequest,
    VersionReply,
    VersionRequest,
    VoteMessage,
)
from repro.sim.network import Network
from repro.sim.replica import ZERO_TIMESTAMP, Timestamp, dominant
from repro.sim.transactions import TransactionIdSource


class FailureReason(enum.Enum):
    """Why an operation did not succeed."""

    NONE = "none"
    UNAVAILABLE = "no-quorum-available"
    TIMEOUT = "quorum-timeout"
    LOCK_TIMEOUT = "lock-timeout"
    VOTE_REFUSED = "participant-refused"


class OperationOutcome:
    """The result of one read or write operation.

    A hand-rolled slotted class, not a dataclass: one is allocated per
    finished operation and retained by the monitor, so the flat
    ``__init__`` and ``__slots__`` matter at throughput-bench scale.
    Value equality is field-wise, matching the old dataclass semantics
    (and, like a dataclass with ``eq=True``, instances are unhashable).
    """

    __slots__ = (
        "op_type", "key", "success", "value", "timestamp", "quorum",
        "version_quorum", "attempts", "started_at", "finished_at",
        "reason", "leased", "failed_stage",
    )

    def __init__(
        self,
        op_type: str,
        key: Any,
        success: bool,
        value: Any = None,
        timestamp: Timestamp | None = None,
        quorum: frozenset[int] = frozenset(),
        version_quorum: frozenset[int] = frozenset(),
        attempts: int = 1,
        started_at: float = 0.0,
        finished_at: float = 0.0,
        reason: FailureReason = FailureReason.NONE,
        leased: bool = False,
        failed_stage: str = "",
    ) -> None:
        self.op_type = op_type
        self.key = key
        self.success = success
        self.value = value
        self.timestamp = timestamp
        self.quorum = quorum
        self.version_quorum = version_quorum
        self.attempts = attempts
        self.started_at = started_at
        self.finished_at = finished_at
        self.reason = reason
        #: True when the read was served from the lease cache: no quorum
        #: was contacted (``quorum`` is empty, ``attempts`` is 0) and the
        #: invariant checker skips only the quorum-intersection audit.
        self.leased = leased
        #: Protocol stage the operation died in ("" on success): "read",
        #: "version", "prepare" or "commit".  Reconfiguration uses this to
        #: distinguish a copy that could not read the old tree from one
        #: that could not write the new one.
        self.failed_stage = failed_stage

    @property
    def latency(self) -> float:
        """Wall-clock (simulated) duration of the operation."""
        return self.finished_at - self.started_at

    def _astuple(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not OperationOutcome:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"OperationOutcome({fields})"

    def with_started_at(self, started_at: float) -> "OperationOutcome":
        """A copy differing only in ``started_at`` (coalesced-read fan-out)."""
        copy = OperationOutcome.__new__(OperationOutcome)
        for name in self.__slots__:
            setattr(copy, name, getattr(self, name))
        copy.started_at = started_at
        return copy


DoneCallback = Callable[[OperationOutcome], None]


class _Stage(enum.Enum):
    READ = "read"
    VERSION = "version"
    PREPARE = "prepare"
    COMMIT = "commit"


class _OpContext:
    """Per-operation protocol state.

    A hand-rolled slotted class rather than a slotted dataclass: one is
    constructed per operation (per submission, even), and a flat
    ``__init__`` assigning its slots directly is several times cheaper
    than the generated 30-parameter dataclass one.  Read contexts skip
    the write-side scratch collections entirely (``versions``/``votes``/
    ``acks`` stay ``None``) — the write pipeline never runs for them.
    The collections a context does own are *reused* across attempts:
    :meth:`QuorumCoordinator._start_attempt` clears them in place instead
    of reallocating.
    """

    __slots__ = (
        "op_type", "key", "on_done", "lock_token", "started_at", "value",
        "stage", "attempts", "request_id", "txid", "quorum",
        "version_quorum", "replies", "versions", "votes", "acks",
        "write_timestamp", "timeout_handle", "finished", "write_system",
        "lock_granted", "preselected", "preselected_epoch", "skip_version",
        "copy_read", "trace_id", "op_span", "lock_span", "attempt_span",
        "phase_span",
    )

    def __init__(
        self,
        op_type: str,
        key: Any,
        on_done: DoneCallback,
        lock_token: int,
        started_at: float,
        value: Any = None,
        stage: _Stage = _Stage.READ,
        write_system: QuorumSystem | None = None,
        copy_read: bool = False,
        skip_version: bool = False,
        # Batching: a pre-selected read quorum for the first attempt
        # (shared across a flush), valid only while the liveness epoch is
        # unchanged.
        preselected: frozenset[int] | None = None,
        preselected_epoch: int | None = None,
        finished: bool = False,
    ) -> None:
        self.op_type = op_type
        self.key = key
        self.on_done = on_done
        self.lock_token = lock_token
        self.started_at = started_at
        self.value = value
        self.stage = stage
        self.attempts = 0
        self.request_id = 0
        self.txid = 0
        self.quorum = frozenset()
        self.version_quorum = frozenset()
        self.replies: dict[int, ReadReply] = {}
        if op_type == "read":
            self.versions = None
            self.votes = None
            self.acks = None
        else:
            self.versions: dict[int, Timestamp] = {}
            self.votes: dict[int, bool] = {}
            self.acks: set[int] = set()
        self.write_timestamp: Timestamp | None = None
        self.timeout_handle: "CancelHandle | None" = None
        self.finished = finished
        self.write_system = write_system
        self.lock_granted = False
        self.preselected = preselected
        self.preselected_epoch = preselected_epoch
        # Batching: derive the write timestamp from the shared version
        # floor instead of running the version round (safe for every
        # same-key write after the first in a flush — see the module
        # docstring).
        self.skip_version = skip_version
        # Reconfiguration copy: run a read phase under the exclusive lock
        # and re-write the dominant value, as ONE atomic operation.
        self.copy_read = copy_read
        # Trace span ids (0 = no span; only set when a recorder is enabled).
        self.trace_id = 0
        self.op_span = 0
        self.lock_span = 0
        self.attempt_span = 0
        self.phase_span = 0


def _reply_sort_key(reply: ReadReply) -> tuple[int, int]:
    """Dominance order for read replies (module-level: ``max`` over a
    quorum's replies runs once per completed read, and a named function
    beats allocating the equivalent lambda each time)."""
    return reply.timestamp.sort_key()


@dataclass(slots=True)
class _BatchedOp:
    """One submission waiting in the coordinator's batching window."""

    op_type: str
    key: Any
    value: Any
    on_done: DoneCallback
    submitted_at: float


class QuorumCoordinator:
    """Client-side executor of quorum reads and 2PC writes.

    Parameters
    ----------
    sid:
        Network address of this coordinator; must be negative so it never
        collides with replica SIDs.
    network:
        The shared message fabric.
    system:
        The quorum system whose selection rules the coordinator follows
        (any :class:`~repro.quorums.system.QuorumSystem`).
    locks:
        The centralised lock manager.
    detector:
        Perfect failure detector: ``detector(sid)`` is the replica's
        liveness (Section 2.2 makes failures detectable).
    rng:
        Randomness for quorum selection (spreads load like the paper's
        uniform strategies).
    timeout:
        How long to wait for a quorum's replies before retrying.
    max_attempts:
        Total quorum attempts per operation (1 = measure pure availability).
    writer_id:
        The SID recorded inside write timestamps.
    recorder:
        Trace recorder receiving one span tree per operation (lock wait,
        quorum selection, protocol phases, timeouts, retries, deferrals).
        The default :data:`~repro.obs.recorder.NULL_RECORDER` makes every
        hook a guarded no-op.
    retry_policy:
        Optional :class:`~repro.fault.retry.RetryPolicy` governing the
        delay before each retry and before unavailability re-probes.
        ``None`` keeps the legacy shape: immediate retry after a timeout
        or refused vote, ``unavailable_delay`` after finding no quorum.
    suspects:
        Optional :class:`~repro.fault.detector.SuspectList`.  When
        present, every quorum member that stays silent past a timeout is
        charged suspicion evidence, replies exonerate their sender, and
        quorum selection prefers quorums avoiding the currently
        suspected sites before falling back to blind selection.
    """

    def __init__(
        self,
        sid: int,
        network: Network,
        system: QuorumSystem,
        locks: LockManager,
        detector: LivenessOracle,
        rng: random.Random,
        timeout: float = 10.0,
        max_attempts: int = 3,
        writer_id: int = 0,
        tx_ids: TransactionIdSource | None = None,
        unavailable_delay: float | None = None,
        version_floor: dict | None = None,
        recorder: NullRecorder = NULL_RECORDER,
        liveness_epoch: Callable[[], int] | None = None,
        retry_policy: "RetryPolicy | None" = None,
        suspects: "SuspectList | None" = None,
        selector: SelectionIndex | None = None,
        batch_window: float = 0.0,
        leases: LeaseCache | None = None,
    ) -> None:
        if sid >= 0:
            raise ValueError("coordinator SIDs must be negative")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        if batch_window < 0:
            raise ValueError("batch window cannot be negative")
        self.sid = sid
        self._network = network
        #: The transport's clock, resolved once: internal hot paths read
        #: ``self._clock.now`` directly instead of chaining through two
        #: properties (coordinator.clock -> network.clock) per probe.
        #: This is the seam that lets the same coordinator run on the
        #: simulator (virtual time) and the asyncio runtime (wall time):
        #: everything time-related below goes through this Clock, never
        #: through simulator-only attributes like ``network.scheduler``.
        self._clock = network.clock
        self._system = system
        self._locks = locks
        self._detector = detector
        self._rng = rng
        self._timeout = timeout
        self._unavailable_delay = (
            timeout if unavailable_delay is None else unavailable_delay
        )
        self._max_attempts = max_attempts
        self._writer_id = writer_id
        self._recorder = recorder
        # Hoisted recorder guard: the per-run recorder never flips
        # enabled mid-run, so every span/count call site branches on one
        # cached bool instead of paying a method call + attribute chain
        # to discover the no-op recorder.
        self._trace_enabled = recorder.enabled
        self._tx_ids = tx_ids or TransactionIdSource()
        self._by_request: dict[int, _OpContext] = {}
        self._by_txid: dict[int, _OpContext] = {}
        self._in_flight = 0
        self._decisions: dict[int, bool] = {}
        # The per-key version floor embodies the paper's centralised
        # concurrency-control point; multiple coordinators in one system
        # must SHARE it (pass the same dict) so versions stay monotone even
        # when a write quorum cannot see the previous write's level.
        self._version_floor: dict[Any, Timestamp] = (
            version_floor if version_floor is not None else {}
        )
        self._liveness_epoch = liveness_epoch
        self._retry_policy = retry_policy
        self._suspects = suspects
        self._batch_window = batch_window
        self._batch: list[_BatchedOp] = []
        self._batch_handle: "CancelHandle | None" = None
        self._leases = leases
        # Reconfiguration pause gate: while paused, public submissions are
        # deferred (with their original submission time) and replayed in
        # order at resume().  Deferred operations are NOT in flight — they
        # have touched nothing — so quiescence polling only sees real ones.
        self._paused = False
        self._deferred: list[_BatchedOp] = []
        # receive() dispatch: type -> (context table, message-id getter,
        # required stage, handler).  One dict probe replaces the
        # isinstance chain on the hottest coordinator entry point; only a
        # *timely* match (pending context in the right stage) exonerates
        # the sender — see receive().
        self._dispatch: dict = {
            ReadReply: (
                self._by_request, attrgetter("request_id"),
                _Stage.READ, self._on_read_reply,
            ),
            VersionReply: (
                self._by_request, attrgetter("request_id"),
                _Stage.VERSION, self._on_version_reply,
            ),
            VoteMessage: (
                self._by_txid, attrgetter("txid"),
                _Stage.PREPARE, self._on_vote,
            ),
            AckMessage: (
                self._by_txid, attrgetter("txid"),
                _Stage.COMMIT, self._on_ack,
            ),
        }
        # A shared SelectionIndex (one per replica group/shard) lets every
        # coordinator of the group reuse the same packed quorum tables and
        # per-(op, live-mask) viable-row cache instead of building private
        # copies; selection results are identical either way (the cache
        # only memoises, the caller's RNG still drives the pick).
        self._shared_selector = selector
        self._selector: SelectionIndex | None = None
        self._universe: tuple[int, ...] = ()
        self._live_cache: tuple[int, ...] | None = None
        self._live_cache_epoch: int | None = None
        self._live_mask: int | None = None
        # Quorum -> sorted members.  Selected quorums are flyweights (the
        # selection index materialises each one once), so fan-outs hit
        # this cache instead of re-sorting the same frozenset on every
        # phase of every operation.  Bounded by the number of distinct
        # quorums ever selected; sorted order never changes, so entries
        # survive reconfiguration unharmed.
        self._sorted_members: dict[frozenset[int], list[int]] = {}
        self._rebuild_selector()
        network.register(sid, self)

    #: Endpoint-protocol liveness: coordinators do not fail in this model.
    up = True

    @property
    def is_up(self) -> bool:
        """Coordinators do not fail in this model."""
        return True

    @property
    def system(self) -> QuorumSystem:
        """The active quorum system."""
        return self._system

    @property
    def network(self) -> Network:
        """The message fabric this coordinator is registered on."""
        return self._network

    @property
    def locks(self) -> LockManager:
        """The (shared) lock manager — the pool-membership identity: two
        coordinators belong to one replica group iff they share it."""
        return self._locks

    def set_system(
        self, system: QuorumSystem, selector: SelectionIndex | None = None
    ) -> None:
        """Swap the quorum system (used by tree reconfiguration).

        ``selector`` lets a reconfigurer share one freshly built
        :class:`SelectionIndex` across a coordinator pool instead of every
        peer rebuilding identical packed tables; it must index ``system``.
        """
        if selector is not None:
            self._shared_selector = selector
        self._system = system
        self._rebuild_selector()

    @property
    def selector(self) -> SelectionIndex | None:
        """The bitset selection index, if the active system qualifies."""
        return self._selector

    @property
    def suspects(self) -> "SuspectList | None":
        """The attached failure detector (``None`` = blind selection)."""
        return self._suspects

    @property
    def retry_policy(self) -> "RetryPolicy | None":
        """The attached retry policy (``None`` = legacy immediate retry)."""
        return self._retry_policy

    @property
    def leases(self) -> LeaseCache | None:
        """The attached lease cache (``None`` = every read runs a quorum)."""
        return self._leases

    @property
    def batch_window(self) -> float:
        """The batching window (0 = every submission issues immediately)."""
        return self._batch_window

    # ------------------------------------------------------------------
    # quorum selection fast path
    # ------------------------------------------------------------------

    def _rebuild_selector(self) -> None:
        """(Re)attach a :class:`SelectionIndex` to the active system.

        Only systems that declare ``uniform_selection`` may be dispatched
        onto the packed kernel: the index picks uniformly among viable
        quorums, so substituting it for a structural selector that prefers
        primary quorums (tree-quorum paths, HQC's recursion, ...) would
        change the measured distribution, not just its speed.
        """
        self._selector = None
        self._live_cache = None
        self._live_cache_epoch = None
        self._live_mask = None
        if not getattr(self._system, "uniform_selection", False):
            return
        universe = getattr(self._system, "universe", None)
        if universe is None:
            return
        try:
            self._universe = tuple(sorted(universe))
        except TypeError:
            return
        shared = self._shared_selector
        if shared is not None and shared.system is self._system:
            self._selector = shared
            return
        self._selector = SelectionIndex(self._system)

    def _live_replicas(self) -> tuple[int, ...]:
        """The detector's live view of the universe, cached per epoch.

        The network's liveness epoch advances on every crash, recovery,
        partition install and heal, so between bumps the probe loop can be
        skipped entirely — the dominant saving for large ``n``.
        """
        epoch_fn = self._liveness_epoch
        epoch = epoch_fn() if epoch_fn is not None else None
        if (
            self._live_cache is None
            or epoch is None
            or epoch != self._live_cache_epoch
        ):
            detector = self._detector
            self._live_cache = tuple(
                sid for sid in self._universe if detector(sid)
            )
            self._live_cache_epoch = epoch
            # Pack the live set once per epoch alongside the tuple, so
            # packed selections skip the per-call mask-building loop
            # (None when the active system has no packed tables).
            selector = self._selector
            self._live_mask = (
                selector.live_mask(self._live_cache)
                if selector is not None
                else None
            )
        return self._live_cache

    def _select_quorum(
        self, op: str, system: QuorumSystem | None = None
    ) -> frozenset[int] | None:
        """Select a live ``op`` quorum, via the packed index when possible.

        ``system`` overrides the coordinator's own system (reconfiguration
        state transfer); overrides always use their own structural selector
        since they are rare and short-lived.
        """
        if system is not None and system is not self._system:
            if op == "read":
                return system.select_read_quorum(self._detector, self._rng)
            return system.select_write_quorum(self._detector, self._rng)
        suspects = self._suspects
        avoid: frozenset[int] = (
            suspects.suspected(self._clock.now)
            if suspects is not None
            else frozenset()
        )
        selector = self._selector
        if selector is not None:
            if avoid:
                quorum, avoided = selector.select_avoiding(
                    op, self._live_replicas(), avoid, self._rng
                )
                if avoided:
                    suspects.note_avoided()
                return quorum
            live = self._live_replicas()
            mask = self._live_mask
            if mask is not None and selector.supported(op):
                # Same rows, same single randrange as select() — only
                # the per-call packing loop is skipped.
                return selector.select_masked(op, mask, self._rng)
            return selector.select(op, live, self._rng)
        if avoid and any(self._detector(sid) for sid in avoid):
            # Structural selector: run it once over an oracle that also
            # rules out suspected sites; fall back to the plain liveness
            # oracle when no suspect-free quorum stands.
            detector = self._detector

            def preferred(sid: int) -> bool:
                return sid not in avoid and detector(sid)

            if op == "read":
                quorum = self._system.select_read_quorum(preferred, self._rng)
            else:
                quorum = self._system.select_write_quorum(preferred, self._rng)
            if quorum is not None:
                suspects.note_avoided()
                return quorum
        if op == "read":
            return self._system.select_read_quorum(self._detector, self._rng)
        return self._system.select_write_quorum(self._detector, self._rng)

    def system_universe(self) -> frozenset[int]:
        """The replica SIDs the active system spans (if it reports them)."""
        universe = getattr(self._system, "universe", None)
        if universe is None:
            raise TypeError(
                f"{type(self._system).__name__} does not expose a universe"
            )
        return frozenset(universe)

    def is_quiescent(self) -> bool:
        """True iff no operation is in flight on this coordinator.

        Counts operations from submission (including lock waits) to their
        ``on_done`` callback.
        """
        return self._in_flight == 0

    @property
    def clock(self) -> "Clock":
        """The transport-seam clock this coordinator times against."""
        return self._clock

    @property
    def scheduler(self) -> "Clock":
        """Legacy alias for :attr:`clock`.

        On the simulator backend this is the event scheduler (the sim's
        clock and delivery engine are one object), which is what existing
        callers — reconfiguration, the engine — expect.  They only use
        the :class:`~repro.runtime.interfaces.Clock` surface, so the
        alias is exact on both backends.
        """
        return self._clock

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------

    def read(self, key: Any, on_done: DoneCallback) -> None:
        """Issue a quorum read of ``key``; ``on_done`` fires exactly once.

        A live lease short-circuits everything: no lock, no quorum, no
        network — the cached value is delivered on the next scheduler
        tick (still asynchronously, so closed-loop callers never
        recurse).  Lease misses enter the batching window when one is
        configured, the legacy immediate pipeline otherwise.  While the
        coordinator is paused (a quiescent migration window), the
        submission is deferred whole and replayed at :meth:`resume`.
        """
        self._submit_read(key, on_done, self._clock.now)

    def _submit_read(
        self, key: Any, on_done: DoneCallback, submitted_at: float
    ) -> None:
        if self._paused:
            self._deferred.append(
                _BatchedOp("read", key, None, on_done, submitted_at)
            )
            return
        if self._leases is not None and self._serve_leased(
            key, on_done, submitted_at
        ):
            return
        if self._batch_window > 0.0:
            self._enqueue(
                _BatchedOp("read", key, None, on_done, submitted_at)
            )
            return
        self.read_now(key, on_done, started_at=submitted_at)

    def read_now(
        self,
        key: Any,
        on_done: DoneCallback,
        started_at: float | None = None,
    ) -> None:
        """The immediate read pipeline: no pause gate, no lease, no batch.

        Reconfiguration state transfer uses this directly so migration
        reads run during the pause (legacy mode) and never sit in a
        batching window; ``started_at`` preserves a deferred submission's
        original time so latency/availability stay honestly measured.
        """
        self._in_flight += 1
        ctx = _OpContext(
            op_type="read",
            key=key,
            on_done=on_done,
            lock_token=self._tx_ids.next_id(),
            started_at=(
                self._clock.now if started_at is None else started_at
            ),
            stage=_Stage.READ,
        )
        if self._trace_enabled:
            self._trace_operation_start(ctx, LockMode.SHARED)
        self._locks.acquire(
            ctx.lock_token,
            key,
            LockMode.SHARED,
            partial(self._lock_decided, ctx),
        )

    def write(self, key: Any, value: Any, on_done: DoneCallback) -> None:
        """Issue a quorum write; ``on_done`` fires exactly once."""
        self._submit_write(key, value, on_done, self._clock.now)

    def _submit_write(
        self, key: Any, value: Any, on_done: DoneCallback, submitted_at: float
    ) -> None:
        if self._paused:
            self._deferred.append(
                _BatchedOp("write", key, value, on_done, submitted_at)
            )
            return
        if self._batch_window > 0.0:
            self._enqueue(
                _BatchedOp("write", key, value, on_done, submitted_at)
            )
            return
        self._write(
            key, value, on_done, write_system=None, started_at=submitted_at
        )

    def write_now(
        self,
        key: Any,
        value: Any,
        on_done: DoneCallback,
        started_at: float | None = None,
    ) -> None:
        """The immediate write pipeline (see :meth:`read_now`)."""
        self._write(
            key, value, on_done, write_system=None, started_at=started_at
        )

    # ------------------------------------------------------------------
    # reconfiguration pause gate
    # ------------------------------------------------------------------

    @property
    def paused(self) -> bool:
        """True while public submissions are being deferred."""
        return self._paused

    def pause(self) -> None:
        """Defer public submissions until :meth:`resume` (idempotent).

        This is the enforcement the quiescent migration's one-shot
        ``is_quiescent()`` check lacked: traffic submitted *during* the
        migration window is parked here instead of racing the per-key
        state transfer on the old tree.
        """
        self._paused = True

    def resume(self) -> None:
        """Reopen the gate and replay deferred submissions in order.

        Replays re-enter the full public pipeline (lease lookup, batching
        window) under whatever quorum system is active *now* — after a
        migration that is the new tree — keeping their original
        submission times so the pause shows up in measured latency.
        """
        self._paused = False
        while self._deferred and not self._paused:
            op = self._deferred.pop(0)
            if op.op_type == "read":
                self._submit_read(op.key, op.on_done, op.submitted_at)
            else:
                self._submit_write(
                    op.key, op.value, op.on_done, op.submitted_at
                )

    def copy_key(
        self,
        key: Any,
        on_done: DoneCallback,
        write_system: QuorumSystem | None = None,
    ) -> None:
        """Atomically re-write ``key``'s current value at a fresh version.

        The reconfiguration state-transfer primitive: one EXCLUSIVE lock
        covers both halves, so no client write can interleave between the
        read and the re-write (the split read-then-write pipeline let a
        concurrent write land in the gap and be resurrected-over at a
        higher version).  The read phase runs through the *current*
        system's read quorums; the 2PC write lands on ``write_system``'s
        write quorums when given (quiescent migration writes the new
        tree), on the current system's otherwise (online migration under
        the dual system).  A never-written key (dominant value ``None``)
        completes successfully without writing anything.
        """
        self._in_flight += 1
        ctx = _OpContext(
            op_type="write",
            key=key,
            on_done=on_done,
            lock_token=self._tx_ids.next_id(),
            started_at=self._clock.now,
            stage=_Stage.READ,
            write_system=write_system,
            copy_read=True,
        )
        if self._trace_enabled:
            self._trace_operation_start(ctx, LockMode.EXCLUSIVE)
        self._locks.acquire(
            ctx.lock_token,
            key,
            LockMode.EXCLUSIVE,
            partial(self._lock_decided, ctx),
        )

    def write_with_system(
        self,
        key: Any,
        value: Any,
        system: QuorumSystem,
        on_done: DoneCallback,
    ) -> None:
        """A write whose *write quorum* comes from a different quorum system.

        Versions are still obtained through the current system's read
        quorums (which intersect every past write), while the data lands on
        the override system's write quorum — the primitive tree
        reconfiguration needs for state transfer.
        """
        self._write(key, value, on_done, write_system=system)

    def _write(
        self,
        key: Any,
        value: Any,
        on_done: DoneCallback,
        write_system: QuorumSystem | None,
        started_at: float | None = None,
    ) -> None:
        self._in_flight += 1
        ctx = _OpContext(
            op_type="write",
            key=key,
            value=value,
            on_done=on_done,
            lock_token=self._tx_ids.next_id(),
            started_at=(
                self._clock.now if started_at is None else started_at
            ),
            stage=_Stage.VERSION,
            write_system=write_system,
        )
        if self._trace_enabled:
            self._trace_operation_start(ctx, LockMode.EXCLUSIVE)
        self._locks.acquire(
            ctx.lock_token,
            key,
            LockMode.EXCLUSIVE,
            partial(self._lock_decided, ctx),
        )

    # ------------------------------------------------------------------
    # read leases
    # ------------------------------------------------------------------

    def _serve_leased(
        self, key: Any, on_done: DoneCallback, started_at: float | None = None
    ) -> bool:
        """Serve a read from the lease cache; False on a miss."""
        entry = self._leases.lookup(key)
        if entry is None:
            return False
        self._in_flight += 1
        now = self._clock.now
        outcome = OperationOutcome(
            op_type="read",
            key=key,
            success=True,
            value=entry.value,
            timestamp=entry.timestamp,
            quorum=frozenset(),
            version_quorum=frozenset(),
            attempts=0,
            started_at=now if started_at is None else started_at,
            finished_at=now,
            leased=True,
        )

        self._clock.call_later(0.0, self._deliver_leased, (on_done, outcome))
        return True

    def _deliver_leased(
        self, pending: tuple[DoneCallback, OperationOutcome]
    ) -> None:
        on_done, outcome = pending
        self._in_flight -= 1
        on_done(outcome)

    # ------------------------------------------------------------------
    # operation batching
    # ------------------------------------------------------------------

    def _enqueue(self, op: _BatchedOp) -> None:
        """Queue a submission; the first one arms the flush timer."""
        self._in_flight += 1
        self._batch.append(op)
        if self._batch_handle is None:
            self._batch_handle = self._clock.schedule(
                self._batch_window, self._flush_batch
            )

    def _flush_batch(self) -> None:
        """Issue everything queued during the window, coalesced per key.

        Per key (insertion order, so flushes are deterministic): all
        queued reads collapse into **one** quorum read whose outcome
        fans out to every waiter; writes issue in submission order, the
        first through the full version-round pipeline and the rest with
        ``skip_version`` (their timestamps derive from the version floor
        the predecessors' commits will have advanced — the lock manager
        serialises them).  All read groups in the flush share a single
        pre-selected read quorum, amortising quorum selection across the
        batch; the pre-selection is epoch-stamped and re-validated at
        lock grant.
        """
        self._batch_handle = None
        batch = self._batch
        self._batch = []
        by_key: dict[Any, list[_BatchedOp]] = {}
        for op in batch:
            by_key.setdefault(op.key, []).append(op)
        preselected: frozenset[int] | None = None
        epoch = (
            self._liveness_epoch()
            if self._liveness_epoch is not None
            else None
        )
        for key, ops in by_key.items():
            reads = [op for op in ops if op.op_type == "read"]
            writes = [op for op in ops if op.op_type == "write"]
            if reads:
                if self._leases is not None and self._serve_group_leased(
                    key, reads
                ):
                    pass
                else:
                    if preselected is None:
                        # One selection for every read group in the
                        # flush (the batch's shared quorum).
                        preselected = self._select_quorum("read")
                    self._issue_read_group(key, reads, preselected, epoch)
            for index, op in enumerate(writes):
                self._issue_batched_write(op, skip_version=index > 0)

    def _serve_group_leased(self, key: Any, reads: list[_BatchedOp]) -> bool:
        """Serve a whole read group from a lease (re-checked at flush).

        A lease granted *during* the window (say, by a write-through
        commit) can satisfy reads that missed at submission time.
        """
        entry = self._leases.lookup(key)
        if entry is None:
            return False
        now = self._clock.now
        self._in_flight -= len(reads)
        for op in reads:
            op.on_done(
                OperationOutcome(
                    op_type="read",
                    key=key,
                    success=True,
                    value=entry.value,
                    timestamp=entry.timestamp,
                    quorum=frozenset(),
                    version_quorum=frozenset(),
                    attempts=0,
                    started_at=op.submitted_at,
                    finished_at=now,
                    leased=True,
                )
            )
        return True

    def _issue_read_group(
        self,
        key: Any,
        reads: list[_BatchedOp],
        quorum: frozenset[int] | None,
        epoch: int | None,
    ) -> None:
        """One quorum read serving every queued read of ``key``."""
        callbacks = [op.on_done for op in reads]
        starts = [op.submitted_at for op in reads]
        extra = len(reads) - 1

        def fan_out(outcome: OperationOutcome) -> None:
            # The context's _finish decremented in-flight once (for the
            # first waiter); settle the coalesced remainder here.
            self._in_flight -= extra
            for on_done, started_at in zip(callbacks, starts):
                on_done(outcome.with_started_at(started_at))

        ctx = _OpContext(
            op_type="read",
            key=key,
            on_done=fan_out,
            lock_token=self._tx_ids.next_id(),
            started_at=starts[0],
            stage=_Stage.READ,
            preselected=quorum,
            preselected_epoch=epoch,
        )
        if self._trace_enabled:
            self._trace_operation_start(ctx, LockMode.SHARED)
        self._locks.acquire(
            ctx.lock_token,
            key,
            LockMode.SHARED,
            partial(self._lock_decided, ctx),
        )

    def _issue_batched_write(self, op: _BatchedOp, skip_version: bool) -> None:
        """Issue one queued write (in-flight was counted at enqueue)."""
        ctx = _OpContext(
            op_type="write",
            key=op.key,
            value=op.value,
            on_done=op.on_done,
            lock_token=self._tx_ids.next_id(),
            started_at=op.submitted_at,
            stage=_Stage.VERSION,
            skip_version=skip_version,
        )
        if self._trace_enabled:
            self._trace_operation_start(ctx, LockMode.EXCLUSIVE)
        self._locks.acquire(
            ctx.lock_token,
            op.key,
            LockMode.EXCLUSIVE,
            partial(self._lock_decided, ctx),
        )

    # ------------------------------------------------------------------
    # trace span helpers
    # ------------------------------------------------------------------

    def _trace_operation_start(self, ctx: _OpContext, mode: LockMode) -> None:
        recorder = self._recorder
        if not recorder.enabled:
            return
        now = self._clock.now
        ctx.trace_id = ctx.op_span = recorder.start_trace(
            ctx.op_type, now, key=str(ctx.key), coordinator=self.sid
        )
        ctx.lock_span = recorder.start_span(
            ctx.trace_id, ctx.op_span, "lock_wait", SpanKind.LOCK_WAIT, now,
            op=ctx.op_type, mode=mode.value,
        )

    def _begin_phase(self, ctx: _OpContext, name: str, quorum_size: int) -> None:
        recorder = self._recorder
        if not recorder.enabled:
            return
        now = self._clock.now
        if ctx.phase_span:
            recorder.end_span(ctx.phase_span, now)
            ctx.phase_span = 0
        recorder.event(
            ctx.trace_id, ctx.attempt_span, "quorum_select", now,
            op=ctx.op_type, stage=name, size=quorum_size,
        )
        ctx.phase_span = recorder.start_span(
            ctx.trace_id, ctx.attempt_span, f"phase/{name}", SpanKind.PHASE,
            now, op=ctx.op_type, quorum=quorum_size,
        )

    def _end_phase(self, ctx: _OpContext, status: str = STATUS_OK) -> None:
        if ctx.phase_span:
            self._recorder.end_span(
                ctx.phase_span, self._clock.now, status=status
            )
            ctx.phase_span = 0

    def _close_attempt(self, ctx: _OpContext, status: str = STATUS_OK) -> None:
        recorder = self._recorder
        if not recorder.enabled:
            return
        self._end_phase(ctx, status=status)
        if ctx.attempt_span:
            recorder.end_span(ctx.attempt_span, self._clock.now, status=status)
            ctx.attempt_span = 0

    # ------------------------------------------------------------------
    # lock handling
    # ------------------------------------------------------------------

    def _lock_decided(self, ctx: _OpContext, granted: bool) -> None:
        ctx.lock_granted = granted
        if ctx.lock_span:
            self._recorder.end_span(
                ctx.lock_span, self._clock.now,
                status=STATUS_OK if granted else FailureReason.LOCK_TIMEOUT.value,
            )
            ctx.lock_span = 0
        if not granted:
            self._finish(ctx, success=False, reason=FailureReason.LOCK_TIMEOUT)
            return
        if ctx.op_type == "read" and self._leases is not None:
            # Re-check the lease now that the shared lock is held: a
            # writer queued ahead of this reader committed and re-granted
            # the lease (write-through) while we waited, so the cached
            # value is proven current *under this very lock*.  Serving it
            # here converts the hot-key read convoy — every queued reader
            # re-running a full quorum round after every write — into one
            # lease lookup per reader.
            entry = self._leases.lookup(ctx.key)
            if entry is not None:
                self._finish_leased(ctx, entry)
                return
        if ctx.op_type == "write" and self._leases is not None:
            # Revoke the key's lease the moment the writer owns the
            # exclusive lock — before any replica state can change — so
            # every read from here on queues behind the lock instead of
            # serving the soon-to-be-stale cached value.  The lease is
            # re-granted (write-through) only if this write commits.
            self._leases.invalidate(ctx.key)
        self._start_attempt(ctx)

    # ------------------------------------------------------------------
    # attempt lifecycle
    # ------------------------------------------------------------------

    def _start_attempt(self, ctx: _OpContext) -> None:
        if ctx.finished:
            return
        ctx.attempts += 1
        ctx.replies.clear()
        if ctx.op_type != "read":
            ctx.versions.clear()
            ctx.votes.clear()
            # Stale commit acknowledgements must not leak into the next
            # attempt: a fresh attempt selects a fresh quorum, and acks
            # from an earlier one would let ``_on_ack`` complete the
            # commit early.
            ctx.acks.clear()
        recorder = self._recorder
        if recorder.enabled:
            self._close_attempt(ctx)
            ctx.attempt_span = recorder.start_span(
                ctx.trace_id, ctx.op_span, "attempt", SpanKind.ATTEMPT,
                self._clock.now, op=ctx.op_type, number=ctx.attempts,
            )
        if ctx.op_type == "read" or ctx.copy_read:
            # Copy operations restart from their read phase on every
            # retry: the previous attempt's dominant value may be stale.
            self._start_read_phase(ctx)
        elif ctx.skip_version:
            # Batched same-key successor write: the predecessor's commit
            # decision advanced the shared version floor before its
            # exclusive lock was released, and this write's lock grant
            # happens-after that release — so the floor already dominates
            # every committed version a version round could observe.
            floor = self._version_floor.get(ctx.key, ZERO_TIMESTAMP)
            ctx.write_timestamp = floor.next_version(self._writer_id)
            self._start_prepare_phase(ctx)
        else:
            ctx.stage = _Stage.VERSION
            self._start_version_phase(ctx)

    def _defer_unavailable(self, ctx: _OpContext) -> None:
        """No quorum is currently live: report/retry after a detection delay.

        Discovering unavailability costs real time (a probe round); charging
        it here keeps the simulated clock moving, so periodic failure
        injectors and the workload stay correctly interleaved.

        The ``ctx.finished`` guard matters: a racing timeout path can
        finish the operation before a pending phase start lands here, and
        scheduling the retry callback (or recording the defer span) for a
        finished context would leak a stray event past the operation's
        closed root span.
        """
        if ctx.finished:
            return
        self._cancel_timeout(ctx)
        delay = self._unavailable_delay
        if self._retry_policy is not None:
            policy_delay = self._retry_policy.unavailable_delay(ctx.attempts)
            if policy_delay is not None:
                delay = policy_delay
        recorder = self._recorder
        if recorder.enabled:
            now = self._clock.now
            span = recorder.start_span(
                ctx.trace_id, ctx.attempt_span or ctx.op_span,
                "unavailable_defer", SpanKind.DEFER, now, op=ctx.op_type,
            )
            recorder.end_span(
                span, now + delay,
                status=FailureReason.UNAVAILABLE.value,
            )
        self._clock.call_later(delay, self._retry_unavailable, ctx)

    def _retry_unavailable(self, ctx: _OpContext) -> None:
        self._retry_or_fail(ctx, FailureReason.UNAVAILABLE)

    def _retry_or_fail(self, ctx: _OpContext, reason: FailureReason) -> None:
        if ctx.finished:
            return
        if self._trace_enabled:
            self._close_attempt(ctx, status=reason.value)
        if ctx.attempts >= self._max_attempts:
            self._finish(ctx, success=False, reason=reason)
            return
        if self._recorder.enabled:
            self._recorder.event(
                ctx.trace_id, ctx.op_span, "retry", self._clock.now,
                op=ctx.op_type, reason=reason.value, attempt=ctx.attempts,
            )
        # The unavailability path already charged its delay in
        # _defer_unavailable; every other failure consults the retry
        # policy for a backoff before the next attempt.
        delay = 0.0
        if (
            self._retry_policy is not None
            and reason is not FailureReason.UNAVAILABLE
        ):
            delay = self._retry_policy.retry_delay(ctx.attempts)
        if delay <= 0.0:
            self._start_attempt(ctx)
            return
        if self._recorder.enabled:
            now = self._clock.now
            span = self._recorder.start_span(
                ctx.trace_id, ctx.op_span, "backoff", SpanKind.DEFER, now,
                op=ctx.op_type, attempt=ctx.attempts,
            )
            self._recorder.end_span(span, now + delay)
        self._clock.call_later(delay, self._start_attempt, ctx)

    def _arm_timeout(self, ctx: _OpContext) -> None:
        handle = ctx.timeout_handle
        if handle is not None:  # _cancel_timeout, inlined (armed per phase)
            handle.cancel()
        # A tuple argument instead of a closure: the timeout is armed once
        # per protocol phase, and (ctx, attempt, stage) pins which phase
        # it guards so a late firing after a retry is recognisably stale.
        ctx.timeout_handle = self._clock.schedule(
            self._timeout, self._fire_timeout, (ctx, ctx.attempts, ctx.stage)
        )

    def _fire_timeout(
        self, armed: tuple[_OpContext, int, _Stage]
    ) -> None:
        ctx, attempt, stage = armed
        self._on_timeout(ctx, attempt, stage)

    def _cancel_timeout(self, ctx: _OpContext) -> None:
        if ctx.timeout_handle is not None:
            ctx.timeout_handle.cancel()
            ctx.timeout_handle = None

    @staticmethod
    def _pending_members(ctx: _OpContext, stage: _Stage) -> set[int]:
        """Quorum members that have stayed silent in ``stage`` so far."""
        if stage is _Stage.READ:
            return set(ctx.quorum) - ctx.replies.keys()
        if stage is _Stage.VERSION:
            return set(ctx.version_quorum) - ctx.versions.keys()
        if stage is _Stage.PREPARE:
            return set(ctx.quorum) - ctx.votes.keys()
        return set(ctx.quorum) - ctx.acks

    def _on_timeout(self, ctx: _OpContext, attempt: int, stage: _Stage) -> None:
        if ctx.finished or ctx.attempts != attempt or ctx.stage is not stage:
            return
        if self._recorder.enabled:
            self._recorder.event(
                ctx.trace_id, ctx.attempt_span or ctx.op_span, "timeout",
                self._clock.now, op=ctx.op_type, stage=stage.value,
                attempt=attempt,
            )
        if self._suspects is not None and stage is not _Stage.COMMIT:
            # Members that never answered within the timeout window are the
            # detector's evidence source: crashed sites are already excluded
            # from future selections by the liveness oracle, but stragglers
            # and flaky links look exactly like this.
            self._suspects.record_timeout(
                sorted(self._pending_members(ctx, stage)), self._clock.now
            )
        if stage is _Stage.COMMIT:
            self._continue_commit(ctx)
            return
        self._unregister(ctx)
        if stage is _Stage.PREPARE:
            self._broadcast_decision(ctx, commit=False)
        self._retry_or_fail(ctx, FailureReason.TIMEOUT)

    def _unregister(self, ctx: _OpContext) -> None:
        self._by_request.pop(ctx.request_id, None)
        self._by_txid.pop(ctx.txid, None)

    def _finish_leased(self, ctx: _OpContext, entry: "LeaseEntry") -> None:
        """Complete a read context from a lease (no quorum was contacted).

        Reached only from the shared-lock grant re-check; the lease was
        (re)granted while the reader queued, so no attempt ever started —
        there is no timeout to race and no request to unregister, but both
        cleanups stay for symmetry with :meth:`_finish`.
        """
        if ctx.finished:
            return
        ctx.finished = True
        self._in_flight -= 1
        self._cancel_timeout(ctx)
        self._unregister(ctx)
        if ctx.lock_granted:
            self._locks.release(ctx.lock_token, ctx.key)
        recorder = self._recorder
        if recorder.enabled:
            self._close_attempt(ctx)
            recorder.end_span(
                ctx.op_span, self._clock.now, status=STATUS_OK,
                attempts=ctx.attempts, quorum=0, version_quorum=0,
            )
        ctx.on_done(
            OperationOutcome(
                op_type="read",
                key=ctx.key,
                success=True,
                value=entry.value,
                timestamp=entry.timestamp,
                quorum=frozenset(),
                version_quorum=frozenset(),
                attempts=ctx.attempts,
                started_at=ctx.started_at,
                finished_at=self._clock.now,
                leased=True,
            )
        )

    def _finish(
        self,
        ctx: _OpContext,
        success: bool,
        reason: FailureReason = FailureReason.NONE,
        value: Any = None,
        timestamp: Timestamp | None = None,
    ) -> None:
        if ctx.finished:
            return
        ctx.finished = True
        self._in_flight -= 1
        # _cancel_timeout + _unregister, inlined: this tail runs once per
        # operation and the two call frames are measurable at bench scale.
        handle = ctx.timeout_handle
        if handle is not None:
            handle.cancel()
            ctx.timeout_handle = None
        self._by_request.pop(ctx.request_id, None)
        self._by_txid.pop(ctx.txid, None)
        # Only release a lock that was actually granted: on the
        # LOCK_TIMEOUT path the request was denied while still queued, so
        # there is nothing to release.
        if ctx.lock_granted:
            self._locks.release(ctx.lock_token, ctx.key)
        if self._trace_enabled:
            recorder = self._recorder
            status = STATUS_OK if success else reason.value
            self._close_attempt(ctx, status=status)
            recorder.end_span(
                ctx.op_span, self._clock.now, status=status,
                attempts=ctx.attempts, quorum=len(ctx.quorum),
                version_quorum=len(ctx.version_quorum),
            )
        if success and self._leases is not None:
            # A completed read quorum proves the dominant value current;
            # a committed write *is* the current value (write-through).
            # Either way the key's lease can be (re)granted.
            self._leases.grant(ctx.key, value, timestamp, ctx.quorum)
        outcome = OperationOutcome(
            op_type=ctx.op_type,
            key=ctx.key,
            success=success,
            value=value,
            timestamp=timestamp,
            quorum=ctx.quorum,
            version_quorum=ctx.version_quorum,
            attempts=ctx.attempts,
            started_at=ctx.started_at,
            finished_at=self._clock.now,
            reason=reason if not success else FailureReason.NONE,
            failed_stage="" if success else ctx.stage.value,
        )
        ctx.on_done(outcome)

    # ------------------------------------------------------------------
    # read phase
    # ------------------------------------------------------------------

    def _start_read_phase(self, ctx: _OpContext) -> None:
        quorum: frozenset[int] | None = None
        if ctx.preselected is not None:
            # The flush's shared pre-selected quorum serves the first
            # attempt — but only while the liveness epoch it was chosen
            # under still holds (the lock wait may span crashes).
            # Retries always select fresh.
            epoch = (
                self._liveness_epoch()
                if self._liveness_epoch is not None
                else None
            )
            if epoch == ctx.preselected_epoch:
                quorum = ctx.preselected
            ctx.preselected = None
        if quorum is None:
            quorum = self._select_quorum("read")
        if quorum is None:
            self._defer_unavailable(ctx)
            return
        ctx.stage = _Stage.READ
        ctx.quorum = quorum
        if self._trace_enabled:
            self._begin_phase(ctx, "read", len(quorum))
        ctx.request_id = self._tx_ids.next_id()
        self._by_request[ctx.request_id] = ctx
        self._arm_timeout(ctx)
        sid = self.sid
        request_id = ctx.request_id
        key = ctx.key
        members = self._sorted_members.get(quorum)
        if members is None:
            members = self._sorted_members[quorum] = sorted(quorum)
        # Positional: (src, dst, key, request_id) — the fan-out's
        # allocation rate makes keyword binding measurable.
        self._network.broadcast([
            ReadRequest(sid, member, key, request_id)
            for member in members
        ])

    def _on_read_reply(self, ctx: _OpContext, message: ReadReply) -> None:
        # Completeness by count: replies are keyed by sender and can only
        # come from the current attempt's quorum (the request id routing
        # a reply here is fresh per attempt and was only ever sent to
        # quorum members; duplicates overwrite in place), so
        # ``len(replies) == len(quorum)`` iff every member answered — no
        # per-reply set materialisation needed.  Same argument for the
        # version/vote/ack tallies below (txids are fresh per attempt).
        ctx.replies[message.src] = message
        if len(ctx.replies) < len(ctx.quorum):
            return
        best = max(ctx.replies.values(), key=_reply_sort_key)
        if ctx.copy_read:
            self._copy_read_complete(ctx, best)
            return
        self._finish(
            ctx, success=True, value=best.value, timestamp=best.timestamp
        )

    def _copy_read_complete(self, ctx: _OpContext, best: ReadReply) -> None:
        """A copy operation's read half finished: re-write the value.

        The exclusive lock is still held, so the dominant value read here
        is the current value at the instant the write lands — nothing can
        commit in between.
        """
        self._cancel_timeout(ctx)
        if ctx.phase_span:
            self._end_phase(ctx)
        self._by_request.pop(ctx.request_id, None)
        if best.value is None:
            # Never written: nothing to transfer (and nothing a lease or
            # the invariant audit could usefully record).
            self._finish(
                ctx, success=True, value=None, timestamp=best.timestamp
            )
            return
        ctx.value = best.value
        ctx.version_quorum = ctx.quorum
        floor = self._version_floor.get(ctx.key, ZERO_TIMESTAMP)
        current = (
            best.timestamp
            if best.timestamp.version >= floor.version
            else floor
        )
        ctx.write_timestamp = current.next_version(self._writer_id)
        # Pre-stage so an unavailable write-quorum selection is reported
        # against the write half, not the already-complete read half.
        ctx.stage = _Stage.PREPARE
        self._start_prepare_phase(ctx)

    # ------------------------------------------------------------------
    # write: version phase
    # ------------------------------------------------------------------

    def _start_version_phase(self, ctx: _OpContext) -> None:
        quorum = self._select_quorum("read")
        if quorum is None:
            # The paper's write availability depends only on the write
            # quorum (Section 3.2.2): obtain the version numbers from the
            # write quorum itself when no read quorum is assemblable.  The
            # coordinator's per-key version floor (it is the centralised
            # concurrency-control point of Section 2.2, so every write's
            # version passes through it) keeps versions monotone even when
            # the fallback quorum missed the latest committed write.
            quorum = self._select_quorum("write")
        if quorum is None:
            self._defer_unavailable(ctx)
            return
        ctx.stage = _Stage.VERSION
        ctx.version_quorum = quorum
        if self._trace_enabled:
            self._begin_phase(ctx, "version", len(quorum))
        ctx.request_id = self._tx_ids.next_id()
        self._by_request[ctx.request_id] = ctx
        self._arm_timeout(ctx)
        sid = self.sid
        request_id = ctx.request_id
        key = ctx.key
        members = self._sorted_members.get(quorum)
        if members is None:
            members = self._sorted_members[quorum] = sorted(quorum)
        # Positional: (src, dst, key, request_id).
        self._network.broadcast([
            VersionRequest(sid, member, key, request_id)
            for member in members
        ])

    def _on_version_reply(self, ctx: _OpContext, message: VersionReply) -> None:
        ctx.versions[message.src] = message.timestamp
        if len(ctx.versions) < len(ctx.version_quorum):
            return
        self._cancel_timeout(ctx)
        if ctx.phase_span:
            self._end_phase(ctx)
        observed = dominant(list(ctx.versions.values()))
        floor = self._version_floor.get(ctx.key, ZERO_TIMESTAMP)
        current = observed if observed.version >= floor.version else floor
        ctx.write_timestamp = current.next_version(self._writer_id)
        self._by_request.pop(ctx.request_id, None)
        self._start_prepare_phase(ctx)

    # ------------------------------------------------------------------
    # write: 2PC
    # ------------------------------------------------------------------

    def _start_prepare_phase(self, ctx: _OpContext) -> None:
        quorum = self._select_quorum("write", ctx.write_system)
        if quorum is None:
            self._defer_unavailable(ctx)
            return
        assert ctx.write_timestamp is not None
        ctx.stage = _Stage.PREPARE
        ctx.quorum = quorum
        if self._trace_enabled:
            self._begin_phase(ctx, "prepare", len(quorum))
        ctx.txid = self._tx_ids.next_id()
        self._by_txid[ctx.txid] = ctx
        self._arm_timeout(ctx)
        sid = self.sid
        members = self._sorted_members.get(quorum)
        if members is None:
            members = self._sorted_members[quorum] = sorted(quorum)
        # Positional: (src, dst, txid, key, value, timestamp).
        self._network.broadcast([
            PrepareMessage(
                sid, member, ctx.txid, ctx.key, ctx.value, ctx.write_timestamp
            )
            for member in members
        ])

    def _on_vote(self, ctx: _OpContext, message: VoteMessage) -> None:
        ctx.votes[message.src] = message.vote_commit
        if not message.vote_commit:
            self._cancel_timeout(ctx)
            self._unregister(ctx)
            self._broadcast_decision(ctx, commit=False)
            self._retry_or_fail(ctx, FailureReason.VOTE_REFUSED)
            return
        if len(ctx.votes) < len(ctx.quorum):
            return
        # Decision reached: the write is now durable (commit logged), but the
        # exclusive lock is held until every live quorum member has applied
        # it, so no later read can observe a pre-commit value.
        self._broadcast_decision(ctx, commit=True)
        assert ctx.write_timestamp is not None
        self._version_floor[ctx.key] = ctx.write_timestamp
        ctx.stage = _Stage.COMMIT
        if self._trace_enabled:
            self._begin_phase(ctx, "commit", len(ctx.quorum))
        self._arm_timeout(ctx)

    def _on_ack(self, ctx: _OpContext, message: AckMessage) -> None:
        if not message.committed:
            return  # stale abort-acks from earlier attempts
        ctx.acks.add(message.src)
        if len(ctx.acks) >= len(ctx.quorum):
            self._complete_commit(ctx)

    def _continue_commit(self, ctx: _OpContext) -> None:
        """Commit-phase timeout: retransmit to laggards, skip the dead.

        A quorum member that crashed after voting yes will apply the write
        through the recovery termination protocol (and refuses reads of the
        key while in doubt), so the coordinator only waits for members the
        failure detector still reports live.
        """
        pending = [
            member for member in ctx.quorum - ctx.acks
            if self._detector(member)
        ]
        if not pending:
            self._complete_commit(ctx)
            return
        if self._suspects is not None:
            # Live-but-silent quorum members holding up the commit phase
            # are straggler evidence too.
            self._suspects.record_timeout(sorted(pending), self._clock.now)
        if self._recorder.enabled:
            self._recorder.event(
                ctx.trace_id, ctx.attempt_span or ctx.op_span,
                "commit_retransmit", self._clock.now, op=ctx.op_type,
                pending=len(pending),
            )
        sid = self.sid
        txid = ctx.txid
        self._network.broadcast([
            CommitMessage(sid, member, txid)
            for member in sorted(pending)
        ])
        self._arm_timeout(ctx)

    def _complete_commit(self, ctx: _OpContext) -> None:
        self._cancel_timeout(ctx)
        self._unregister(ctx)
        self._finish(
            ctx, success=True, value=ctx.value, timestamp=ctx.write_timestamp
        )

    def _broadcast_decision(self, ctx: _OpContext, commit: bool) -> None:
        self._decisions[ctx.txid] = commit
        sid = self.sid
        txid = ctx.txid
        message_type = CommitMessage if commit else AbortMessage
        quorum = ctx.quorum
        members = self._sorted_members.get(quorum)
        if members is None:
            members = self._sorted_members[quorum] = sorted(quorum)
        # Positional: (src, dst, txid).
        self._network.broadcast([
            message_type(sid, member, txid)
            for member in members
        ])

    def _on_decision_request(self, message: DecisionRequest) -> None:
        """2PC termination: answer a recovered participant's in-doubt query.

        Unknown transactions are answered with abort (presumed abort): if no
        commit decision was logged, the transaction cannot have committed
        anywhere.
        """
        committed = self._decisions.get(message.txid, False)
        if committed:
            self._network.send(
                CommitMessage(src=self.sid, dst=message.src, txid=message.txid)
            )
        else:
            self._network.send(
                AbortMessage(src=self.sid, dst=message.src, txid=message.txid)
            )

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Route replies to their pending operation (stale ones are ignored).

        Only a *timely* reply — one that still finds its pending operation
        in the matching stage — exonerates the sender.  A straggler's
        answer that limps in after the attempt already timed out proves
        nothing about its current usefulness, and counting it as proof of
        life would flap the failure detector between suspicion and trust
        on every straggler round-trip.
        """
        entry = self._dispatch.get(type(message))
        if entry is None:
            if type(message) is DecisionRequest:
                # A replica asking for a past decision is running
                # recovery: it is certainly alive right now.
                if self._suspects is not None and message.src >= 0:
                    self._suspects.exonerate(message.src, self._clock.now)
                self._on_decision_request(message)
                return
            raise TypeError(
                f"coordinator cannot handle {type(message).__name__}"
            )
        table, message_id, stage, handler = entry
        ctx = table.get(message_id(message))
        if ctx is None or ctx.stage is not stage:
            return
        if self._suspects is not None and message.src >= 0:
            self._suspects.exonerate(message.src, self._clock.now)
        handler(ctx, message)
