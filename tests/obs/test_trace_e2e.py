"""End-to-end trace test: span trees from a lossy, partitioned simulation.

The acceptance bar for the tracing layer: run a genuinely hostile
simulation (message loss, retries, a mid-run partition) and assert the
emitted trace is well-formed — every span started is finished, every
operation has exactly one root span, retries and attempts nest correctly,
and dropped messages show up in the counters with the same totals the
network's own statistics report.
"""

from repro.cli import main
from repro.core.builder import from_spec
from repro.obs import SpanKind, TraceRecorder, load_trace
from repro.sim.engine import SimulationConfig, build_simulation, simulate
from repro.sim.network import PartitionSpec
from repro.sim.workload import WorkloadSpec


def lossy_config(**overrides) -> SimulationConfig:
    defaults = dict(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(
            operations=120, read_fraction=0.5, keys=16,
            arrival="poisson", rate=0.3,
        ),
        drop_probability=0.08,
        timeout=5.0,
        max_attempts=4,
        seed=13,
        trace=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run_partitioned(config: SimulationConfig):
    """Run ``config`` with a partition applied mid-run and later healed."""
    scheduler, workload, monitor, network, _sites = build_simulation(config)
    scheduler.schedule(
        20.0, lambda: network.set_partition(PartitionSpec.split({0, 1, 2, 3}))
    )
    scheduler.schedule(60.0, network.heal_partition)
    workload.start()
    while workload.completed < config.workload.operations:
        assert scheduler.step(), "event queue drained early"
    return monitor, network


class TestTraceWellFormed:
    def setup_method(self):
        result = simulate(lossy_config())
        self.recorder = result.recorder
        self.outcomes = result.monitor.outcomes
        self.network_stats = result.network_stats

    def test_recorder_enabled_and_loss_actually_happened(self):
        assert isinstance(self.recorder, TraceRecorder)
        assert self.network_stats.dropped_loss > 0
        assert any(o.attempts > 1 for o in self.outcomes)

    def test_every_span_started_is_finished(self):
        assert self.recorder.open_spans() == []

    def test_one_root_span_per_operation(self):
        roots = [
            s for s in self.recorder.spans.values() if s.parent_id is None
        ]
        assert len(roots) == len(self.outcomes) == 120
        assert all(s.kind is SpanKind.OPERATION for s in roots)
        assert all(s.trace_id == s.span_id for s in roots)

    def test_parents_resolve_within_the_same_trace(self):
        by_id = self.recorder.spans
        for span in by_id.values():
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.trace_id == span.trace_id
            assert parent.start <= span.start

    def test_attempts_nest_correctly(self):
        """Attempt spans match outcome.attempts; retries are op-level events."""
        spans = list(self.recorder.spans.values())
        attempts = [s for s in spans if s.kind is SpanKind.ATTEMPT]
        assert len(attempts) == sum(o.attempts for o in self.outcomes)
        # attempt spans hang directly off the operation root
        assert all(s.parent_id == s.trace_id for s in attempts)
        # per trace, attempt numbers are 1..k with disjoint time ranges
        by_trace: dict[int, list] = {}
        for span in attempts:
            by_trace.setdefault(span.trace_id, []).append(span)
        for members in by_trace.values():
            members.sort(key=lambda s: s.start)
            assert [s.attributes["number"] for s in members] == list(
                range(1, len(members) + 1)
            )
            for earlier, later in zip(members, members[1:]):
                assert earlier.end <= later.start
        # one retry event per non-first attempt
        retries = [
            s for s in spans
            if s.kind is SpanKind.EVENT and s.name == "retry"
        ]
        assert len(retries) == sum(
            max(o.attempts - 1, 0) for o in self.outcomes
        )

    def test_phases_nest_under_attempts(self):
        spans = self.recorder.spans
        phases = [s for s in spans.values() if s.kind is SpanKind.PHASE]
        assert phases, "expected phase spans"
        assert {s.name for s in phases} >= {"phase/read", "phase/version"}
        for span in phases:
            assert spans[span.parent_id].kind is SpanKind.ATTEMPT

    def test_dropped_messages_appear_in_counters(self):
        counters = self.recorder.counters
        assert (
            sum(counters["message.sent"].values()) == self.network_stats.sent
        )
        assert (
            sum(counters["message.dropped.loss"].values())
            == self.network_stats.dropped_loss
        )
        assert (
            sum(counters["message.delivered"].values())
            == self.network_stats.delivered
        )


class TestPartitionedTrace:
    def test_partition_drops_are_counted_and_trace_stays_well_formed(self):
        config = lossy_config(
            drop_probability=0.0, seed=21,
            workload=WorkloadSpec(
                operations=150, read_fraction=0.5, keys=16,
                arrival="poisson", rate=0.4,
            ),
        )
        monitor, network = run_partitioned(config)
        recorder = monitor.recorder
        assert network.stats.dropped_partition > 0
        assert recorder.open_spans() == []
        assert (
            sum(recorder.counters["message.dropped.partition"].values())
            == network.stats.dropped_partition
        )
        roots = [s for s in recorder.spans.values() if s.parent_id is None]
        assert len(roots) == 150

    def test_unavailability_defers_show_up_as_spans(self):
        config = lossy_config(
            drop_probability=0.0, seed=5, max_attempts=2, timeout=4.0,
            workload=WorkloadSpec(
                operations=80, read_fraction=0.2, keys=8,
                arrival="poisson", rate=0.5,
            ),
        )
        monitor, _network = run_partitioned(config)
        defers = [
            s for s in monitor.recorder.spans.values()
            if s.kind is SpanKind.DEFER
        ]
        # the majority side cannot assemble write quorums while split
        assert defers, "expected unavailability deferral spans"
        assert all(s.status == "no-quorum-available" for s in defers)


class TestDisabledByDefault:
    def test_untraced_run_records_nothing(self):
        result = simulate(lossy_config(trace=False))
        assert result.recorder.enabled is False
        assert not hasattr(result.recorder, "spans")


class TestCliRoundTrip:
    def test_trace_then_report(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "trace", "1-3-5", "--operations", "40", "--drop", "0.05",
                    "--seed", "3", "--out", str(out),
                ]
            )
            == 0
        )
        assert out.exists()
        capsys.readouterr()

        assert main(["report", "--trace-file", str(out)]) == 0
        text = capsys.readouterr().out
        assert "phase/" in text
        assert "flame summary" in text

        loaded = load_trace(out)
        assert loaded.open_spans() == []
        assert len([s for s in loaded.spans.values() if s.parent_id is None]) == 40
