"""Cross-protocol agreement: bitset kernel vs. frozenset reference paths.

For every protocol in the zoo (plus n = 1 and multi-word n > 64 edge
systems) the packed kernel must reproduce the pure-Python reference
*bit-identically*: exact availability (both enumeration regimes), the
Monte-Carlo estimator under one RNG stream, bi-coterie verification,
LP membership matrices and loads, and failure-aware selection under
identical ``random.Random`` streams.
"""

import random

import numpy as np
import pytest

from repro.protocols.zoo import PROTOCOL_NAMES, quorum_system
from repro.quorums.availability import (
    _availability_by_inclusion_exclusion,
    _availability_by_universe_enumeration,
    _estimate_monte_carlo_reference,
    _normalise_probabilities,
    estimate_availability_monte_carlo,
    exact_availability,
)
from repro.quorums.base import (
    _is_cross_intersecting_sets,
    is_cross_intersecting,
    SetSystem,
)
from repro.quorums.bitset import try_pack
from repro.quorums.load import (
    _membership_matrix,
    _membership_matrix_reference,
    optimal_load,
)
from repro.quorums.selection import SelectionIndex, select_uniform_reference
from repro.quorums.system import CachedQuorumSystem, QuorumSystem

#: Small sizes keep the 2^n reference enumeration affordable in CI.
ZOO_SIZE = 9


@pytest.fixture(scope="module")
def zoo():
    systems = {}
    for name in PROTOCOL_NAMES:
        system = quorum_system(name, ZOO_SIZE)
        systems[name] = (
            system,
            tuple(system.read_quorums()),
            tuple(system.write_quorums()),
        )
    return systems


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
@pytest.mark.parametrize("p", [0.5, 0.85, 1.0])
def test_exact_availability_bit_identical(zoo, name, p):
    system, reads, writes = zoo[name]
    probabilities = _normalise_probabilities(system.universe, p)
    for quorums in (reads, writes):
        reference = _availability_by_universe_enumeration(
            quorums, probabilities
        )
        kernel = exact_availability(quorums, p, universe=system.universe)
        assert kernel == reference


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_heterogeneous_probabilities_bit_identical(zoo, name):
    system, reads, _ = zoo[name]
    p = {sid: 0.5 + 0.4 * (sid % 5) / 5 for sid in system.universe}
    probabilities = _normalise_probabilities(system.universe, p)
    reference = _availability_by_universe_enumeration(reads, probabilities)
    assert exact_availability(reads, p, universe=system.universe) == reference


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_inclusion_exclusion_bit_identical(zoo, name):
    system, _, writes = zoo[name]
    if len(writes) > 12:
        pytest.skip("2^m reference too large")
    probabilities = _normalise_probabilities(system.universe, 0.8)
    reference = _availability_by_inclusion_exclusion(writes, probabilities)
    packed = try_pack(writes, system.universe)
    from repro.quorums.bitset import availability_by_inclusion_exclusion

    assert availability_by_inclusion_exclusion(packed, probabilities) == reference


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_monte_carlo_bit_identical(zoo, name):
    system, reads, _ = zoo[name]
    probabilities = _normalise_probabilities(system.universe, 0.75)
    reference = _estimate_monte_carlo_reference(reads, probabilities, 20_000, 11)
    kernel = estimate_availability_monte_carlo(
        reads, 0.75, universe=system.universe, samples=20_000, seed=11
    )
    assert kernel == reference


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_bicoterie_check_agrees(zoo, name):
    _, reads, writes = zoo[name]
    assert is_cross_intersecting(reads, writes) is True
    assert _is_cross_intersecting_sets(reads, writes) is True
    # Break the property and check both paths notice.
    broken_reads = tuple(q for q in reads)[:1]
    lonely = frozenset({min(min(q) for q in reads)})
    disjoint_writes = tuple(
        q - lonely for q in writes if q - lonely
    )
    if disjoint_writes and not _is_cross_intersecting_sets(
        broken_reads, disjoint_writes
    ):
        assert not is_cross_intersecting(broken_reads, disjoint_writes)


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_membership_matrix_and_load_agree(zoo, name):
    system, reads, _ = zoo[name]
    set_system = SetSystem(reads, universe=system.universe)
    kernel_matrix, kernel_elements = _membership_matrix(set_system)
    ref_matrix, ref_elements = _membership_matrix_reference(set_system)
    assert kernel_elements == ref_elements
    assert (kernel_matrix == ref_matrix).all()
    assert kernel_matrix.dtype == ref_matrix.dtype
    lp = optimal_load(set_system)
    assert lp.verify()


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_selection_identical_rng_streams(zoo, name, seed):
    system, reads, writes = zoo[name]
    universe = sorted(system.universe)
    dead = set(universe[:: max(1, len(universe) // 3)])
    live = set(universe) - dead
    for quorums in (reads, writes):
        reference = QuorumSystem._select_by_scan(
            iter(quorums), live, random.Random(seed)
        )
        from repro.quorums.system import _select_by_mask

        kernel = _select_by_mask(
            iter(quorums), system.universe, live, random.Random(seed)
        )
        assert kernel == reference
    # Deterministic (rng=None) first-viable selection agrees too.
    from repro.quorums.system import _select_by_mask

    assert _select_by_mask(
        iter(reads), system.universe, live, None
    ) == QuorumSystem._select_by_scan(iter(reads), live, None)


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_selection_under_generic_scan_path_matches(zoo, name):
    """The public select_* API agrees between oracle (callable) and mask
    (collection) liveness for the generic scan systems."""
    system, reads, _ = zoo[name]
    universe = sorted(system.universe)
    live = set(universe[1:])
    oracle = live.__contains__
    for seed in (0, 5):
        by_set = QuorumSystem._select_by_scan(
            iter(reads), live, random.Random(seed)
        )
        by_oracle = QuorumSystem._select_by_scan(
            iter(reads), oracle, random.Random(seed)
        )
        assert by_set == by_oracle


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_selection_index_agrees_under_random_live_sets(zoo, name, seed):
    """The memoised SelectionIndex equals the frozenset reference pick —
    same quorum under the same RNG stream — across the zoo, for random
    live sets spanning full liveness down to total failure."""
    system, reads, writes = zoo[name]
    index = SelectionIndex(
        system, max_quorums=max(len(reads), len(writes), 1)
    )
    universe = sorted(system.universe)
    live_rng = random.Random(seed)
    rng_index = random.Random(1000 + seed)
    rng_reference = random.Random(1000 + seed)
    for op, quorums in (("read", reads), ("write", writes)):
        assert index.supported(op)
        for _ in range(30):
            keep = live_rng.uniform(0.0, 1.0)
            live = tuple(
                sid for sid in universe if live_rng.random() < keep
            )
            kernel = index.select(op, live, rng_index)
            reference = select_uniform_reference(quorums, live, rng_reference)
            assert kernel == reference
            # And the deterministic (rng=None) pick agrees too.
            assert index.select(op, live) == select_uniform_reference(
                quorums, live
            )


def test_empty_live_set_selects_nothing(zoo):
    for name in PROTOCOL_NAMES:
        system, _, _ = zoo[name]
        assert system.select_read_quorum(set()) is None
        assert system.select_write_quorum(set(), random.Random(0)) is None


def test_n_equals_one_edge_case():
    system = quorum_system("rowa", 1)
    assert system.n == 1
    assert system.select_read_quorum({0}) is not None
    assert system.select_read_quorum(set()) is None
    assert exact_availability(
        tuple(system.read_quorums()), 0.9, universe=system.universe
    ) == pytest.approx(0.9)


class _WideSystem(QuorumSystem):
    """Synthetic n > 64 system exercising multi-word masks end to end."""

    name = "wide-stripes"

    def __init__(self, n: int = 70, stripes: int = 7) -> None:
        self._n = n
        self._stripes = stripes

    @property
    def universe(self):
        return frozenset(range(self._n))

    def read_quorums(self):
        width = self._n // self._stripes
        for s in range(self._stripes):
            yield frozenset(range(s * width, (s + 1) * width))

    def write_quorums(self):
        width = self._n // self._stripes
        for offset in range(width):
            yield frozenset(
                s * width + offset for s in range(self._stripes)
            )


def test_multi_word_system_agrees_end_to_end():
    system = _WideSystem(n=70, stripes=7)
    reads = tuple(system.read_quorums())
    writes = tuple(system.write_quorums())
    assert system.n == 70
    assert is_cross_intersecting(reads, writes)
    assert _is_cross_intersecting_sets(reads, writes)

    # Selection across the 64-bit word boundary.
    live = set(range(70)) - {3}
    assert system.select_read_quorum(live) == QuorumSystem._select_by_scan(
        iter(reads), live, None
    )
    for seed in range(3):
        assert system.select_write_quorum(
            live, random.Random(seed)
        ) == QuorumSystem._select_by_scan(iter(writes), live, random.Random(seed))

    # Monte-Carlo on three words, same stream as the reference.
    probabilities = _normalise_probabilities(system.universe, 0.9)
    reference = _estimate_monte_carlo_reference(
        writes, probabilities, 10_000, 3
    )
    kernel = estimate_availability_monte_carlo(
        writes, 0.9, universe=system.universe, samples=10_000, seed=3
    )
    assert kernel == reference

    # Inclusion-exclusion regime (n = 70 > 22, m = 7 <= 20).
    exact_ie = exact_availability(reads, 0.9, universe=system.universe)
    ref_ie = _availability_by_inclusion_exclusion(reads, probabilities)
    assert exact_ie == ref_ie


def test_cached_system_packs_and_enumerates_once():
    system = CachedQuorumSystem(quorum_system("grid", 9))
    a1 = system.availability(0.9, "read")
    a2 = system.availability(0.9, "read")
    assert a1 == a2
    system.load("read")
    system.is_bicoterie()
    assert system.enumerations <= 2  # once per operation
    packed = system.packed("read")
    assert packed is system.packed("read")
    assert packed.to_frozensets() == system.materialise("read")


def test_cached_availability_keyed_by_samples_and_seed():
    system = CachedQuorumSystem(quorum_system("grid", 9))
    exact = system.availability(0.9, "read")
    also_exact = system.availability(0.9, "read", samples=10, seed=42)
    # Small system -> both go through the exact path; keys differ, value same.
    assert exact == also_exact
    assert len(system._availability_cache) == 2


def test_operation_paths_use_enumeration_cache():
    system = CachedQuorumSystem(quorum_system("grid", 9))
    from repro.quorums.availability import operation_availability
    from repro.quorums.load import optimal_operation_load

    operation_availability(system, 0.9, "read")
    optimal_operation_load(system, "read")
    operation_availability(system, 0.8, "read")
    optimal_operation_load(system, "read")
    assert system.enumerations == 1


def test_numpy_random_stream_unchanged():
    """The kernel MC draws the exact RNG stream of the reference."""
    rng = np.random.default_rng(123)
    expected = rng.random((5, 3))
    rng2 = np.random.default_rng(123)
    assert (rng2.random((5, 3)) == expected).all()
