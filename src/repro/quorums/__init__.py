"""Quorum-system theory substrate.

This subpackage implements the classical machinery from Naor & Wool,
"The load, capacity, and availability of quorum systems" (SIAM J. Comput.,
1998), that the paper builds on:

* set systems, quorum systems, coteries and bi-coteries
  (Definitions 2.1-2.3 of the paper);
* strategies and the load they induce (Definitions 2.4-2.5);
* the optimal system load as a linear program, together with the dual
  witness characterisation (Proposition 2.1);
* availability of a quorum system under independent fail-stop replicas.

Everything here is protocol-agnostic: the arbitrary tree protocol, the
tree-quorum protocol, HQC, grids and so on are all expressed as (bi-)coteries
over a finite universe of replica identifiers and analysed with these tools.

On top of the classical machinery sits the unified read/write layer of
:mod:`repro.quorums.system`: the abstract :class:`QuorumSystem` every
protocol implements and every consumer (simulator, analysis, CLI,
benchmarks) programs against, plus the memoizing
:class:`CachedQuorumSystem` wrapper.  (The *intersecting set system* of
Definition 2.1 keeps its historical name at
:class:`repro.quorums.base.QuorumSystem`; the package-level export is the
read/write interface.)
"""

from repro.quorums.availability import (
    estimate_availability_monte_carlo,
    exact_availability,
    operation_availability,
    system_availability,
)
from repro.quorums.base import (
    BiCoterie,
    Coterie,
    SetSystem,
    is_antichain,
    is_intersecting,
    minimise,
)
from repro.quorums.domination import (
    dominates,
    dominating_coterie,
    is_non_dominated,
)
from repro.quorums.liveness import LivenessOracle, as_oracle
from repro.quorums.load import (
    OptimalLoad,
    optimal_load,
    optimal_operation_load,
    verify_load_witness,
)
from repro.quorums.strategy import Strategy, induced_loads, system_load
from repro.quorums.system import CachedQuorumSystem, QuorumSystem

__all__ = [
    "BiCoterie",
    "CachedQuorumSystem",
    "Coterie",
    "LivenessOracle",
    "OptimalLoad",
    "QuorumSystem",
    "SetSystem",
    "Strategy",
    "as_oracle",
    "dominates",
    "dominating_coterie",
    "estimate_availability_monte_carlo",
    "exact_availability",
    "induced_loads",
    "is_antichain",
    "is_intersecting",
    "is_non_dominated",
    "minimise",
    "operation_availability",
    "optimal_load",
    "optimal_operation_load",
    "system_availability",
    "system_load",
    "verify_load_witness",
]
