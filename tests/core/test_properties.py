"""Property-based tests (hypothesis) on the arbitrary protocol.

These check the paper's central theorems on *random* tree shapes:

* every tree yields a bi-coterie (Section 3.2.3 induction);
* the closed-form loads equal the LP optimum (Appendix 6);
* the closed-form availabilities equal exact DNF probabilities;
* cost/load/availability identities and monotonicities.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics
from repro.core.builder import from_physical_level_sizes
from repro.core.protocol import ArbitraryProtocol
from repro.quorums.availability import exact_availability
from repro.quorums.base import is_cross_intersecting
from repro.quorums.load import optimal_load


@st.composite
def level_sizes(draw, max_levels=4, max_size=5):
    """Non-decreasing level sizes (Assumption 3.1), small enough for LPs."""
    count = draw(st.integers(min_value=1, max_value=max_levels))
    sizes = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=max_size),
                min_size=count,
                max_size=count,
            )
        )
    )
    return sizes


@given(level_sizes())
@settings(max_examples=80, deadline=None)
def test_every_tree_is_a_bicoterie(sizes):
    protocol = ArbitraryProtocol(from_physical_level_sizes(sizes))
    assert is_cross_intersecting(
        protocol.read_quorums(), protocol.write_quorums()
    )


@given(level_sizes())
@settings(max_examples=80, deadline=None)
def test_quorum_count_facts(sizes):
    protocol = ArbitraryProtocol(from_physical_level_sizes(sizes))
    assert protocol.num_read_quorums == math.prod(sizes)
    assert protocol.num_write_quorums == len(sizes)
    assert len(list(protocol.read_quorums())) == math.prod(sizes)


@given(level_sizes(max_levels=3, max_size=4))
@settings(max_examples=30, deadline=None)
def test_read_load_is_lp_optimal(sizes):
    tree = from_physical_level_sizes(sizes)
    protocol = ArbitraryProtocol(tree)
    lp = optimal_load(list(protocol.read_quorums()), universe=protocol.universe)
    assert lp.load == pytest.approx(metrics.read_load(tree), abs=1e-6)


@given(level_sizes())
@settings(max_examples=30, deadline=None)
def test_write_load_is_lp_optimal(sizes):
    tree = from_physical_level_sizes(sizes)
    protocol = ArbitraryProtocol(tree)
    lp = optimal_load(protocol.write_quorums(), universe=protocol.universe)
    assert lp.load == pytest.approx(metrics.write_load(tree), abs=1e-6)


@given(level_sizes(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_read_availability_matches_exact(sizes, p):
    tree = from_physical_level_sizes(sizes)
    protocol = ArbitraryProtocol(tree)
    exact = exact_availability(
        list(protocol.read_quorums()), p, universe=protocol.universe
    )
    assert metrics.read_availability(tree, p) == pytest.approx(exact, abs=1e-9)


@given(level_sizes(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_write_availability_matches_exact(sizes, p):
    tree = from_physical_level_sizes(sizes)
    protocol = ArbitraryProtocol(tree)
    exact = exact_availability(
        protocol.write_quorums(), p, universe=protocol.universe
    )
    assert metrics.write_availability(tree, p) == pytest.approx(exact, abs=1e-9)


@given(level_sizes())
@settings(max_examples=80, deadline=None)
def test_cost_identities(sizes):
    tree = from_physical_level_sizes(sizes)
    assert metrics.read_cost(tree) == len(sizes)
    assert metrics.write_cost_min(tree) == min(sizes)
    assert metrics.write_cost_max(tree) == max(sizes)
    assert metrics.write_cost_avg(tree) == pytest.approx(sum(sizes) / len(sizes))
    # trade-off: total read+write work is bounded by n + levels
    assert metrics.read_cost(tree) <= tree.n
    assert metrics.write_cost_avg(tree) <= tree.n


@given(level_sizes(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=80, deadline=None)
def test_expected_loads_dominate_optimal(sizes, p):
    """E[L] >= L always, with equality iff fully available (Eq. 3.2)."""
    tree = from_physical_level_sizes(sizes)
    assert (
        metrics.expected_read_load(tree, p)
        >= metrics.read_load(tree) - 1e-12
    )
    assert (
        metrics.expected_write_load(tree, p)
        >= metrics.write_load(tree) - 1e-12
    )
    assert metrics.expected_read_load(tree, p) <= 1.0 + 1e-12
    assert metrics.expected_write_load(tree, p) <= 1.0 + 1e-12


@given(level_sizes(), st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_availability_monotone_in_p(sizes, a, b):
    tree = from_physical_level_sizes(sizes)
    low, high = sorted((a, b))
    assert metrics.read_availability(tree, low) <= (
        metrics.read_availability(tree, high) + 1e-12
    )
    assert metrics.write_availability(tree, low) <= (
        metrics.write_availability(tree, high) + 1e-12
    )


@given(level_sizes())
@settings(max_examples=80, deadline=None)
def test_failure_aware_selection_consistency(sizes):
    """Selection succeeds iff the availability condition holds, per level."""
    import random

    tree = from_physical_level_sizes(sizes)
    protocol = ArbitraryProtocol(tree)
    rng = random.Random(0)
    live = {sid for sid in tree.replica_ids() if rng.random() < 0.6}
    read = protocol.select_read_quorum(live)
    write = protocol.select_write_quorum(live)
    levels = [set(tree.replica_ids_at(k)) for k in tree.physical_levels]
    read_possible = all(level & live for level in levels)
    write_possible = any(level <= live for level in levels)
    assert (read is not None) == read_possible
    assert (write is not None) == write_possible
    if read is not None:
        assert read <= live
    if write is not None:
        assert write <= live
