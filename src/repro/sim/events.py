"""Deterministic discrete-event scheduler.

A minimal event kernel: callbacks are scheduled at absolute simulation
times and executed in (time, insertion-order) order, so two events at the
same instant fire in the order they were scheduled — this makes every
simulation run bit-for-bit reproducible for a fixed RNG seed.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any


@dataclass(order=True, slots=True)
class _QueuedEvent:
    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Scheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _QueuedEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._event.time


class Scheduler:
    """Priority-queue event loop with a virtual clock."""

    def __init__(self) -> None:
        self._queue: list[_QueuedEvent] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[[], Any]
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = _QueuedEvent(
            time=self._now + delay, sequence=self._sequence, callback=callback
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self, time: float, callback: Callable[[], Any]
    ) -> EventHandle:
        """Run ``callback`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at a time or event budget.

        ``until`` is an absolute simulation time: events scheduled strictly
        later stay queued and the clock is advanced to ``until``.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                return
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
