"""Extension bench: the cost of shifting along the spectrum at runtime.

The conclusion's "no need to implement a new protocol" claim implies
reconfiguration is cheap.  This bench measures the state-transfer migration
(one atomic copy per key: read via the old tree and re-write via the new
tree under a single exclusive lock) across system sizes and key counts,
and asserts:

* migration cost in quorum accesses is exactly 1 copy op per written key
  (the copy derives its version from its own read phase, so the separate
  version-discovery round a client write pays is skipped);
* the per-key message cost is about (old read cost + new write cost);
* values survive round trips between extreme shapes.

(Availability *during* the migration — online dual-quorum epochs vs this
quiescent path — is measured separately by ``bench_reconfig.py``.)
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import analyse, mostly_read, mostly_write, recommended_tree
from repro.sim.coordinator import QuorumCoordinator
from repro.sim.engine import SimulationConfig, build_simulation
from repro.sim.reconfigure import TreeReconfigurer


class _Driver:
    def __init__(self, tree, seed=0):
        config = SimulationConfig(tree=tree, seed=seed)
        (self.scheduler, _w, self.monitor,
         self.network, self.sites) = build_simulation(config)
        self.coordinator: QuorumCoordinator = self.network.endpoint(-1)
        self.reconfigurer = TreeReconfigurer(self.coordinator)

    def call(self, op):
        box = []
        op(box.append)
        while not box:
            self.scheduler.step()
        return box[0]


def _migrate(n: int, keys: int):
    """Populate `keys` keys on recommended_tree(n), migrate to MOSTLY-READ."""
    old_tree = recommended_tree(n)
    driver = _Driver(old_tree)
    for i in range(keys):
        outcome = driver.call(
            lambda cb, i=i: driver.coordinator.write(f"k{i}", i, cb)
        )
        assert outcome.success
    messages_before = driver.network.stats.sent
    result = driver.call(
        lambda cb: driver.reconfigurer.reconfigure(
            mostly_read(n), [f"k{i}" for i in range(keys)], cb
        )
    )
    messages = driver.network.stats.sent - messages_before
    return driver, result, messages, old_tree


def test_reconfiguration_cost_table(emit, benchmark):
    rows = []
    for n in (9, 16, 36, 64):
        for keys in (4, 16):
            _driver, result, messages, old_tree = _migrate(n, keys)
            assert result.success
            rows.append([
                n, old_tree.spec()[:20], keys,
                result.operations_used, messages,
                round(messages / keys, 1), round(result.duration, 0),
            ])
    emit(
        "reconfiguration_cost",
        format_table(
            ["n", "old tree", "keys", "quorum ops", "messages",
             "msgs/key", "sim time"],
            rows,
            title="State-transfer migration to MOSTLY-READ",
        ),
    )
    benchmark(_migrate, 9, 4)


def test_one_copy_op_per_key(benchmark):
    _driver, result, _messages, _old = _migrate(16, 8)
    assert result.operations_used == 8  # one atomic copy per key
    benchmark(lambda: result)


def test_message_cost_tracks_quorum_sizes(benchmark):
    n, keys = 36, 8
    _driver, result, messages, old_tree = _migrate(n, keys)
    old = analyse(old_tree)
    # per key: read quorum round trip (2 msgs/member) + 2PC to the new
    # write quorum (n members for MOSTLY-READ: prepare/vote/commit/ack plus
    # the version round against the old tree)
    per_key = messages / keys
    lower = 2 * old.read_cost + 4 * n
    upper = lower + 2 * old.read_cost + 8
    assert lower <= per_key <= upper, (per_key, lower, upper)
    benchmark(lambda: messages)


def test_round_trip_preserves_values(benchmark):
    def run():
        n = 9
        driver = _Driver(recommended_tree(n))
        expected = {}
        for i in range(6):
            key = f"k{i}"
            driver.call(
                lambda cb, k=key, v=i * 7: driver.coordinator.write(k, v, cb)
            )
            expected[key] = i * 7
        for target in (mostly_write(n), mostly_read(n), recommended_tree(n)):
            outcome = driver.call(
                lambda cb, t=target: driver.reconfigurer.reconfigure(
                    t, list(expected), cb
                )
            )
            assert outcome.success
        for key, value in expected.items():
            result = driver.call(
                lambda cb, k=key: driver.coordinator.read(k, cb)
            )
            assert result.success and result.value == value
        return len(expected)

    assert benchmark(run) == 6
