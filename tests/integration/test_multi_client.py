"""Integration: multiple concurrent clients share locks and stay consistent."""

import pytest

from repro.core.builder import from_spec, recommended_tree
from repro.sim import BernoulliFailures, SimulationConfig, WorkloadSpec, simulate
from tests.integration.test_consistency import audit_one_copy_equivalence


class TestMultiClient:
    def test_failure_free_concurrency(self):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(
                    operations=2000, read_fraction=0.5, keys=4,
                    arrival="poisson", rate=1.0,
                ),
                clients=4,
                seed=31,
            )
        )
        assert result.monitor.reads.failed == 0
        assert result.monitor.writes.failed == 0
        assert audit_one_copy_equivalence(result) == 0

    def test_contention_on_single_key(self):
        """Every operation hits one key: the lock manager must serialise."""
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(
                    operations=600, read_fraction=0.4, keys=1,
                    arrival="poisson", rate=2.0,
                ),
                clients=8,
                seed=32,
            )
        )
        assert result.monitor.writes.failed == 0
        assert audit_one_copy_equivalence(result) == 0
        versions = [
            outcome.timestamp.version
            for outcome in result.monitor.outcomes
            if outcome.op_type == "write" and outcome.success
        ]
        # strictly increasing versions across DIFFERENT writers
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_multi_client_with_failures(self):
        result = simulate(
            SimulationConfig(
                tree=recommended_tree(30),
                workload=WorkloadSpec(
                    operations=2000, read_fraction=0.5, keys=8,
                    arrival="poisson", rate=0.5,
                ),
                failures=BernoulliFailures(p=0.8, seed=33, resample_every=60.0),
                clients=3,
                max_attempts=3,
                timeout=8.0,
                seed=33,
            )
        )
        assert audit_one_copy_equivalence(result) == 0

    def test_version_floor_shared_across_clients(self):
        """Writer A's version must be visible to writer B even when B's
        version quorum cannot reach A's write level."""
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(
                    operations=1000, read_fraction=0.0, keys=2,
                    arrival="poisson", rate=0.5,
                ),
                failures=BernoulliFailures(p=0.7, seed=34, resample_every=50.0),
                clients=4,
                max_attempts=2,
                timeout=8.0,
                seed=34,
            )
        )
        per_key_versions: dict = {}
        for outcome in result.monitor.outcomes:
            if not outcome.success:
                continue
            versions = per_key_versions.setdefault(outcome.key, [])
            versions.append(outcome.timestamp.version)
        for versions in per_key_versions.values():
            assert versions == sorted(versions)
            assert len(set(versions)) == len(versions)

    def test_clients_validation(self):
        with pytest.raises(ValueError, match="at least one client"):
            simulate(
                SimulationConfig(
                    tree=from_spec("1-3-5"),
                    workload=WorkloadSpec(operations=1),
                    clients=0,
                )
            )

    def test_deterministic_with_clients(self):
        def run():
            return simulate(
                SimulationConfig(
                    tree=from_spec("1-3-5"),
                    workload=WorkloadSpec(
                        operations=300, arrival="poisson", rate=1.0
                    ),
                    clients=3,
                    seed=35,
                )
            ).summary()

        assert run() == run()
