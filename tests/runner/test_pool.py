"""Pool mechanics: seed derivation, ordered dispatch, progress, validation."""

import random

import pytest

from repro.runner.pool import derive_seeds, run_tasks


def _square(x: int) -> int:
    """Module-level so the process pool can pickle it."""
    return x * x


def test_derive_seeds_deterministic_and_64bit():
    seeds = derive_seeds(42, 8)
    assert seeds == derive_seeds(42, 8)
    assert len(seeds) == 8
    assert len(set(seeds)) == 8
    assert all(0 <= seed < 2**64 for seed in seeds)
    # The k-th child seed never depends on how many seeds are drawn.
    assert derive_seeds(42, 3) == seeds[:3]


def test_derive_seeds_match_master_stream():
    rng = random.Random(7)
    assert derive_seeds(7, 4) == [rng.getrandbits(64) for _ in range(4)]


def test_derive_seeds_differ_across_masters():
    assert derive_seeds(0, 4) != derive_seeds(1, 4)


def test_run_tasks_inline_matches_pool_order():
    items = list(range(12))
    expected = [_square(x) for x in items]
    assert run_tasks(_square, items, jobs=1) == expected
    assert run_tasks(_square, items, jobs=2) == expected
    assert run_tasks(_square, items, jobs=2, chunksize=4) == expected


def test_run_tasks_empty_and_single_item():
    assert run_tasks(_square, [], jobs=4) == []
    assert run_tasks(_square, [3], jobs=4) == [9]


@pytest.mark.parametrize("jobs", [1, 2])
def test_run_tasks_progress_ticks(jobs):
    ticks = []
    run_tasks(_square, list(range(5)), jobs=jobs, progress=lambda d, t: ticks.append((d, t)))
    assert ticks == [(done, 5) for done in range(1, 6)]


def test_run_tasks_validates_arguments():
    with pytest.raises(ValueError):
        run_tasks(_square, [1], jobs=0)
    with pytest.raises(ValueError):
        run_tasks(_square, [1], jobs=2, chunksize=0)
