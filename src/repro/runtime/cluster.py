"""Local cluster orchestration — the ``repro cluster`` entry point.

Spawns N real site processes (each running ``repro serve`` on an
ephemeral localhost port), dials them with a :class:`TcpTransport`, and
drives the *same* :class:`~repro.sim.coordinator.QuorumCoordinator` the
simulator uses — wall-clock timeouts, real retry backoff, real sockets.
On top of the coordinator sit:

* an awaitable :meth:`LocalCluster.get`/:meth:`LocalCluster.put` pair
  (operation completion callbacks resolved into futures);
* a chaos hook (:meth:`LocalCluster.kill_site`) that injects a crash by
  sending the site process SIGKILL — no cooperation, no cleanup, the
  transport discovers the death through the dropped connection;
* a closed-loop traffic runner (:func:`run_traffic`) measuring
  wall-clock ops/sec and latency percentiles, with an optional mid-run
  kill; the CI runtime job and ``benchmarks/bench_runtime.py`` are both
  thin wrappers around it;
* a KV front-end (:class:`KVFrontend`) serving the get/put API to
  external clients as ``get``/``put``/``result`` control frames.

The tree spec (``"1-3-5"``-style, see :func:`repro.core.builder.from_spec`)
decides replica count and quorum structure exactly as in the simulator.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import random
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import repro
from repro.core.builder import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.runtime.codec import read_frame, write_frame
from repro.runtime.transport import TcpTransport
from repro.sim.coordinator import OperationOutcome, QuorumCoordinator
from repro.sim.locks import LockManager

_ANNOUNCE_PREFIX = "REPRO-SITE "


def _site_env() -> dict[str, str]:
    """Child environment with this checkout's ``src`` on PYTHONPATH."""
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


class SiteProcess:
    """One replica site running as a real child process."""

    def __init__(self, sid: int, host: str = "127.0.0.1") -> None:
        self.sid = sid
        self.host = host
        self.port: int | None = None
        self.proc: subprocess.Popen | None = None

    async def spawn(self, timeout: float = 10.0) -> None:
        """Start ``repro serve`` and scrape the announced ephemeral port."""
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--sid", str(self.sid), "--host", self.host, "--port", "0",
            ],
            env=_site_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        loop = asyncio.get_running_loop()
        assert self.proc.stdout is not None
        while True:
            line = await asyncio.wait_for(
                loop.run_in_executor(None, self.proc.stdout.readline), timeout
            )
            if not line:
                raise RuntimeError(
                    f"site {self.sid} exited before announcing its port "
                    f"(rc={self.proc.poll()})"
                )
            if line.startswith(_ANNOUNCE_PREFIX):
                fields = dict(
                    part.split("=", 1)
                    for part in line[len(_ANNOUNCE_PREFIX):].split()
                )
                self.port = int(fields["port"])
                return

    @property
    def alive(self) -> bool:
        """The process exists and has not exited."""
        return self.proc is not None and self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL — the chaos injection: no warning, no cleanup."""
        if self.proc is not None:
            self.proc.kill()

    async def stop(self, grace: float = 5.0) -> int | None:
        """Graceful shutdown: SIGTERM, then SIGKILL past ``grace`` seconds."""
        if self.proc is None:
            return None
        if self.proc.poll() is None:
            self.proc.terminate()
            loop = asyncio.get_running_loop()
            try:
                await asyncio.wait_for(
                    loop.run_in_executor(None, self.proc.wait), grace
                )
            except asyncio.TimeoutError:
                self.proc.kill()
                await loop.run_in_executor(None, self.proc.wait)
        if self.proc.stdout is not None:
            self.proc.stdout.close()
        return self.proc.returncode


class LocalCluster:
    """N local site processes + one in-process coordinator front-end."""

    def __init__(
        self,
        spec: str = "1-3",
        host: str = "127.0.0.1",
        timeout: float = 1.0,
        max_attempts: int = 4,
        seed: int = 0,
        service_time: float = 0.0,
    ) -> None:
        self.spec = spec
        self.tree = from_spec(spec)
        self.system = ArbitraryProtocol(self.tree)
        self.n = self.tree.n
        self.host = host
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.seed = seed
        self.service_time = service_time
        self.sites: list[SiteProcess] = []
        self.transport: TcpTransport | None = None
        self.coordinator: QuorumCoordinator | None = None
        self.locks: LockManager | None = None

    async def start(self) -> None:
        """Spawn every site, dial them all, wire the coordinator."""
        self.transport = TcpTransport(local_sid=-1)
        self.sites = [SiteProcess(sid, self.host) for sid in range(self.n)]
        try:
            await asyncio.gather(*(site.spawn() for site in self.sites))
            await asyncio.gather(
                *(
                    self.transport.connect(site.sid, site.host, site.port)
                    for site in self.sites
                )
            )
        except BaseException:
            await self.stop()
            raise
        self.locks = LockManager(self.transport.clock)
        self.coordinator = QuorumCoordinator(
            sid=-1,
            network=self.transport,
            system=self.system,
            locks=self.locks,
            detector=self.transport.is_live,
            rng=random.Random(self.seed),
            timeout=self.timeout,
            max_attempts=self.max_attempts,
            writer_id=self.n,
            liveness_epoch=self.transport.current_liveness_epoch,
        )

    async def stop(self) -> list[int | None]:
        """Close the transport and terminate every site; returns rcs."""
        if self.transport is not None:
            await self.transport.close()
        return list(
            await asyncio.gather(*(site.stop() for site in self.sites))
        )

    def orphans(self) -> list[int]:
        """SIDs of site processes still running (must be empty after stop)."""
        return [site.sid for site in self.sites if site.alive]

    # -- chaos ---------------------------------------------------------

    def kill_site(self, sid: int) -> None:
        """SIGKILL one site process (the kill-9 chaos injection)."""
        self.sites[sid].kill()

    # -- operations ----------------------------------------------------

    def _submit(
        self, op: str, key: Any, value: Any
    ) -> "asyncio.Future[OperationOutcome]":
        assert self.coordinator is not None, "cluster not started"
        future: asyncio.Future[OperationOutcome] = (
            asyncio.get_running_loop().create_future()
        )

        def on_done(outcome: OperationOutcome) -> None:
            if not future.done():
                future.set_result(outcome)

        if op == "read":
            self.coordinator.read(key, on_done)
        else:
            self.coordinator.write(key, value, on_done)
        return future

    async def get(self, key: Any) -> OperationOutcome:
        """Quorum read of ``key`` over the live cluster."""
        return await self._submit("read", key, None)

    async def put(self, key: Any, value: Any) -> OperationOutcome:
        """Quorum write ``key := value`` (2PC) over the live cluster."""
        return await self._submit("write", key, value)


# ---------------------------------------------------------------------
# closed-loop traffic (smoke runs, chaos demo, bench)
# ---------------------------------------------------------------------


@dataclass
class TrafficReport:
    """What one closed-loop traffic run observed (wall-clock seconds)."""

    operations: int = 0
    reads: int = 0
    writes: int = 0
    read_failures: int = 0
    write_failures: int = 0
    elapsed: float = 0.0
    read_latencies: list[float] = field(default_factory=list)
    write_latencies: list[float] = field(default_factory=list)
    killed_site: int | None = None
    kill_after_ops: int | None = None
    post_kill_reads: int = 0
    post_kill_read_failures: int = 0

    @property
    def ops_per_sec(self) -> float:
        """Completed operations per wall-clock second."""
        return self.operations / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> dict[str, Any]:
        """JSON-ready headline numbers."""
        return {
            "operations": self.operations,
            "reads": self.reads,
            "writes": self.writes,
            "read_failures": self.read_failures,
            "write_failures": self.write_failures,
            "elapsed_sec": round(self.elapsed, 6),
            "ops_per_sec": round(self.ops_per_sec, 3),
            "read_p50_ms": round(percentile(self.read_latencies, 50) * 1e3, 4),
            "read_p99_ms": round(percentile(self.read_latencies, 99) * 1e3, 4),
            "write_p50_ms": round(
                percentile(self.write_latencies, 50) * 1e3, 4
            ),
            "write_p99_ms": round(
                percentile(self.write_latencies, 99) * 1e3, 4
            ),
            "killed_site": self.killed_site,
            "kill_after_ops": self.kill_after_ops,
            "post_kill_reads": self.post_kill_reads,
            "post_kill_read_failures": self.post_kill_read_failures,
        }


def percentile(samples: list[float], pct: float) -> float:
    """Nearest-rank percentile (0.0 on an empty sample set)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(pct / 100 * len(ordered)) - 1))
    return ordered[rank]


async def run_traffic(
    cluster: LocalCluster,
    operations: int = 100,
    read_fraction: float = 0.8,
    keys: int = 8,
    seed: int = 0,
    kill_after_ops: int | None = None,
    kill_site: int | None = None,
) -> TrafficReport:
    """Closed-loop get/put traffic against a started cluster.

    Writes seed each key before the measured loop so reads observe real
    data.  With ``kill_after_ops`` set, site ``kill_site`` (default: the
    highest SID, a deepest-level leaf — quorum-critical for writes on
    some specs but never for reads) is SIGKILLed after that many
    measured operations; reads completed after the kill are tallied
    separately so callers can assert read availability survived.
    """
    rng = random.Random(seed)
    report = TrafficReport(
        killed_site=None,
        kill_after_ops=kill_after_ops,
    )
    for key_index in range(keys):  # unmeasured warmup: seed every key
        await cluster.put(f"k{key_index}", f"seed-{key_index}")
    clock = cluster.transport.clock
    started = clock.now
    killed = False
    for op_index in range(operations):
        if (
            kill_after_ops is not None
            and not killed
            and op_index >= kill_after_ops
        ):
            victim = kill_site if kill_site is not None else cluster.n - 1
            cluster.kill_site(victim)
            report.killed_site = victim
            killed = True
        key = f"k{rng.randrange(keys)}"
        op_start = clock.now
        if rng.random() < read_fraction:
            outcome = await cluster.get(key)
            report.reads += 1
            report.read_latencies.append(clock.now - op_start)
            if not outcome.success:
                report.read_failures += 1
            if killed:
                report.post_kill_reads += 1
                if not outcome.success:
                    report.post_kill_read_failures += 1
        else:
            outcome = await cluster.put(key, f"v{op_index}")
            report.writes += 1
            report.write_latencies.append(clock.now - op_start)
            if not outcome.success:
                report.write_failures += 1
        report.operations += 1
    report.elapsed = clock.now - started
    return report


# ---------------------------------------------------------------------
# KV front-end (external clients)
# ---------------------------------------------------------------------


class KVFrontend:
    """Serve the cluster's get/put API over TCP control frames.

    Requests: ``{"kind": "get", "id": n, "key": k}`` and
    ``{"kind": "put", "id": n, "key": k, "value": v}``; each gets one
    ``{"kind": "result", "id": n, "ok": bool, "value": ..., "version":
    ...}`` reply.  ``{"kind": "stop"}`` asks the front-end to shut the
    cluster down (the kill-9 demo's clean exit).
    """

    def __init__(
        self, cluster: LocalCluster, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._cluster = cluster
        self._host = host
        self._port = port
        self._server: asyncio.base_events.Server | None = None
        self.stop_requested = asyncio.Event()

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when ``port=0``)."""
        return self._port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                kind = frame.get("kind")
                if kind == "stop":
                    write_frame(writer, {"kind": "result", "ok": True})
                    await writer.drain()
                    self.stop_requested.set()
                    return
                if kind not in ("get", "put"):
                    write_frame(
                        writer,
                        {"kind": "result", "ok": False,
                         "error": f"unknown kind {kind!r}"},
                    )
                    continue
                if kind == "get":
                    outcome = await self._cluster.get(frame.get("key"))
                else:
                    outcome = await self._cluster.put(
                        frame.get("key"), frame.get("value")
                    )
                write_frame(
                    writer,
                    {
                        "kind": "result",
                        "id": frame.get("id"),
                        "ok": outcome.success,
                        "value": outcome.value,
                        "version": (
                            outcome.timestamp.version
                            if outcome.timestamp is not None
                            else None
                        ),
                    },
                )
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            return
        finally:
            writer.close()


async def kv_request(
    host: str, port: int, frames: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Tiny KV client: send ``frames``, return one result per request."""
    reader, writer = await asyncio.open_connection(host, port)
    results: list[dict[str, Any]] = []
    try:
        for frame in frames:
            write_frame(writer, frame)
        await writer.drain()
        for _ in frames:
            result = await read_frame(reader)
            if result is None:
                break
            results.append(result)
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError):
            await writer.wait_closed()
    return results
