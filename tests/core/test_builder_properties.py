"""Property-based tests for tree constructors and the tuning advisor."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics
from repro.core.builder import (
    from_spec,
    mostly_read,
    mostly_write,
    recommended_tree,
    sqrt_levels,
)
from repro.core.tree import ArbitraryTree
from repro.core.tuning import recommend


@given(st.integers(min_value=2, max_value=400))
@settings(max_examples=100, deadline=None)
def test_recommended_tree_invariants(n):
    tree = recommended_tree(n)
    assert tree.n == n
    assert tree.satisfies_assumption()
    assert tree.logical_levels in ((0,), ())
    if n > 64:
        assert tree.num_physical_levels == math.isqrt(n)
        assert tree.d == 4


@given(st.integers(min_value=1, max_value=300))
@settings(max_examples=100, deadline=None)
def test_sqrt_levels_invariants(n):
    tree = sqrt_levels(n)
    assert tree.n == n
    assert tree.satisfies_assumption()
    sizes = tree.physical_level_sizes
    assert max(sizes) - min(sizes) <= 1  # near-even split


@given(st.integers(min_value=2, max_value=300))
@settings(max_examples=100, deadline=None)
def test_mostly_write_invariants(n):
    tree = mostly_write(n)
    assert tree.n == n
    assert tree.num_physical_levels == n // 2
    if n >= 4:
        assert tree.d == 2
        assert metrics.read_load(tree) == 0.5
    else:
        # n = 2 or 3: a single level holding everything (degenerate case)
        assert tree.num_physical_levels == 1


@given(st.integers(min_value=1, max_value=300))
@settings(max_examples=60, deadline=None)
def test_mostly_read_is_rowa_shaped(n):
    tree = mostly_read(n)
    assert metrics.read_cost(tree) == 1
    assert metrics.write_cost_avg(tree) == n
    assert metrics.write_load(tree) == 1.0


@given(
    st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6)
)
@settings(max_examples=100, deadline=None)
def test_spec_round_trip(sizes):
    sizes = sorted(sizes)
    spec = "1-" + "-".join(str(s) for s in sizes)
    tree = from_spec(spec)
    assert from_spec(tree.spec()).spec() == tree.spec()
    assert tree.physical_level_sizes == tuple(sizes)


@given(
    st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6)
)
@settings(max_examples=100, deadline=None)
def test_dict_round_trip(sizes):
    sizes = sorted(sizes)
    tree = from_spec("1-" + "-".join(str(s) for s in sizes))
    rebuilt = ArbitraryTree.from_dict(tree.to_dict())
    assert rebuilt.spec() == tree.spec()


@given(
    n=st.integers(min_value=4, max_value=40),
    p=st.floats(min_value=0.6, max_value=0.99),
    f=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_tuning_result_valid_and_bounded(n, p, f):
    result = recommend(n, p=p, read_fraction=f)
    tree = result.tree
    assert tree.n == n
    assert tree.satisfies_assumption()
    assert 0.0 < result.best.score <= 1.0 + 1e-9
    # the advisor can never be worse than the pure extremes it includes
    for extreme in (mostly_read(n), mostly_write(n)):
        score = (
            f * metrics.expected_read_load(extreme, p)
            + (1 - f) * metrics.expected_write_load(extreme, p)
        )
        assert result.best.score <= score + 1e-9


@given(
    n=st.integers(min_value=6, max_value=30),
    p=st.floats(min_value=0.7, max_value=0.99),
)
@settings(max_examples=25, deadline=None)
def test_tuning_levels_monotone_in_read_fraction(n, p):
    levels = [
        recommend(n, p=p, read_fraction=f).tree.num_physical_levels
        for f in (0.0, 0.5, 1.0)
    ]
    assert levels[0] >= levels[1] >= levels[2]
