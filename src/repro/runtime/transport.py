"""Coordinator-side TCP transport: the seam over real sockets.

One :class:`TcpTransport` lives in the coordinator front-end process.
It dials every site process, keeps one connection per site SID, and
implements the transport seam the protocol layer speaks:

* ``send``/``broadcast`` encode protocol messages as length-prefixed
  JSON frames onto the destination's connection — messages to a dead or
  never-connected peer drop silently, exactly the loss the quorum
  timeout/retry machinery exists to absorb;
* inbound frames are decoded and handed to the registered local endpoint
  (the coordinator) — delivery order per peer is the socket's FIFO;
* connection loss marks the peer dead, bumps the liveness epoch (so
  cached live-sets and leases invalidate) and feeds :meth:`is_live`,
  which is the runtime's liveness oracle: a SIGKILLed site's socket
  drops within the OS's RST/FIN handling and quorum selection routes
  around it on the next attempt.

Reconnection is explicit (:meth:`connect` again) — policy belongs to the
operator/cluster layer, not the transport.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass
from typing import Any

from repro.runtime.clock import AsyncClock
from repro.runtime.codec import (
    CodecError,
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.runtime.interfaces import Endpoint


@dataclass
class TransportStats:
    """Delivery counters (mirrors the simulator's ``NetworkStats`` shape)."""

    sent: int = 0
    delivered: int = 0
    dropped_dead: int = 0
    disconnects: int = 0


class TcpTransport:
    """The transport seam over one-connection-per-site TCP."""

    def __init__(self, local_sid: int = -1) -> None:
        self._clock = AsyncClock(asyncio.get_event_loop())
        #: SID announced in the ``hello`` handshake; sites route replies
        #: addressed to it back on this transport's connection.
        self.local_sid = local_sid
        self._endpoints: dict[int, Endpoint] = {}
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._reader_tasks: dict[int, asyncio.Task] = {}
        self._liveness_epoch = 0
        self.stats = TransportStats()

    @property
    def clock(self) -> AsyncClock:
        """The wall clock protocol timeouts run on."""
        return self._clock

    # -- registry ------------------------------------------------------

    def register(self, sid: int, endpoint: Endpoint) -> None:
        """Attach a local endpoint (the coordinator) under ``sid``."""
        if sid in self._endpoints:
            raise ValueError(f"SID {sid} already registered")
        self._endpoints[sid] = endpoint

    def endpoint(self, sid: int) -> Endpoint:
        """Look up a registered local endpoint."""
        return self._endpoints[sid]

    # -- liveness ------------------------------------------------------

    def is_live(self, sid: int) -> bool:
        """The runtime liveness oracle: a usable connection exists."""
        writer = self._writers.get(sid)
        return writer is not None and not writer.is_closing()

    def live_sids(self) -> list[int]:
        """Every currently connected site SID, sorted."""
        return sorted(sid for sid in self._writers if self.is_live(sid))

    @property
    def liveness_epoch(self) -> int:
        """Counter bumped on every connect/disconnect."""
        return self._liveness_epoch

    def current_liveness_epoch(self) -> int:
        """Bound-method accessor for :attr:`liveness_epoch`."""
        return self._liveness_epoch

    def bump_liveness_epoch(self) -> None:
        """Invalidate cached live-set views."""
        self._liveness_epoch += 1

    # -- connections ---------------------------------------------------

    async def connect(
        self,
        sid: int,
        host: str,
        port: int,
        deadline: float = 5.0,
        retry_delay: float = 0.05,
    ) -> None:
        """Dial site ``sid``, retrying until ``deadline`` wall seconds.

        Retries absorb the race where the site process has announced its
        port but the accept loop is not up yet.
        """
        start = self._clock.now
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                break
            except (ConnectionError, OSError):
                if self._clock.now - start > deadline:
                    raise
                await asyncio.sleep(retry_delay)
        write_frame(writer, {"kind": "hello", "sid": self.local_sid})
        hello = await read_frame(reader)
        if hello is None or hello.get("kind") != "hello":
            writer.close()
            raise ConnectionError(f"site {sid} did not complete handshake")
        if hello.get("sid") != sid:
            writer.close()
            raise ConnectionError(
                f"dialed site {sid} but peer announced {hello.get('sid')}"
            )
        old = self._writers.pop(sid, None)
        if old is not None:
            old.close()
        self._writers[sid] = writer
        self._reader_tasks[sid] = asyncio.get_running_loop().create_task(
            self._pump(sid, reader, writer)
        )
        self.bump_liveness_epoch()

    async def _pump(
        self,
        sid: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Per-connection inbound loop: frame -> message -> endpoint."""
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                if frame.get("kind") != "msg":
                    continue
                message = decode_message(frame)
                endpoint = self._endpoints.get(message.dst)
                if endpoint is None or not endpoint.up:
                    continue
                self.stats.delivered += 1
                endpoint.receive(message)
        except (ConnectionError, CodecError, asyncio.CancelledError):
            return
        finally:
            if self._writers.get(sid) is writer:
                del self._writers[sid]
                self.stats.disconnects += 1
                self.bump_liveness_epoch()
            writer.close()

    async def close(self) -> None:
        """Drop every connection and cancel the inbound pumps."""
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()
        for task in list(self._reader_tasks.values()):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._reader_tasks.clear()

    # -- delivery ------------------------------------------------------

    def send(self, message: Any) -> None:
        """Frame and queue one protocol message (drops if the peer is gone)."""
        self.stats.sent += 1
        writer = self._writers.get(message.dst)
        if writer is None or writer.is_closing():
            self.stats.dropped_dead += 1
            return
        try:
            write_frame(writer, encode_message(message))
        except (ConnectionError, CodecError):
            self.stats.dropped_dead += 1

    def broadcast(self, messages: list) -> None:
        """Send a batch in order (per-destination FIFO is the socket's)."""
        for message in messages:
            self.send(message)
