"""Ablation: why Algorithm 1 pins the first seven levels at FOUR replicas.

Algorithm 1 hard-codes 4-replica head levels.  The head levels control the
asymptotic availabilities (Section 3.3):

    lim RD_avail = (1 - (1-p)^s)^L,   lim WR_avail = 1 - (1 - p^s)^L

for head size ``s`` and head length ``L``, while the read load is ``1/s``.
This bench sweeps ``s`` (and ``L``) and asserts the genuine tension that
makes (s=4, L=7) a sweet spot:

* growing s improves read availability and read load (1/s) but *hurts*
  write availability — a level is a write quorum only when all ``s``
  members are live, and ``p^s`` shrinks with ``s``;
* s = 2 gives read load 0.5 and poor read availability; s = 8 drops write
  availability below 0.75 at p = 0.8;
* the per-replica read-load gain has diminishing returns past s = 4;
* at s = 4 both availabilities clear 0.97 for p >= 0.85 — the paper's
  "stable once p > 0.8" regime.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.builder import _spread, from_physical_level_sizes
from repro.core.metrics import (
    analyse,
    read_availability,
    write_availability,
)

N = 400
HEAD_SIZES = (2, 3, 4, 5, 6, 8)
HEAD_LENGTHS = (3, 5, 7, 10)
P_VALUES = (0.7, 0.8, 0.85, 0.9)


def _head_tree(n: int, head_size: int, head_length: int = 7):
    """An Algorithm-1-style tree with a configurable head."""
    levels = max(head_length + 1, int(n**0.5))
    head = [head_size] * head_length
    tail_total = n - head_size * head_length
    tail = _spread(tail_total, levels - head_length, minimum=head_size)
    return from_physical_level_sizes(head + tail)


@pytest.fixture(scope="module")
def head_sweep():
    return {
        (s, p): analyse(_head_tree(N, s), p=p)
        for s in HEAD_SIZES
        for p in P_VALUES
    }


def test_head_size_table(head_sweep, emit, benchmark):
    benchmark(_head_tree, N, 4)
    rows = []
    for s in HEAD_SIZES:
        m = head_sweep[(s, 0.85)]
        rows.append([
            s, round(m.read_load, 4), m.write_cost_min,
            round(m.read_availability, 4), round(m.write_availability, 4),
        ])
    emit(
        "ablation_head_size",
        format_table(
            ["head size s", "read load 1/s", "min write cost",
             "RD avail", "WR avail"],
            rows,
            title=f"Head-size ablation at n={N}, p=0.85 (paper uses s=4)",
        ),
    )


def test_availability_tension_in_head_size(head_sweep, benchmark):
    """Reads get better with s, writes get worse: the core tension."""
    benchmark(lambda: None)
    for p in P_VALUES:
        for a, b in zip(HEAD_SIZES, HEAD_SIZES[1:]):
            assert (
                head_sweep[(b, p)].read_availability
                >= head_sweep[(a, p)].read_availability - 1e-12
            )
            assert (
                head_sweep[(b, p)].write_availability
                <= head_sweep[(a, p)].write_availability + 1e-12
            )


def test_read_load_gain_flattens(head_sweep, benchmark):
    benchmark(lambda: None)
    loads = [head_sweep[(s, 0.85)].read_load for s in HEAD_SIZES]
    gains = [
        (loads[i] - loads[i + 1]) / (HEAD_SIZES[i + 1] - HEAD_SIZES[i])
        for i in range(len(loads) - 1)
    ]
    assert gains == sorted(gains, reverse=True)  # diminishing returns per s


def test_s4_is_stable_at_p_085(head_sweep, benchmark):
    benchmark(lambda: None)
    m = head_sweep[(4, 0.85)]
    assert m.read_availability > 0.97
    assert m.write_availability > 0.97
    assert m.read_load == pytest.approx(0.25)
    # neither neighbour dominates: s=3 loses on read load AND read
    # availability; s=5 loses on write availability
    three = head_sweep[(3, 0.85)]
    five = head_sweep[(5, 0.85)]
    assert three.read_load > m.read_load
    assert three.read_availability < m.read_availability
    assert five.write_availability < m.write_availability


def test_s2_is_markedly_worse(head_sweep, benchmark):
    benchmark(lambda: None)
    two = head_sweep[(2, 0.8)]
    four = head_sweep[(4, 0.8)]
    assert two.read_load == pytest.approx(0.5)
    assert two.read_availability < four.read_availability - 0.1


def test_head_length_trade_off(emit, benchmark):
    """Longer heads hurt read availability ((.)^L) but help write
    availability (more fallback levels)."""
    benchmark(lambda: None)
    rows = []
    p = 0.8
    for length in HEAD_LENGTHS:
        tree = _head_tree(N, 4, head_length=length)
        rows.append([
            length,
            round(read_availability(tree, p), 4),
            round(write_availability(tree, p), 4),
        ])
    emit(
        "ablation_head_length",
        format_table(
            ["head length L", "RD avail", "WR avail"],
            rows,
            title=f"Head-length ablation (s=4, n={N}, p={p})",
        ),
    )
    read_values = [row[1] for row in rows]
    write_values = [row[2] for row in rows]
    assert read_values == sorted(read_values, reverse=True)
    assert write_values == sorted(write_values)
