"""Unit tests for the chaos scenario library."""

import random

import pytest

from repro.fault.scenarios import (
    CHAOS_SCENARIOS,
    FlakyLinkBursts,
    MassCrash,
    PartitionFlapping,
    RollingRestarts,
    StragglerSites,
    chaos_injector,
)
from repro.sim.events import Scheduler
from repro.sim.failures import CompositeFailures
from repro.sim.network import Network, PartitionSpec
from repro.sim.site import Site


@pytest.fixture
def rig():
    scheduler = Scheduler()
    network = Network(scheduler, random.Random(0))
    sites = [Site(sid, network) for sid in range(9)]
    return scheduler, network, sites


class TestFlakyLinkBursts:
    def test_bursts_degrade_then_settle(self, rig):
        scheduler, network, sites = rig
        FlakyLinkBursts(
            drop=0.8, count=2, period=100.0, duration=20.0, start=10.0,
            horizon=200.0, seed=1,
        ).install(scheduler, sites, network)
        scheduler.run(until=15.0)
        degraded = [
            sid for sid in range(9)
            if network._effective_drop(sid, sid) > 0.0
        ]
        assert len(degraded) == 2
        scheduler.run(until=35.0)
        assert all(
            network._effective_drop(sid, sid) == 0.0 for sid in range(9)
        )

    def test_same_seed_same_burst_schedule(self, rig):
        scheduler, network, sites = rig

        def chosen(seed):
            sch = Scheduler()
            net = Network(sch, random.Random(0))
            sts = [Site(sid, net) for sid in range(9)]
            FlakyLinkBursts(seed=seed, horizon=300.0).install(sch, sts, net)
            sch.run(until=15.0)
            return tuple(
                sid for sid in range(9) if net._effective_drop(sid, sid) > 0
            )

        assert chosen(5) == chosen(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlakyLinkBursts(drop=0.0)
        with pytest.raises(ValueError):
            FlakyLinkBursts(duration=50.0, period=20.0)


class TestRollingRestarts:
    def test_everyone_takes_a_turn_and_recovers(self, rig):
        scheduler, network, sites = rig
        RollingRestarts(period=10.0, downtime=4.0, start=5.0).install(
            scheduler, sites, network
        )
        scheduler.run()
        assert all(site.stats.crashes == 1 for site in sites)
        assert all(site.is_up for site in sites)

    def test_at_most_one_site_down_at_once(self, rig):
        scheduler, network, sites = rig
        RollingRestarts(period=10.0, downtime=4.0, start=5.0).install(
            scheduler, sites, network
        )
        max_down = 0
        while scheduler.step():
            max_down = max(
                max_down, sum(not site.is_up for site in sites)
            )
        assert max_down == 1


class TestStragglerSites:
    def test_latency_inflated_then_restored(self, rig):
        scheduler, network, sites = rig
        scenario = StragglerSites(
            factor=10.0, count=3, start=5.0, duration=20.0, seed=2
        )
        scenario.install(scheduler, sites, network)
        scheduler.run(until=6.0)
        assert len(scenario.chosen) == 3
        for sid in scenario.chosen:
            assert network._latency_factor(sid, -1) == 10.0
        scheduler.run(until=30.0)
        for sid in scenario.chosen:
            assert network._latency_factor(sid, -1) == 1.0

    def test_explicit_sids_pin_the_stragglers(self, rig):
        scheduler, network, sites = rig
        scenario = StragglerSites(sids=(2, 6))
        scenario.install(scheduler, sites, network)
        scheduler.run(until=1.0)
        assert scenario.chosen == (2, 6)
        assert network._latency_factor(2, -1) == 20.0

    def test_stragglers_stay_up(self, rig):
        scheduler, network, sites = rig
        scenario = StragglerSites(seed=0)
        scenario.install(scheduler, sites, network)
        scheduler.run(until=100.0)
        assert all(site.is_up for site in sites)


class TestPartitionFlapping:
    def test_flaps_install_and_heal(self, rig):
        scheduler, network, sites = rig
        spec = PartitionSpec.split({0, 1, 2, 3}, {4, 5, 6, 7, 8})
        PartitionFlapping(
            spec, period=40.0, duty=0.5, start=10.0, end=100.0
        ).install(scheduler, sites, network)
        scheduler.run(until=15.0)
        assert network.partitioned
        scheduler.run(until=35.0)
        assert not network.partitioned
        scheduler.run(until=55.0)
        assert network.partitioned
        scheduler.run()
        assert not network.partitioned  # healed after the window


class TestMassCrash:
    def test_victims_crash_and_stagger_back(self, rig):
        scheduler, network, sites = rig
        scenario = MassCrash(
            at=50.0, fraction=0.5, recover_after=100.0, stagger=5.0, seed=3
        )
        scenario.install(scheduler, sites, network)
        scheduler.run(until=60.0)
        assert len(scenario.victims) == round(0.5 * 9)
        assert all(not sites[sid].is_up for sid in scenario.victims)
        scheduler.run(until=151.0)
        # recoveries are staggered: the first victim is back, the last not
        up_victims = [sid for sid in scenario.victims if sites[sid].is_up]
        assert up_victims
        assert len(up_victims) < len(scenario.victims)
        scheduler.run()
        assert all(site.is_up for site in sites)

    def test_explicit_sids_pin_the_victims(self, rig):
        scheduler, network, sites = rig
        scenario = MassCrash(at=10.0, sids=(3, 7, 8), recover_after=None)
        scenario.install(scheduler, sites, network)
        scheduler.run()
        assert scenario.victims == (3, 7, 8)
        assert all(sites[sid].is_up == (sid not in {3, 7, 8}) for sid in range(9))

    def test_no_recovery_when_disabled(self, rig):
        scheduler, network, sites = rig
        scenario = MassCrash(at=10.0, fraction=0.3, recover_after=None, seed=0)
        scenario.install(scheduler, sites, network)
        scheduler.run()
        assert all(not sites[sid].is_up for sid in scenario.victims)


class TestFactory:
    @pytest.mark.parametrize("name", CHAOS_SCENARIOS)
    def test_every_named_scenario_builds_and_installs(self, name, rig):
        scheduler, network, sites = rig
        injector = chaos_injector(name, n=9, seed=1, horizon=200.0)
        injector.install(scheduler, sites, network)
        scheduler.run()
        # Whatever happened, the fleet must end the run fully recovered
        # and the network fully healed — chaos is transient by contract.
        assert all(site.is_up for site in sites)
        assert not network.partitioned

    def test_all_composes_every_scenario(self, rig):
        scheduler, network, sites = rig
        injector = chaos_injector("all", n=9, seed=1, horizon=200.0)
        assert isinstance(injector, CompositeFailures)
        injector.install(scheduler, sites, network)
        scheduler.run()
        assert all(site.is_up for site in sites)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            chaos_injector("earthquake", n=9)
