"""The tree-quorum protocol of Agrawal & El Abbadi [2] — "BINARY".

Replicas are the nodes of a complete binary tree of height ``h``
(``n = 2^(h+1) - 1``).  A quorum is a root-to-leaf path; when a node is
inaccessible it is replaced by paths starting from *all* of its children.
Formally, for a subtree rooted at ``v``:

* ``v`` live:  ``{v}`` union a quorum-path of one child subtree
  (just ``{v}`` when ``v`` is a leaf);
* ``v`` dead:  the union of quorums of *both* child subtrees
  (impossible when ``v`` is a leaf — the operation fails).

Quorum sizes therefore range from ``h + 1 = log2(n+1)`` (a clean path) up to
``(n+1)/2`` (all leaves).  Naor & Wool [10] proved the optimal load of this
system is ``2/(h+2) = 2/(log2(n+1)+1)``; the paper's new lower-bound result
is that *its own* write operation applied to the same unmodified tree only
loads the system ``1/(h+1) = 1/log2(n+1)``.

The paper's Figure 2 uses the average-cost expression from [2] (Section 4)
with root-inclusion fraction ``f = 2/(2+h)``:

    cost(h) = 2^h (1+h)^h / (h (2+h)^(h-1)) - 2/h        for h >= 1.

SIDs are assigned in breadth-first order: root 0, children of ``v`` are
``2v + 1`` and ``2v + 2``.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.protocols.base import ProtocolModel, check_probability
from repro.quorums.liveness import Liveness, LivenessOracle, as_oracle

__all__ = [
    "LivenessOracle",
    "TreeQuorumProtocol",
    "binary_tree_sizes",
    "complete_binary_height",
]


def complete_binary_height(n: int) -> int:
    """Height ``h`` with ``n = 2^(h+1) - 1``; raises for other ``n``."""
    height = (n + 1).bit_length() - 2
    if n < 1 or 2 ** (height + 1) - 1 != n:
        raise ValueError(f"n={n} is not 2^(h+1)-1 for any height h")
    return height


def binary_tree_sizes(max_height: int) -> list[int]:
    """The admissible system sizes ``n = 2^(h+1)-1`` up to ``max_height``."""
    return [2 ** (h + 1) - 1 for h in range(max_height + 1)]


class TreeQuorumProtocol(ProtocolModel):
    """Agrawal-El Abbadi tree quorums on a complete binary tree.

    Reads and writes use the same quorum set (the original protocol provides
    mutual exclusion), matching how the paper's BINARY configuration treats
    both operations.
    """

    name = "BINARY"

    #: Path-with-substitution prefers root-to-leaf paths over the larger
    #: substitution quorums — not uniform over the enumerated collection.
    uniform_selection = False

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._height = complete_binary_height(n)

    @property
    def height(self) -> int:
        """The height ``h`` of the binary tree."""
        return self._height

    # ------------------------------------------------------------------
    # tree topology (implicit heap layout)
    # ------------------------------------------------------------------

    def children(self, sid: int) -> tuple[int, ...]:
        """The child SIDs of ``sid`` (empty for leaves)."""
        left, right = 2 * sid + 1, 2 * sid + 2
        if left >= self.n:
            return ()
        return (left, right)

    def is_leaf(self, sid: int) -> bool:
        """True iff ``sid`` is a leaf of the tree."""
        return 2 * sid + 1 >= self.n

    # ------------------------------------------------------------------
    # quorum construction with failure fallback (the [2] algorithm)
    # ------------------------------------------------------------------

    def construct_quorum(
        self,
        live: Liveness,
        rng: random.Random | None = None,
    ) -> frozenset[int] | None:
        """Assemble a quorum from live replicas, or ``None`` if impossible.

        Implements the recursive path-with-substitution rule.  With ``rng``
        the child explored first at each live node is randomised (this is
        how a real deployment spreads load); without it the left child is
        preferred, giving deterministic results for tests.
        """
        oracle = as_oracle(live)

        def solve(v: int) -> frozenset[int] | None:
            kids = self.children(v)
            if oracle(v):
                if not kids:
                    return frozenset({v})
                order = list(kids)
                if rng is not None:
                    rng.shuffle(order)
                for child in order:
                    sub = solve(child)
                    if sub is not None:
                        return frozenset({v}) | sub
                return None
            if not kids:
                return None
            parts = []
            for child in kids:
                sub = solve(child)
                if sub is None:
                    return None
                parts.append(sub)
            return frozenset().union(*parts)

        return solve(0)

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Reads use the path-with-substitution construction."""
        return self.construct_quorum(live, rng)

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Writes share the read quorums (the original mutual-exclusion set)."""
        return self.construct_quorum(live, rng)

    # ------------------------------------------------------------------
    # explicit enumeration (exponential; small heights only)
    # ------------------------------------------------------------------

    def enumerate_quorums(self, max_quorums: int = 200_000) -> Iterator[frozenset[int]]:
        """Enumerate every quorum the construction rule can produce.

        The count satisfies ``c(0) = 1``, ``c(h) = 2 c(h-1) + c(h-1)^2``
        (3, 15, 255, 65535, ... for h = 1..4); a guard raises once the
        requested limit would be exceeded.
        """
        if self.quorum_count() > max_quorums:
            raise ValueError(
                f"{self.quorum_count()} quorums exceed the limit {max_quorums}"
            )

        def solve(v: int) -> list[frozenset[int]]:
            kids = self.children(v)
            if not kids:
                return [frozenset({v})]
            left, right = (solve(child) for child in kids)
            with_v = [frozenset({v}) | q for q in left + right]
            without_v = [ql | qr for ql in left for qr in right]
            return with_v + without_v

        yield from solve(0)

    def quorum_count(self) -> int:
        """Number of quorums: ``c(h) = 2 c(h-1) + c(h-1)^2``, ``c(0) = 1``."""
        count = 1
        for _ in range(self._height):
            count = 2 * count + count * count
        return count

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """Reads and writes share the same quorums in this protocol."""
        return self.enumerate_quorums()

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """Reads and writes share the same quorums in this protocol."""
        return self.enumerate_quorums()

    # ------------------------------------------------------------------
    # analytic quantities
    # ------------------------------------------------------------------

    def average_cost(self) -> float:
        """The paper's Figure-2 BINARY cost (average quorum size).

        ``2^h (1+h)^h / (h (2+h)^(h-1)) - 2/h`` with ``f = 2/(2+h)``; a
        single-node tree (h = 0) trivially costs 1.
        """
        h = self._height
        if h == 0:
            return 1.0
        return (2.0**h * (1.0 + h) ** h) / (h * (2.0 + h) ** (h - 1)) - 2.0 / h

    def min_cost(self) -> int:
        """Cheapest quorum: a failure-free root-to-leaf path, ``h + 1``."""
        return self._height + 1

    def max_cost(self) -> int:
        """Costliest quorum: all the leaves, ``(n+1)/2``."""
        return (self.n + 1) // 2

    def read_cost(self) -> float:
        """Average quorum size (reads and writes are symmetric)."""
        return self.average_cost()

    def write_cost(self) -> float:
        """Average quorum size (reads and writes are symmetric)."""
        return self.average_cost()

    def availability(self, p: float, op: str = "read") -> float:
        """Probability a quorum is constructible (``op`` ignored: one set).

        ``A(0) = p`` and ``A(h) = p (1 - (1 - a)^2) + (1 - p) a^2`` with
        ``a = A(h-1)``: a live root needs a path from either child, a dead
        root needs quorums from both children.
        """
        check_probability(p)
        availability = p
        for _ in range(self._height):
            a = availability
            availability = p * (1.0 - (1.0 - a) ** 2) + (1.0 - p) * a * a
        return availability

    def read_availability(self, p: float) -> float:
        """Same recursion for reads and writes."""
        return self.availability(p)

    def write_availability(self, p: float) -> float:
        """Same recursion for reads and writes."""
        return self.availability(p)

    def optimal_load(self) -> float:
        """Naor-Wool optimal load of the tree-quorum system.

        ``2/(h+2) = 2/(log2(n+1) + 1)`` — [10], Section 6.3.
        """
        return 2.0 / (self._height + 2.0)

    def read_load(self) -> float:
        """Reads and writes share the optimal load ``2/(h+2)``."""
        return self.optimal_load()

    def write_load(self) -> float:
        """Reads and writes share the optimal load ``2/(h+2)``."""
        return self.optimal_load()

    def path_strategy_load(self) -> float:
        """Load when only clean root-to-leaf paths are used: 1 (via the root).

        The paper's introduction points out that achieving the ``log n``
        quorum size forces every quorum through the root, so any strategy
        restricted to paths loads the root with probability 1.
        """
        return 1.0
