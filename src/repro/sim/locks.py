"""Centralised concurrency control (Section 2.2).

The paper assumes "each client uses a centralized concurrency control scheme
to synchronize accesses to the replicas".  This module provides that scheme:
a single lock manager granting shared (read) and exclusive (write) locks per
key, with FIFO queueing of incompatible requests.

Grants are asynchronous: a request that cannot be satisfied immediately is
queued and its callback fires (through the scheduler, to keep event ordering
deterministic) once the conflicting locks are released.  Because every
transaction in this library touches a single key, FIFO queueing is
deadlock-free; a lock-wait timeout is still available as a safety net for
experiments that inject coordinator failures.
"""

from __future__ import annotations

import enum
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.recorder import NULL_RECORDER, NullRecorder

if TYPE_CHECKING:  # annotation-only: the seam protocol, not a hard dep
    from repro.runtime.interfaces import Clock


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) access."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass(slots=True)
class _LockRequest:
    txid: int
    mode: LockMode
    callback: Callable[[bool], None]
    enqueued_at: float = 0.0
    #: The key the request waits on — carried here so the wait-timeout
    #: event can be scheduled as ``(self._expire, request)`` instead of a
    #: per-request closure over ``(key, request)``.
    key: Any = None


@dataclass(slots=True)
class _KeyLockState:
    holders: dict[int, LockMode] = field(default_factory=dict)
    queue: deque[_LockRequest] = field(default_factory=deque)
    #: Count of exclusive holders (0 or 1), maintained on every grant,
    #: upgrade and release so compatibility is two comparisons instead
    #: of a scan over ``holders`` per acquire.
    exclusive: int = 0

    def compatible(self, mode: LockMode) -> bool:
        if not self.holders:
            return True
        if mode is LockMode.SHARED:
            return not self.exclusive
        return False


@dataclass
class LockStats:
    """Counters for observing contention."""

    granted_immediately: int = 0
    granted_after_wait: int = 0
    timeouts: int = 0
    releases: int = 0
    #: Releases for a transaction that held nothing — a protocol bug
    #: (e.g. releasing after a lock-wait timeout) made visible.
    spurious_releases: int = 0

    @property
    def granted(self) -> int:
        """Total granted requests."""
        return self.granted_immediately + self.granted_after_wait


class LockManager:
    """The centralised lock service shared by all clients.

    Parameters
    ----------
    scheduler:
        Any transport-seam :class:`~repro.runtime.interfaces.Clock` used
        to fire grant callbacks and wait timeouts — the simulator's event
        scheduler or the asyncio runtime's wall clock.  Grants are always
        delivered asynchronously (``call_later(0.0, ...)``) so lock
        acquisition never recurses into the caller on either backend.
    wait_timeout:
        Optional cap on queue time; a request still queued after this long
        is denied (callback fires with ``False``).
    recorder:
        Trace recorder receiving ``lock.wait`` / ``lock.hold`` /
        ``lock.denied_wait`` scalar observations (simulated time units);
        the default no-op recorder skips all of it.
    """

    def __init__(
        self,
        scheduler: "Clock",
        wait_timeout: float | None = None,
        recorder: NullRecorder = NULL_RECORDER,
    ) -> None:
        self._scheduler = scheduler
        self._wait_timeout = wait_timeout
        self._recorder = recorder
        self._keys: dict[Any, _KeyLockState] = {}
        #: When each (key, txid) grant happened; only fed when tracing.
        self._granted_at: dict[tuple[Any, int], float] = {}
        self.stats = LockStats()

    def _record_grant(self, key: Any, txid: int, waited: float) -> None:
        self._recorder.observe("lock.wait", waited)
        self._granted_at[(key, txid)] = self._scheduler.now

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------

    def acquire(
        self,
        txid: int,
        key: Any,
        mode: LockMode,
        callback: Callable[[bool], None],
    ) -> None:
        """Request a lock; ``callback(granted)`` fires when decided.

        Immediate grants still go through the scheduler (zero delay) so the
        caller's control flow is identical in both cases.  Re-acquiring a
        held lock in the same mode is idempotent; upgrading shared to
        exclusive is supported when the transaction is the sole holder.
        """
        # Not setdefault: that would construct (and usually discard) a
        # fresh _KeyLockState — two default_factory calls — on every
        # acquire of an existing key, which is the common case.
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = _KeyLockState()
        held = state.holders.get(txid)
        if held is not None:
            upgradable = (
                held is LockMode.SHARED
                and mode is LockMode.EXCLUSIVE
                and len(state.holders) == 1
            )
            if held is mode or mode is LockMode.SHARED or upgradable:
                if mode is LockMode.EXCLUSIVE and held is LockMode.SHARED:
                    state.exclusive += 1
                state.holders[txid] = (
                    LockMode.EXCLUSIVE if mode is LockMode.EXCLUSIVE else held
                )
                self.stats.granted_immediately += 1
                self._scheduler.call_later(0.0, callback, True)
                return
            # Upgrade with other holders present: wait in the queue.

        if held is None and not state.queue and state.compatible(mode):
            if mode is LockMode.EXCLUSIVE:
                state.exclusive += 1
            state.holders[txid] = mode
            self.stats.granted_immediately += 1
            if self._recorder.enabled:
                self._record_grant(key, txid, 0.0)
            self._scheduler.call_later(0.0, callback, True)
            return

        request = _LockRequest(
            txid=txid, mode=mode, callback=callback,
            enqueued_at=self._scheduler.now, key=key,
        )
        state.queue.append(request)
        if self._wait_timeout is not None:
            self._scheduler.call_later(
                self._wait_timeout, self._expire, request
            )

    def _expire(self, request: _LockRequest) -> None:
        key = request.key
        state = self._keys.get(key)
        if state is None or request not in state.queue:
            return
        state.queue.remove(request)
        self.stats.timeouts += 1
        if self._recorder.enabled:
            self._recorder.observe(
                "lock.denied_wait", self._scheduler.now - request.enqueued_at
            )
        request.callback(False)

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------

    def release(self, txid: int, key: Any) -> None:
        """Release one lock and grant as many queued requests as possible.

        Releasing a lock the transaction does not hold is counted in
        ``stats.spurious_releases`` — it is always a caller bug (e.g.
        releasing after a denied lock wait) and used to pass silently.
        """
        state = self._keys.get(key)
        if state is None:
            self.stats.spurious_releases += 1
            return
        released = state.holders.pop(txid, None)
        if released is None:
            self.stats.spurious_releases += 1
            return
        if released is LockMode.EXCLUSIVE:
            state.exclusive -= 1
        self.stats.releases += 1
        if self._recorder.enabled:
            granted_at = self._granted_at.pop((key, txid), None)
            if granted_at is not None:
                self._recorder.observe(
                    "lock.hold", self._scheduler.now - granted_at
                )
        # Skip the grant scan entirely when nobody waits — the common
        # case under low contention, and the scan's call frame alone is
        # visible at 20k releases per simulated run.
        if state.queue:
            self._grant_queued(key, state)
        if not state.holders and not state.queue:
            del self._keys[key]

    def release_all(self, txid: int) -> None:
        """Release every lock held by a transaction."""
        for key in [
            key for key, state in self._keys.items() if txid in state.holders
        ]:
            self.release(txid, key)

    def _grant_queued(self, key: Any, state: _KeyLockState) -> None:
        while state.queue:
            head = state.queue[0]
            if not state.compatible(head.mode):
                return
            state.queue.popleft()
            if head.mode is LockMode.EXCLUSIVE:
                state.exclusive += 1
            state.holders[head.txid] = head.mode
            self.stats.granted_after_wait += 1
            if self._recorder.enabled:
                self._record_grant(
                    key, head.txid, self._scheduler.now - head.enqueued_at
                )
            self._scheduler.call_later(0.0, head.callback, True)
            if head.mode is LockMode.EXCLUSIVE:
                return

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def holders(self, key: Any) -> dict[int, LockMode]:
        """Current holders of a key's lock (txid -> mode)."""
        state = self._keys.get(key)
        return dict(state.holders) if state else {}

    def queue_length(self, key: Any) -> int:
        """Number of requests waiting on a key."""
        state = self._keys.get(key)
        return len(state.queue) if state else 0

    @property
    def idle(self) -> bool:
        """True iff no key has holders or queued requests.

        Group-wide quiescence belt-and-braces: a coordinator pool is
        drained only when every member is quiescent *and* the shared
        lock table is empty (a granted-but-not-yet-delivered callback
        still counts as held).
        """
        return not any(
            state.holders or state.queue for state in self._keys.values()
        )
