"""Adaptive fault tolerance: retry policies, failure suspicion, chaos.

The paper's availability analysis (Section 3, Eq. 3.2) is a static
snapshot of dead replicas; this package is the simulator's answer to
*dynamic* failure handling, in the lineage of the tree-quorum adaptivity
of Agrawal–El Abbadi and Herlihy's dynamic quorum adjustment:

* :mod:`repro.fault.retry` — pluggable retry-delay schedules (fixed,
  capped exponential backoff with deterministic seeded jitter);
* :mod:`repro.fault.detector` — :class:`SuspectList`, a suspicion-based
  failure detector built from timeout/drop evidence, feeding quorum
  selection so it avoids suspected sites before falling back to blind
  selection;
* :mod:`repro.fault.scenarios` — a chaos scenario library (flaky-link
  bursts, rolling restarts, stragglers, partition flapping, mass crash)
  compiled onto the existing failure-injector and network machinery;
* :mod:`repro.fault.invariants` — a safety checker asserting quorum
  intersection and version monotonicity on every committed operation
  while the chaos runs.
"""

from repro.fault.detector import SuspectList
from repro.fault.invariants import InvariantChecker, InvariantViolation
from repro.fault.retry import (
    ExponentialBackoff,
    FixedDelay,
    RetryPolicy,
    RetryPolicySpec,
)
from repro.fault.scenarios import (
    CHAOS_SCENARIOS,
    FlakyLinkBursts,
    MassCrash,
    PartitionFlapping,
    RollingRestarts,
    StragglerSites,
    chaos_injector,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "ExponentialBackoff",
    "FixedDelay",
    "FlakyLinkBursts",
    "InvariantChecker",
    "InvariantViolation",
    "MassCrash",
    "PartitionFlapping",
    "RetryPolicy",
    "RetryPolicySpec",
    "RollingRestarts",
    "StragglerSites",
    "SuspectList",
    "chaos_injector",
]
