"""Command-line interface: regenerate the paper's tables from a terminal.

``python -m repro <command>``:

* ``example``   — Table 1 and the Section 3.4 worked example;
* ``fig2``      — Figure 2 communication-cost series;
* ``fig3``      — Figure 3 read-load series;
* ``fig4``      — Figure 4 write-load series;
* ``survey``    — the Section 1 related-work survey;
* ``analyse``   — analyse an arbitrary tree spec (e.g. ``1-3-5``);
* ``sweep``     — an arbitrary-quantity configuration sweep
  (``--jobs N`` shards size runs across a process pool);
* ``availability`` — exact / Monte-Carlo availability of a spec or protocol
  (``--samples`` / ``--seed`` reach the estimator; ``--jobs N`` shards the
  Monte-Carlo sampling across a process pool);
* ``tune``      — recommend a tree for a given n / p / read fraction;
* ``simulate``  — run the discrete-event simulator and print measurements
  (``--repeats R --jobs N`` fans independently seeded repeats across a
  process pool and reports the merged measurements; ``--retry-policy`` /
  ``--backoff`` select the coordinator's retry-delay schedule and
  ``--detector`` turns on suspicion-aware quorum selection);
* ``shard``     — run a sharded multi-object keyspace: a router
  partitions the keys onto N shards, each shard runs its own replica
  group, and a load balancer spreads traffic over per-shard coordinator
  pools (``--repeats R --jobs N`` fans independently seeded repeats
  across a process pool, merged shard-wise and bit-identical to serial);
* ``chaos``     — run a chaos scenario (flaky links, rolling restarts,
  stragglers, partition flapping, mass crash) with the safety invariant
  checker armed, and report availability, recovery behaviour and
  failure-detector counters;
* ``reconfigure`` — change the tree shape mid-run: epoch-based online
  reconfiguration serves reads and writes on dual quorums throughout the
  transition (``--stop-the-world`` selects the legacy quiescent
  migration), optionally under a chaos scenario, with the invariant
  checker armed across the epoch boundary;
* ``trace``     — run the simulator with tracing on and export the span
  stream (one JSON object per line) plus message counters;
* ``report``    — per-phase latency breakdown + flame summary, either for
  a fresh traced run or from a previously exported JSONL trace;
* ``all``       — everything above with default parameters.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.related_work import survey
from repro.analysis.sweeps import figure2_series, figure3_series, figure4_series
from repro.analysis.tables import format_series, format_table
from repro.core import analyse, from_spec
from repro.core.tuning import recommend


def _print_example() -> None:
    from repro.core.tree import ArbitraryTree

    tree = ArbitraryTree.from_level_counts([0, 3, 5], [1, 0, 4])
    rows = [
        [row.level, row.total, row.physical, row.logical]
        for row in tree.level_table()
    ]
    print(format_table(
        ["level k", "m_k", "m_phy_k", "m_log_k"], rows,
        title="Table 1: the Figure 1 tree",
    ))
    metrics = analyse(tree, p=0.7)
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["m(R)", 15], ["m(W)", 2],
            ["RD_cost", metrics.read_cost],
            ["RD_availability(0.7)", round(metrics.read_availability, 4)],
            ["L_RD", round(metrics.read_load, 4)],
            ["WR_cost", metrics.write_cost_avg],
            ["WR_availability(0.7)", round(metrics.write_availability, 4)],
            ["L_WR", round(metrics.write_load, 4)],
            ["E[L_RD]", round(metrics.expected_read_load, 4)],
            ["E[L_WR]", round(metrics.expected_write_load, 4)],
        ],
        title="Section 3.4 example (p = 0.7)",
    ))


def _print_figure(which: str, p: float) -> None:
    builders = {
        "fig2": (figure2_series, ("read_cost", "write_cost")),
        "fig3": (figure3_series, ("read_load", "expected_read_load")),
        "fig4": (figure4_series, ("write_load", "expected_write_load")),
    }
    build, quantities = builders[which]
    series = build(p=p)
    for quantity in quantities:
        print(format_series(
            series, quantity,
            title=f"{which.upper()}: {quantity} (p = {p})",
        ))
        print()


def _print_survey(n: int) -> None:
    rows = [
        [e.protocol, e.reference, e.n, e.read_cost_best, e.read_cost_worst,
         round(e.write_cost, 2), round(e.read_load, 4), round(e.write_load, 4)]
        for e in survey(n)
    ]
    print(format_table(
        ["protocol", "ref", "n", "rd min", "rd max", "wr cost",
         "rd load", "wr load"],
        rows,
        title=f"Section 1 related-work survey at n ~ {n}",
    ))


def _print_analysis(spec: str, p: float) -> None:
    tree = from_spec(spec)
    print(tree.describe())
    metrics = analyse(tree, p=p)
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["read cost", metrics.read_cost],
            ["write cost (min/avg/max)",
             f"{metrics.write_cost_min}/{metrics.write_cost_avg:g}/"
             f"{metrics.write_cost_max}"],
            ["read availability", round(metrics.read_availability, 4)],
            ["write availability", round(metrics.write_availability, 4)],
            ["read load", round(metrics.read_load, 4)],
            ["write load", round(metrics.write_load, 4)],
            ["E[read load]", round(metrics.expected_read_load, 4)],
            ["E[write load]", round(metrics.expected_write_load, 4)],
        ],
        title=f"analysis of {spec} at p = {p}",
    ))


def _print_sweep(quantities: Sequence[str], sizes: Sequence[int], p: float,
                 jobs: int) -> None:
    """``repro sweep``: arbitrary-quantity configuration sweep via the runner."""
    from repro.runner import ProgressPrinter, parallel_sweep

    series = parallel_sweep(
        tuple(quantities), sizes=tuple(sizes), p=p, jobs=jobs,
        progress=ProgressPrinter("sweep") if jobs > 1 else None,
    )
    for quantity in quantities:
        print(format_series(
            series, quantity,
            title=f"sweep: {quantity} (p = {p}, jobs = {jobs})",
        ))
        print()


def _print_availability(spec: str, protocol: str | None, n: int,
                        probabilities: Sequence[float], samples: int,
                        seed: int | None, jobs: int = 1) -> None:
    """Read/write availability of a tree spec or zoo protocol.

    Systems small enough for the exact computation report it; larger ones
    fall back to the Monte-Carlo estimator, parameterised by ``samples`` and
    ``seed`` (both plumbed through the QuorumSystem layer to the packed
    bitset kernel).  With ``jobs > 1`` the estimate always runs the chunked
    Monte-Carlo path, sharded across a process pool — bit-identical to the
    same chunked estimate at ``jobs = 1``.
    """
    from repro.core.protocol import ArbitraryProtocol
    from repro.protocols.zoo import quorum_system
    from repro.quorums.system import CachedQuorumSystem

    if protocol is None or protocol == "arbitrary-spec":
        system = CachedQuorumSystem(ArbitraryProtocol(from_spec(spec)))
        label = f"availability of {spec}"
        ref = ("tree", spec)
    else:
        system = CachedQuorumSystem(quorum_system(protocol, n or 16))
        label = f"availability of {system.name} (n = {system.n})"
        ref = ("protocol", protocol, n or 16)
    if jobs > 1:
        import random as _random

        from repro.runner import parallel_availability

        master = _random.randrange(2**63) if seed is None else seed
        rows = [
            [p,
             round(parallel_availability(
                 ref, p, "read", samples=samples, seed=master, jobs=jobs), 6),
             round(parallel_availability(
                 ref, p, "write", samples=samples, seed=master, jobs=jobs), 6)]
            for p in probabilities
        ]
        title = (f"{label} (Monte-Carlo, samples = {samples}, "
                 f"seed = {master}, jobs = {jobs})")
    else:
        rows = [
            [p,
             round(system.availability(p, "read", samples=samples, seed=seed), 6),
             round(system.availability(p, "write", samples=samples, seed=seed), 6)]
            for p in probabilities
        ]
        title = f"{label} (samples = {samples}, seed = {seed})"
    print(format_table(
        ["p", "read availability", "write availability"], rows, title=title,
    ))


def _print_tuning(n: int, p: float, read_fraction: float) -> None:
    result = recommend(n, p=p, read_fraction=read_fraction)
    print(f"best tree for n={n}, p={p}, read fraction {read_fraction}:")
    print(f"  {result.tree.spec()}  (score {result.best.score:.4f})")
    print()
    rows = [
        [item.tree.spec()[:40], item.tree.num_physical_levels,
         round(item.score, 4), round(item.read_metric, 4),
         round(item.write_metric, 4)]
        for item in result.alternatives[:8]
    ]
    print(format_table(
        ["tree", "|K_phy|", "score", "read metric", "write metric"],
        rows, title="top candidates",
    ))


def _retry_policy_spec(kind: str | None, backoff: str | None):
    """Build a :class:`RetryPolicySpec` from --retry-policy / --backoff.

    ``--backoff`` takes ``key=value`` pairs (``base``, ``factor``, ``cap``,
    ``jitter``), comma-separated; giving it without ``--retry-policy``
    implies the exponential policy.
    """
    if kind is None and backoff is None:
        return None
    from repro.fault.retry import RetryPolicySpec

    if kind is None:
        kind = "exponential"
    fields = {
        "base": 1.0 if kind == "exponential" else 0.0,
        "factor": 2.0,
        "cap": 60.0,
        "jitter": 0.0,
    }
    if backoff:
        for part in backoff.split(","):
            name, sep, value = part.partition("=")
            name = name.strip()
            if not sep or name not in fields:
                raise SystemExit(
                    f"invalid --backoff component {part!r}: expected "
                    "key=value with key in base/factor/cap/jitter"
                )
            fields[name] = float(value)
    return RetryPolicySpec(kind=kind, **fields)


def _sim_config(spec: str, operations: int, read_fraction: float,
                p: float, seed: int, protocol: str | None = None,
                n: int = 0, drop: float = 0.0, max_attempts: int = 1,
                trace: bool = False, retry_policy=None,
                detector: bool = False, batch_window: float = 0.0,
                leases: bool = False, reshape_at: float = 0.0,
                reshape_spec: str | None = None,
                reshape_online: bool = True):
    """Build the (config, label) pair shared by simulate/trace/report.

    Delegates to :func:`repro.runner.tasks.build_sim_config` — the single
    source of the simulation defaults — so CLI runs and parallel-runner
    workers build identical configurations.
    """
    from repro.runner.tasks import SimParams, build_sim_config

    return build_sim_config(SimParams(
        spec=spec, operations=operations, read_fraction=read_fraction,
        p=p, seed=seed, protocol=protocol, n=n, drop=drop,
        max_attempts=max_attempts, trace=trace,
        retry_policy=retry_policy, detector=detector,
        batch_window=batch_window, leases=leases,
        reshape_at=reshape_at, reshape_spec=reshape_spec,
        reshape_online=reshape_online,
    ))


def _print_simulation(spec: str, operations: int, read_fraction: float,
                      p: float, seed: int, protocol: str | None = None,
                      n: int = 0, repeats: int = 1, jobs: int = 1,
                      retry_policy=None, detector: bool = False,
                      batch_window: float = 0.0,
                      leases: bool = False, reshape_at: float = 0.0,
                      reshape_spec: str | None = None,
                      reshape_online: bool = True) -> None:
    from repro.sim import simulate

    config, label = _sim_config(
        spec, operations, read_fraction, p, seed, protocol=protocol, n=n,
        retry_policy=retry_policy, detector=detector,
        batch_window=batch_window, leases=leases,
        reshape_at=reshape_at, reshape_spec=reshape_spec,
        reshape_online=reshape_online,
    )
    reconfiguration = None
    if repeats > 1:
        from repro.runner import (
            ProgressPrinter,
            SimParams,
            merge_monitors,
            parallel_simulations,
        )

        monitors = parallel_simulations(
            SimParams(
                spec=spec, operations=operations,
                read_fraction=read_fraction, p=p, seed=seed,
                protocol=protocol, n=n,
                retry_policy=retry_policy, detector=detector,
                batch_window=batch_window, leases=leases,
                reshape_at=reshape_at, reshape_spec=reshape_spec,
                reshape_online=reshape_online,
            ),
            repeats, jobs=jobs,
            progress=ProgressPrinter("simulate") if jobs > 1 else None,
        )
        summary = merge_monitors(monitors).summary()
        messages: object = "-"
        run_title = (f"{label}: {operations} ops x {repeats} repeats, "
                     f"p = {p}, master seed {seed}, jobs {jobs}")
    else:
        result = simulate(config)
        summary = result.summary()
        messages = int(summary["messages_sent"])
        run_title = f"{label}: {operations} ops, p = {p}, seed {seed}"
        if result.reconfiguration is not None:
            availability = result.window_read_availability(
                result.reconfiguration.started_at,
                result.reconfiguration.finished_at,
            )
            reconfiguration = (result.reconfiguration, availability)
    rows: list[list] = []
    if protocol is None or protocol == "arbitrary-spec":
        metrics = analyse(config.tree, p=min(p, 1.0))
        rows = [
            ["read cost", round(summary["read_cost"], 3), metrics.read_cost],
            ["write cost", round(summary["write_cost"], 3),
             round(metrics.write_cost_avg, 3)],
            # A write also runs the Section 3.2.2 version round against a
            # read quorum, so the replicas it actually contacts are the
            # write quorum plus a read quorum's worth.
            ["write cost (total)", round(summary["write_cost_total"], 3),
             round(metrics.write_cost_avg + metrics.read_cost, 3)],
            ["read load", round(summary["read_load"], 3),
             round(metrics.read_load, 3)],
            ["write load", round(summary["write_load"], 3),
             round(metrics.write_load, 3)],
            ["read availability", round(summary["read_availability"], 3),
             round(metrics.read_availability, 3)],
            ["write availability", round(summary["write_availability"], 3),
             round(metrics.write_availability, 3)],
            ["messages", messages, "-"],
        ]
    else:
        system = config.system
        assert system is not None
        rows = [
            ["read cost", round(summary["read_cost"], 3), "-"],
            ["write cost", round(summary["write_cost"], 3), "-"],
            ["write cost (total)", round(summary["write_cost_total"], 3), "-"],
            ["read load", round(summary["read_load"], 3),
             round(system.load("read"), 3)],
            ["write load", round(summary["write_load"], 3),
             round(system.load("write"), 3)],
            ["read availability", round(summary["read_availability"], 3),
             round(system.availability(min(p, 1.0), "read"), 3)],
            ["write availability", round(summary["write_availability"], 3),
             round(system.availability(min(p, 1.0), "write"), 3)],
            ["messages", messages, "-"],
        ]
    print(format_table(
        ["quantity", "simulated", "closed form"],
        rows,
        title=run_title,
    ))
    if reconfiguration is not None:
        outcome, availability = reconfiguration
        window = "-" if availability is None else f"{availability:.4f}"
        print()
        print(
            f"reconfiguration ({outcome.mode}) -> "
            f"{outcome.new_tree.spec()}: {outcome.status.value}, "
            f"epoch {outcome.epoch}, "
            f"{outcome.keys_migrated}/{outcome.keys_total} keys in "
            f"{outcome.duration:g} time units, "
            f"window read availability {window}"
        )


def _shard_params(args):
    """Build the :class:`ShardParams` record a ``shard`` invocation describes."""
    from repro.runner import ShardParams

    if args.protocol is None or args.protocol == "arbitrary-spec":
        ref = ("tree", args.spec)
    else:
        ref = ("protocol", args.protocol, args.n or 16)
    return ShardParams(
        shards=args.shards,
        systems=(ref,),
        operations=args.operations,
        read_fraction=args.read_fraction,
        keys=args.keys,
        zipf_s=args.zipf,
        rate=args.rate,
        diurnal_period=args.diurnal_period,
        diurnal_amplitude=args.diurnal_amplitude,
        router=args.router,
        router_seed=args.router_seed,
        balancer=args.balancer,
        clients_per_shard=args.clients_per_shard,
        p=args.p,
        regions=args.regions,
        drop=args.drop,
        service_time=args.service_time,
        seed=args.seed,
        retry_policy=_retry_policy_spec(args.retry_policy, args.backoff),
        detector=args.detector,
        batch_window=args.batch_window,
        leases=args.leases,
    )


def _print_shard(args) -> None:
    """``repro shard``: a sharded keyspace run with per-shard breakdown."""
    from repro.runner import build_sharded_config

    params = _shard_params(args)
    config, label = build_sharded_config(params)
    if args.repeats > 1:
        from repro.runner import (
            ProgressPrinter,
            merge_sharded_monitors,
            parallel_shard_simulations,
        )

        monitor = merge_sharded_monitors(parallel_shard_simulations(
            params, args.repeats, jobs=args.jobs,
            progress=ProgressPrinter("shard") if args.jobs > 1 else None,
        ))
        summary = monitor.summary()
        throughput: object = "-"
        title = (f"{label}: {args.operations} ops x {args.repeats} repeats, "
                 f"p = {args.p}, master seed {args.seed}, jobs {args.jobs}")
    else:
        from repro.shard import simulate_sharded

        result = simulate_sharded(config)
        monitor = result.monitor
        summary = result.summary()
        throughput = round(summary["ops_per_sec"], 4)
        title = (f"{label}: {args.operations} ops, p = {args.p}, "
                 f"seed {args.seed}")
    shard_rows = [
        [shard, s["reads"] + s["writes"],
         round(s["read_availability"], 3), round(s["write_availability"], 3),
         round(m.reads.latency_percentile(0.5), 2),
         round(m.reads.latency_percentile(0.99), 2)]
        for shard, (s, m) in enumerate(
            zip(monitor.per_shard_summaries(), monitor.shards)
        )
    ]
    print(format_table(
        ["shard", "ops", "rd avail", "wr avail", "rd p50", "rd p99"],
        shard_rows, title=title,
    ))
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["operations", int(summary["reads"] + summary["writes"])],
            ["ops/sec (simulated)", throughput],
            ["read availability", round(summary["read_availability"], 4)],
            ["write availability", round(summary["write_availability"], 4)],
            ["read latency p50/p99",
             f"{summary['read_latency_p50']:g}/{summary['read_latency_p99']:g}"],
            ["write latency p50/p99",
             f"{summary['write_latency_p50']:g}/"
             f"{summary['write_latency_p99']:g}"],
        ],
        title="aggregate",
    ))


def _print_chaos(args) -> None:
    """``repro chaos``: a scenario run with the invariant checker armed."""
    from repro.runner.tasks import SimParams, build_sim_config
    from repro.sim import simulate

    params = SimParams(
        spec=args.spec, operations=args.operations,
        read_fraction=args.read_fraction, p=args.p, seed=args.seed,
        protocol=args.protocol, n=args.n, max_attempts=args.max_attempts,
        retry_policy=_retry_policy_spec(args.retry_policy, args.backoff),
        detector=args.detector, chaos=args.scenario,
        chaos_horizon=args.horizon, check_invariants=True,
        batch_window=args.batch_window, leases=args.leases,
    )
    if args.repeats > 1:
        from repro.runner import (
            ProgressPrinter,
            merge_monitors,
            parallel_simulations,
        )

        monitors = parallel_simulations(
            params, args.repeats, jobs=args.jobs,
            progress=ProgressPrinter("chaos") if args.jobs > 1 else None,
        )
        summary = merge_monitors(monitors).summary()
        _, label = build_sim_config(params)
        title = (f"{label}: {args.operations} ops x {args.repeats} repeats, "
                 f"master seed {args.seed}, jobs {args.jobs}")
        extra_rows: list[list] = []
    else:
        config, label = build_sim_config(params)
        result = simulate(config)
        summary = result.summary()
        title = f"{label}: {args.operations} ops, seed {args.seed}"
        checker = result.invariants
        assert checker is not None
        extra_rows = [
            ["invariants checked", checker.checked],
            ["invariant violations", len(checker.violations)],
        ]
        if result.suspects is not None:
            counters = result.suspects.counters()
            extra_rows += [
                [f"detector {name}", value]
                for name, value in sorted(counters.items())
            ]
    rows = [
        ["read availability", round(summary["read_availability"], 4)],
        ["write availability", round(summary["write_availability"], 4)],
        ["read latency (mean)", round(summary["read_latency_mean"], 3)],
        ["write latency (mean)", round(summary["write_latency_mean"], 3)],
        ["failure latency (mean)", round(summary["failure_latency_mean"], 3)],
    ] + extra_rows
    print(format_table(["quantity", "value"], rows, title=title))


def _print_reconfigure(args) -> None:
    """``repro reconfigure``: a mid-run tree change with invariants armed."""
    from repro.runner.tasks import SimParams, build_sim_config
    from repro.sim import simulate

    params = SimParams(
        spec=args.spec, operations=args.operations,
        read_fraction=args.read_fraction, p=args.p, seed=args.seed,
        max_attempts=args.max_attempts,
        retry_policy=_retry_policy_spec(args.retry_policy, args.backoff),
        detector=args.detector, chaos=args.scenario,
        chaos_horizon=args.horizon, check_invariants=True,
        batch_window=args.batch_window, leases=args.leases,
        reshape_at=args.at, reshape_spec=args.target,
        reshape_online=not args.stop_the_world,
    )
    config, label = build_sim_config(params)
    result = simulate(config)
    outcome = result.reconfiguration
    checker = result.invariants
    assert outcome is not None and checker is not None
    summary = result.summary()
    availability = result.window_read_availability(
        outcome.started_at, outcome.finished_at
    )
    rows: list[list] = [
        ["status", outcome.status.value],
        ["mode", outcome.mode],
        ["target tree", outcome.new_tree.spec()],
        ["epoch", outcome.epoch],
        ["rolled back", "yes" if outcome.rolled_back else "no"],
        ["keys migrated", f"{outcome.keys_migrated}/{outcome.keys_total}"],
        ["transition window",
         f"t = {outcome.started_at:g} .. {outcome.finished_at:g}"],
        ["window read availability",
         "-" if availability is None else round(availability, 4)],
        ["read availability (run)", round(summary["read_availability"], 4)],
        ["write availability (run)", round(summary["write_availability"], 4)],
        ["invariants checked", checker.checked],
        ["invariant violations", len(checker.violations)],
    ]
    print(format_table(
        ["quantity", "value"], rows,
        title=f"{label}: reconfigure at t = {args.at:g}, seed {args.seed}",
    ))
    for violation in checker.violations[:5]:
        print(f"  VIOLATION: {violation}")


def _run_traced(args) -> tuple:
    """Run one traced simulation from trace/report CLI arguments."""
    from repro.sim import simulate

    config, label = _sim_config(
        args.spec, args.operations, args.read_fraction, args.p, args.seed,
        protocol=args.protocol, n=args.n, drop=args.drop,
        max_attempts=args.max_attempts, trace=True,
    )
    return simulate(config), label


def _print_trace(args) -> None:
    """``repro trace``: run a traced simulation, export JSON Lines."""
    from repro.obs import export_trace

    result, label = _run_traced(args)
    recorder = result.recorder
    path = export_trace(recorder, args.out)
    traces = recorder.traces()
    print(f"{label}: {args.operations} ops, p = {args.p}, seed {args.seed}")
    print(
        f"wrote {path}: {len(traces)} traces, {len(recorder.spans)} spans, "
        f"{sum(len(c) for c in recorder.counters.values())} counter cells"
    )
    open_spans = recorder.open_spans()
    if open_spans:
        print(f"WARNING: {len(open_spans)} spans never finished")


def _print_report(args) -> None:
    """``repro report``: per-phase breakdown + flame summary + counters."""
    from repro.obs import (
        flame_summary,
        load_trace,
        phase_breakdown,
        render_counters,
        render_phase_breakdown,
        summaries_of,
    )

    if args.trace_file is not None:
        recorder = load_trace(args.trace_file)
        print(f"trace report for {args.trace_file}")
    else:
        result, label = _run_traced(args)
        recorder = result.recorder
        summary = result.summary()
        print(f"{label}: {args.operations} ops, p = {args.p}, "
              f"seed {args.seed}")
        print(
            f"availability: read {summary['read_availability']:.3f} "
            f"write {summary['write_availability']:.3f}; "
            f"mean latency: ok {summary['read_latency_mean']:.2f}/"
            f"{summary['write_latency_mean']:.2f} "
            f"failed {summary['failure_latency_mean']:.2f}"
        )
    print()
    print("per-phase latency breakdown")
    print(render_phase_breakdown(phase_breakdown(recorder.finished_spans())))
    print()
    print(flame_summary(recorder))
    print()
    print(render_counters(recorder))
    metric_summaries = summaries_of(recorder)
    if metric_summaries:
        print()
        print("metrics")
        for name, stats in sorted(metric_summaries.items()):
            print(
                f"  {name:<18} count {int(stats['count']):>7}  "
                f"mean {stats['mean']:>9.3f}  min {stats['min']:>8.3f}  "
                f"max {stats['max']:>9.3f}"
            )


def _print_profile(args) -> None:
    """``repro profile``: cProfile hotspots + obs phase attribution.

    Profiles a saturated single-group run (the inner-ring acceptance
    workload by default) so the top of the table is the simulator's hot
    path, not warm-up.  See :mod:`repro.sim.profiling` for why the
    phase attribution comes from a second, traced run.
    """
    from repro.core.builder import from_spec
    from repro.sim.engine import SimulationConfig
    from repro.sim.profiling import profile_simulation
    from repro.sim.workload import WorkloadSpec

    config = SimulationConfig(
        tree=from_spec(args.spec),
        workload=WorkloadSpec(
            operations=args.operations,
            read_fraction=args.read_fraction,
            keys=args.keys,
            arrival="poisson",
            rate=args.rate,
            zipf_s=args.zipf,
        ),
        clients=args.clients,
        service_time=args.service_time,
        timeout=args.timeout,
        seed=args.seed,
        batch_window=args.batch_window,
        leases=args.leases,
    )
    report = profile_simulation(
        config, sort=args.sort, limit=args.limit,
        phases=not args.no_phases,
    )
    print(
        f"{args.spec}: {args.operations} ops, seed {args.seed}, "
        f"service time {args.service_time:g}, rate {args.rate:g}"
    )
    print(
        f"wall {report.wall_seconds:.2f}s under cProfile — "
        f"{report.events_per_sec:,.0f} events/sec, "
        f"{report.ops_per_sec:,.0f} ops/sec "
        f"(profiler overhead included; see BENCH_simcore.json for "
        f"uninstrumented rates)"
    )
    print(report.hotspots)
    if report.phase_breakdown is not None:
        print("per-phase latency breakdown (traced re-run, simulated time)")
        print(report.phase_breakdown)


def _add_fault_arguments(parser) -> None:
    """Fault-layer options shared by ``simulate`` and ``chaos``."""
    parser.add_argument(
        "--retry-policy", choices=("fixed", "exponential"), default=None,
        help="coordinator retry-delay schedule (default: legacy immediate "
             "retry)",
    )
    parser.add_argument(
        "--backoff", default=None, metavar="KEY=VALUE[,...]",
        help="backoff parameters (base/factor/cap/jitter), e.g. "
             "'base=1,factor=2,cap=30,jitter=0.2'; implies "
             "--retry-policy exponential",
    )
    parser.add_argument(
        "--detector", action="store_true",
        help="attach the suspicion-based failure detector so quorum "
             "selection avoids suspected sites",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.0, metavar="W",
        help="coordinator batching window in simulated time units: "
             "operations arriving within W of the first are coalesced "
             "per key — same-key reads share one quorum read, batched "
             "writes skip redundant version rounds (0 = off, the "
             "legacy per-operation path)",
    )
    parser.add_argument(
        "--leases", action="store_true",
        help="cache read results per key as leases: repeat reads of a "
             "hot key are served without quorum traffic until a "
             "conflicting write or a liveness-epoch change revokes "
             "the lease",
    )


def _add_reshape_arguments(parser) -> None:
    """Mid-run reconfiguration options for ``simulate``."""
    parser.add_argument(
        "--reshape-at", type=float, default=0.0, metavar="T",
        help="launch a tree reconfiguration at simulated time T "
             "(0 = off, the legacy fixed-tree path)",
    )
    parser.add_argument(
        "--reshape-spec", default=None, metavar="SPEC",
        help="target tree spec for --reshape-at (default: a fault-aware "
             "plan from the tuning advisor and detector evidence)",
    )
    parser.add_argument(
        "--reshape-stop-the-world", action="store_true",
        help="use the quiescent stop-the-world migration instead of the "
             "epoch-based online transition",
    )


def _add_trace_sim_arguments(parser) -> None:
    """Simulation options shared by ``trace`` and ``report``."""
    from repro.protocols.zoo import PROTOCOL_NAMES

    parser.add_argument("spec", nargs="?", default="1-3-5")
    parser.add_argument("--operations", type=int, default=500)
    parser.add_argument("--read-fraction", type=float, default=0.5)
    parser.add_argument("--p", type=float, default=1.0,
                        help="per-replica availability (1.0 = no failures)")
    parser.add_argument("--drop", type=float, default=0.0,
                        help="message drop probability in [0, 1]")
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--protocol", choices=PROTOCOL_NAMES, default=None,
        help="simulate a zoo protocol instead of an explicit tree spec",
    )
    parser.add_argument("--n", type=int, default=0,
                        help="replica count for --protocol")


def _run_serve(args) -> int:
    """``repro serve``: run one replica site process until killed."""
    import asyncio

    from repro.runtime.siteserver import serve_site

    try:
        asyncio.run(
            serve_site(
                args.sid,
                host=args.host,
                port=args.port,
                service_time=args.service_time,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _run_cluster(args) -> int:
    """``repro cluster``: real processes, real sockets, optional kill -9."""
    import asyncio
    import json

    from repro.runtime.cluster import KVFrontend, LocalCluster, run_traffic

    async def drive() -> int:
        cluster = LocalCluster(
            spec=args.spec,
            timeout=args.timeout,
            max_attempts=args.max_attempts,
            seed=args.seed,
        )
        await cluster.start()
        print(
            f"cluster up: spec={args.spec} sites={cluster.n} "
            f"ports={[site.port for site in cluster.sites]}",
            flush=True,
        )
        exit_code = 0
        try:
            report = await run_traffic(
                cluster,
                operations=args.operations,
                read_fraction=args.read_fraction,
                keys=args.keys,
                seed=args.seed,
                kill_after_ops=args.kill_after_ops,
                kill_site=args.kill_site,
            )
            summary = report.summary()
            if report.killed_site is not None:
                print(
                    f"SIGKILLed site {report.killed_site} after "
                    f"{report.kill_after_ops} ops; post-kill reads "
                    f"{report.post_kill_reads - report.post_kill_read_failures}"
                    f"/{report.post_kill_reads} succeeded",
                    flush=True,
                )
            print(json.dumps(summary, indent=2))
            # Gate: every read must succeed — including every read issued
            # after the kill (writes may legitimately lose their quorum).
            if report.read_failures or (
                report.killed_site is not None
                and report.post_kill_read_failures
            ):
                exit_code = 1
            if args.serve:
                frontend = KVFrontend(cluster, port=args.serve_port)
                await frontend.start()
                print(f"REPRO-KV port={frontend.port}", flush=True)
                await frontend.stop_requested.wait()
                await frontend.stop()
        finally:
            await cluster.stop()
            orphans = cluster.orphans()
            if orphans:
                print(f"orphaned site processes: {orphans}", flush=True)
                exit_code = 1
            else:
                print("cluster shut down cleanly (no orphans)", flush=True)
        return exit_code

    try:
        return asyncio.run(asyncio.wait_for(drive(), args.deadline))
    except KeyboardInterrupt:
        return 130


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arbitrary tree-structured replica control protocol "
                    "(ICDCS 2008) — analysis and simulation toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("example", help="Table 1 + the Section 3.4 example")

    for fig in ("fig2", "fig3", "fig4"):
        fig_parser = sub.add_parser(fig, help=f"regenerate {fig} series")
        fig_parser.add_argument("--p", type=float, default=0.7)

    survey_parser = sub.add_parser("survey", help="related-work survey")
    survey_parser.add_argument("--n", type=int, default=121)

    analyse_parser = sub.add_parser("analyse", help="analyse a tree spec")
    analyse_parser.add_argument("spec", help="tree spec, e.g. 1-3-5")
    analyse_parser.add_argument("--p", type=float, default=0.9)

    sweep_parser = sub.add_parser(
        "sweep", help="configuration sweep over arbitrary quantities"
    )
    sweep_parser.add_argument(
        "--quantities", nargs="+", default=["read_cost", "write_cost"],
        help="ConfigPoint attribute names to sweep",
    )
    sweep_parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="replica counts on the x-axis (default: the figures' range)",
    )
    sweep_parser.add_argument("--p", type=float, default=0.7)
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes to shard size runs across",
    )

    avail_parser = sub.add_parser(
        "availability",
        help="read/write availability of a spec or zoo protocol",
    )
    avail_parser.add_argument("spec", nargs="?", default="1-3-5")
    avail_parser.add_argument(
        "--p", type=float, nargs="+", default=[0.5, 0.7, 0.9, 0.95, 0.99],
        help="per-replica availabilities to evaluate",
    )
    avail_parser.add_argument(
        "--samples", type=int, default=100_000,
        help="Monte-Carlo samples (used when the system is too large "
             "for the exact computation)",
    )
    avail_parser.add_argument(
        "--seed", type=int, default=0,
        help="Monte-Carlo seed (pass -1 for fresh randomness)",
    )
    from repro.protocols.zoo import PROTOCOL_NAMES as _ZOO

    avail_parser.add_argument(
        "--protocol", choices=_ZOO, default=None,
        help="evaluate a zoo protocol instead of a tree spec",
    )
    avail_parser.add_argument(
        "--n", type=int, default=0,
        help="replica count for --protocol (snapped to an admissible size)",
    )
    avail_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes; > 1 shards the Monte-Carlo sampling",
    )

    tune_parser = sub.add_parser("tune", help="recommend a tree shape")
    tune_parser.add_argument("--n", type=int, default=48)
    tune_parser.add_argument("--p", type=float, default=0.9)
    tune_parser.add_argument("--read-fraction", type=float, default=0.5)

    sim_parser = sub.add_parser("simulate", help="run the simulator")
    sim_parser.add_argument("spec", nargs="?", default="1-3-5")
    sim_parser.add_argument("--operations", type=int, default=2000)
    sim_parser.add_argument("--read-fraction", type=float, default=0.5)
    sim_parser.add_argument("--p", type=float, default=1.0,
                            help="per-replica availability (1.0 = no failures)")
    sim_parser.add_argument("--seed", type=int, default=0)
    from repro.protocols.zoo import PROTOCOL_NAMES

    sim_parser.add_argument(
        "--protocol", choices=PROTOCOL_NAMES, default=None,
        help="simulate a zoo protocol instead of an explicit tree spec "
             "(sized via --n, or to match the spec's replica count)",
    )
    sim_parser.add_argument(
        "--n", type=int, default=0,
        help="replica count for --protocol (snapped to an admissible size)",
    )
    sim_parser.add_argument(
        "--repeats", type=int, default=1,
        help="independently seeded repeats (merged measurements reported)",
    )
    sim_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes to fan repeats across",
    )
    _add_fault_arguments(sim_parser)
    _add_reshape_arguments(sim_parser)

    from repro.shard import BALANCER_POLICIES, ROUTER_KINDS

    shard_parser = sub.add_parser(
        "shard",
        help="run a sharded multi-object keyspace over per-shard replica "
             "groups",
    )
    shard_parser.add_argument(
        "spec", nargs="?", default="1-3-5",
        help="per-shard tree spec (every shard runs one replica group)",
    )
    shard_parser.add_argument("--shards", type=int, default=4)
    shard_parser.add_argument(
        "--protocol", choices=PROTOCOL_NAMES, default=None,
        help="run shards on a zoo protocol instead of a tree spec",
    )
    shard_parser.add_argument("--n", type=int, default=0,
                              help="replica count for --protocol")
    shard_parser.add_argument("--operations", type=int, default=2000)
    shard_parser.add_argument("--read-fraction", type=float, default=0.5)
    shard_parser.add_argument(
        "--keys", type=int, default=1024,
        help="global keyspace size the router partitions",
    )
    shard_parser.add_argument(
        "--zipf", type=float, default=0.0,
        help="Zipf skew of key popularity (0 = uniform)",
    )
    shard_parser.add_argument(
        "--rate", type=float, default=0.25,
        help="aggregate Poisson arrival rate (ops per time unit)",
    )
    shard_parser.add_argument(
        "--diurnal-period", type=float, default=0.0,
        help="diurnal cycle length in simulated time units (0 = constant "
             "rate)",
    )
    shard_parser.add_argument(
        "--diurnal-amplitude", type=float, default=0.0,
        help="relative diurnal swing in [0, 1]",
    )
    shard_parser.add_argument(
        "--router", choices=ROUTER_KINDS, default="hash",
        help="keyspace partitioning scheme",
    )
    shard_parser.add_argument("--router-seed", type=int, default=0,
                              help="hash-placement seed")
    shard_parser.add_argument(
        "--balancer", choices=BALANCER_POLICIES, default="round-robin",
        help="per-shard coordinator-pool policy",
    )
    shard_parser.add_argument("--clients-per-shard", type=int, default=1)
    shard_parser.add_argument(
        "--p", type=float, default=1.0,
        help="per-replica availability (1.0 = no failures)",
    )
    shard_parser.add_argument(
        "--regions", type=int, default=0,
        help="spread each shard's replicas over this many latency regions "
             "(0 = uniform latency)",
    )
    shard_parser.add_argument("--drop", type=float, default=0.0,
                              help="message drop probability in [0, 1]")
    shard_parser.add_argument(
        "--service-time", type=float, default=0.0,
        help="per-message replica processing time (adds queueing)",
    )
    shard_parser.add_argument("--seed", type=int, default=0)
    shard_parser.add_argument(
        "--repeats", type=int, default=1,
        help="independently seeded repeats (merged shard-wise)",
    )
    shard_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes to fan repeats across",
    )
    _add_fault_arguments(shard_parser)

    from repro.fault.scenarios import CHAOS_SCENARIOS

    chaos_parser = sub.add_parser(
        "chaos",
        help="run a chaos scenario with the safety invariant checker armed",
    )
    chaos_parser.add_argument("spec", nargs="?", default="1-3-5")
    chaos_parser.add_argument(
        "--scenario", choices=CHAOS_SCENARIOS + ("all",), default="all",
        help="which failure scenario to inject",
    )
    chaos_parser.add_argument("--operations", type=int, default=1000)
    chaos_parser.add_argument("--read-fraction", type=float, default=0.5)
    chaos_parser.add_argument(
        "--p", type=float, default=1.0,
        help="per-replica Bernoulli availability composed under the chaos",
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument("--max-attempts", type=int, default=4)
    chaos_parser.add_argument(
        "--horizon", type=float, default=1000.0,
        help="simulated time the scenario keeps injecting failures for",
    )
    chaos_parser.add_argument(
        "--protocol", choices=PROTOCOL_NAMES, default=None,
        help="run the chaos against a zoo protocol instead of a tree spec",
    )
    chaos_parser.add_argument("--n", type=int, default=0,
                              help="replica count for --protocol")
    chaos_parser.add_argument(
        "--repeats", type=int, default=1,
        help="independently seeded repeats (merged measurements reported)",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes to fan repeats across",
    )
    _add_fault_arguments(chaos_parser)

    reconf_parser = sub.add_parser(
        "reconfigure",
        help="change the tree shape mid-run (online dual-quorum epoch "
             "transition, or --stop-the-world) with invariants armed",
    )
    reconf_parser.add_argument("spec", nargs="?", default="1-3-5",
                               help="initial tree spec")
    reconf_parser.add_argument(
        "--target", default=None, metavar="SPEC",
        help="target tree spec (default: a fault-aware plan from the "
             "tuning advisor and detector evidence)",
    )
    reconf_parser.add_argument(
        "--at", type=float, default=200.0, metavar="T",
        help="simulated time at which the reconfiguration launches",
    )
    reconf_parser.add_argument(
        "--stop-the-world", action="store_true",
        help="use the legacy quiescent migration (pauses all "
             "coordinators) instead of the online epoch transition",
    )
    reconf_parser.add_argument("--operations", type=int, default=1000)
    reconf_parser.add_argument("--read-fraction", type=float, default=0.5)
    reconf_parser.add_argument(
        "--p", type=float, default=1.0,
        help="per-replica availability (1.0 = no failures)",
    )
    reconf_parser.add_argument("--seed", type=int, default=0)
    reconf_parser.add_argument("--max-attempts", type=int, default=4)
    reconf_parser.add_argument(
        "--scenario", choices=CHAOS_SCENARIOS + ("all",), default=None,
        help="compose a chaos scenario under the reconfiguration",
    )
    reconf_parser.add_argument(
        "--horizon", type=float, default=1000.0,
        help="simulated time the chaos scenario keeps injecting for",
    )
    _add_fault_arguments(reconf_parser)

    trace_parser = sub.add_parser(
        "trace", help="run a traced simulation and export JSONL spans"
    )
    _add_trace_sim_arguments(trace_parser)
    trace_parser.add_argument(
        "--out", default="trace.jsonl",
        help="output path for the JSON Lines trace",
    )

    profile_parser = sub.add_parser(
        "profile",
        help="cProfile hotspots + per-phase attribution of a saturated "
             "simulation (the inner-ring tuning loop)",
    )
    profile_parser.add_argument(
        "spec", nargs="?", default="1-3-5",
        help="tree spec to profile against",
    )
    profile_parser.add_argument("--operations", type=int, default=5000)
    profile_parser.add_argument("--read-fraction", type=float, default=0.9)
    profile_parser.add_argument("--keys", type=int, default=128)
    profile_parser.add_argument(
        "--rate", type=float, default=4.0,
        help="aggregate Poisson arrival rate (defaults saturate the group)",
    )
    profile_parser.add_argument("--zipf", type=float, default=1.1)
    profile_parser.add_argument("--clients", type=int, default=4)
    profile_parser.add_argument(
        "--service-time", type=float, default=1.0,
        help="per-message replica processing time (> 0 keeps the group "
             "saturated so the profile shows the steady-state hot path)",
    )
    profile_parser.add_argument("--timeout", type=float, default=800.0)
    profile_parser.add_argument("--seed", type=int, default=2026)
    profile_parser.add_argument("--batch-window", type=float, default=0.0)
    profile_parser.add_argument("--leases", action="store_true")
    profile_parser.add_argument(
        "--sort", choices=("tottime", "cumtime", "ncalls"),
        default="tottime",
        help="pstats sort key (tottime = the inner ring itself)",
    )
    profile_parser.add_argument(
        "--limit", type=int, default=25,
        help="profile rows to print",
    )
    profile_parser.add_argument(
        "--no-phases", action="store_true",
        help="skip the traced re-run and its per-phase attribution",
    )

    report_parser = sub.add_parser(
        "report",
        help="per-phase latency breakdown + flame summary of a traced run",
    )
    _add_trace_sim_arguments(report_parser)
    report_parser.add_argument(
        "--trace-file", default=None,
        help="report on a previously exported JSONL trace instead of "
             "running a fresh simulation",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run ONE replica site as a real TCP server (the runtime "
             "backend's per-process entry point)",
    )
    serve_parser.add_argument("--sid", type=int, required=True,
                              help="this site's replica SID (>= 0)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 = ephemeral; the bound port is announced on "
             "stdout as 'REPRO-SITE sid=... port=...')",
    )
    serve_parser.add_argument(
        "--service-time", type=float, default=0.0,
        help="artificial per-message processing delay in seconds",
    )

    cluster_parser = sub.add_parser(
        "cluster",
        help="spawn N local site processes + a coordinator front-end, run "
             "smoke get/put traffic over real TCP, optionally kill -9 a "
             "site mid-run",
    )
    cluster_parser.add_argument(
        "spec", nargs="?", default="1-3",
        help="tree spec for the replica group (e.g. 1-3, 1-3-5)",
    )
    cluster_parser.add_argument("--operations", type=int, default=200)
    cluster_parser.add_argument("--read-fraction", type=float, default=0.8)
    cluster_parser.add_argument("--keys", type=int, default=8)
    cluster_parser.add_argument("--seed", type=int, default=0)
    cluster_parser.add_argument(
        "--timeout", type=float, default=1.0,
        help="coordinator quorum-phase timeout in WALL seconds",
    )
    cluster_parser.add_argument("--max-attempts", type=int, default=4)
    cluster_parser.add_argument(
        "--kill-after-ops", type=int, default=None,
        help="SIGKILL a site after this many measured operations",
    )
    cluster_parser.add_argument(
        "--kill-site", type=int, default=None,
        help="which SID to kill (default: the deepest-level leaf, n-1)",
    )
    cluster_parser.add_argument(
        "--serve", action="store_true",
        help="after the smoke run, keep serving the get/put KV API over "
             "TCP until a client sends a stop frame",
    )
    cluster_parser.add_argument("--serve-port", type=int, default=0)
    cluster_parser.add_argument(
        "--deadline", type=float, default=120.0,
        help="hard wall-clock cap on the whole run (orphan safety net)",
    )

    all_parser = sub.add_parser("all", help="everything, default parameters")
    all_parser.add_argument("--p", type=float, default=0.7)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "example":
        _print_example()
    elif args.command in ("fig2", "fig3", "fig4"):
        _print_figure(args.command, args.p)
    elif args.command == "survey":
        _print_survey(args.n)
    elif args.command == "analyse":
        _print_analysis(args.spec, args.p)
    elif args.command == "sweep":
        from repro.analysis.sweeps import DEFAULT_SIZES

        _print_sweep(
            args.quantities,
            DEFAULT_SIZES if args.sizes is None else args.sizes,
            args.p, args.jobs,
        )
    elif args.command == "availability":
        _print_availability(
            args.spec, args.protocol, args.n, args.p, args.samples,
            seed=None if args.seed < 0 else args.seed, jobs=args.jobs,
        )
    elif args.command == "tune":
        _print_tuning(args.n, args.p, args.read_fraction)
    elif args.command == "simulate":
        _print_simulation(
            args.spec, args.operations, args.read_fraction, args.p, args.seed,
            protocol=args.protocol, n=args.n, repeats=args.repeats,
            jobs=args.jobs,
            retry_policy=_retry_policy_spec(args.retry_policy, args.backoff),
            detector=args.detector,
            batch_window=args.batch_window, leases=args.leases,
            reshape_at=args.reshape_at, reshape_spec=args.reshape_spec,
            reshape_online=not args.reshape_stop_the_world,
        )
    elif args.command == "shard":
        _print_shard(args)
    elif args.command == "chaos":
        _print_chaos(args)
    elif args.command == "reconfigure":
        _print_reconfigure(args)
    elif args.command == "trace":
        _print_trace(args)
    elif args.command == "profile":
        _print_profile(args)
    elif args.command == "report":
        _print_report(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "cluster":
        return _run_cluster(args)
    elif args.command == "all":
        _print_example()
        print()
        for fig in ("fig2", "fig3", "fig4"):
            _print_figure(fig, args.p)
        _print_survey(121)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
