"""Regression tests for the simulator's measurement/accounting bugs.

Each test here pins one of the fixed bugs and fails on the old code:

1. the monitor silently dropped failed operations' latencies;
2. the measured write cost ignored the version round's quorum;
3. ``_percentile`` used ``round()`` (banker's rounding) nearest-rank;
4. the coordinator never cleared stale commit acks between attempts, and
   released a lock on the lock-timeout path where none was ever granted.

(The fifth bug — the network rejecting drop/duplicate probability 1.0 —
is pinned in ``tests/sim/test_network.py``.)
"""

import random

import pytest

from repro.core.builder import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.sim.coordinator import (
    FailureReason,
    OperationOutcome,
    QuorumCoordinator,
    _OpContext,
)
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.events import Scheduler
from repro.sim.locks import LockManager, LockMode
from repro.sim.monitor import Monitor
from repro.sim.network import Network
from repro.sim.site import Site
from repro.sim.workload import WorkloadSpec


def outcome(op_type="read", success=True, started=0.0, finished=1.0, **kw):
    kw.setdefault("reason", FailureReason.NONE if success else FailureReason.TIMEOUT)
    return OperationOutcome(
        op_type=op_type, key="k", success=success,
        started_at=started, finished_at=finished, **kw
    )


class TestFailureLatencyAccounting:
    """Bug 1: failed operations' latencies vanished from the monitor."""

    def test_failure_latencies_recorded_separately(self):
        monitor = Monitor(replica_ids=(0, 1, 2))
        monitor.record(outcome(success=True, finished=5.0))
        monitor.record(outcome(success=False, finished=30.0))
        assert monitor.reads.latencies == [5.0]
        assert monitor.reads.failure_latencies == [30.0]
        assert monitor.reads.failure_latency_mean == 30.0
        assert monitor.reads.mean_latency == 5.0

    def test_summary_exposes_failure_latency(self):
        monitor = Monitor(replica_ids=(0,))
        monitor.record(outcome(success=False, finished=10.0))
        monitor.record(outcome("write", success=False, finished=30.0))
        summary = monitor.summary()
        assert summary["read_failure_latency_mean"] == 10.0
        assert summary["write_failure_latency_mean"] == 30.0
        assert summary["failure_latency_mean"] == 20.0
        assert monitor.failure_latency_mean == 20.0

    def test_failed_operations_really_are_slower(self):
        """End to end: timeouts and retries make failures expensive."""
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=150, read_fraction=0.5),
                drop_probability=0.25,
                timeout=6.0,
                max_attempts=2,
                seed=9,
            )
        )
        monitor = result.monitor
        assert monitor.reads.failed + monitor.writes.failed > 0
        # every failed operation's latency is captured, none dropped
        assert len(monitor.reads.failure_latencies) == monitor.reads.failed
        assert len(monitor.writes.failure_latencies) == monitor.writes.failed
        assert monitor.failure_latency_mean > 0.0
        # failed writes burned at least one full quorum timeout
        assert monitor.writes.failure_latency_mean >= 6.0


class TestWriteCostAccounting:
    """Bug 2: the version round's quorum was missing from write cost."""

    def test_version_quorum_counted(self):
        monitor = Monitor(replica_ids=(0, 1, 2, 3, 4, 5, 6))
        monitor.record(
            outcome(
                "write",
                quorum=frozenset({0, 1, 2, 3}),
                version_quorum=frozenset({0, 5, 6}),
            )
        )
        assert monitor.writes.mean_cost == 4.0
        assert monitor.writes.mean_version_cost == 3.0
        assert monitor.writes.mean_total_cost == 7.0
        summary = monitor.summary()
        assert summary["write_cost"] == 4.0
        assert summary["write_version_cost"] == 3.0
        assert summary["write_cost_total"] == 7.0

    def test_simulated_write_total_reconciles(self):
        """Measured total = data quorum + version quorum, and the version
        round is real (non-zero) — the old report hid it entirely."""
        summary = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=100, read_fraction=0.5),
                seed=4,
            )
        ).summary()
        assert summary["write_version_cost"] > 0
        assert summary["write_cost_total"] == pytest.approx(
            summary["write_cost"] + summary["write_version_cost"]
        )
        assert summary["write_cost_total"] > summary["write_cost"]


class TestPercentileInterpolation:
    """Bug 3: nearest-rank with ``round()`` hit banker's rounding."""

    def summarize(self, latencies):
        from repro.sim.monitor import OperationSummary

        summary = OperationSummary()
        summary.latencies = list(latencies)
        return summary

    def test_n1(self):
        summary = self.summarize([10.0])
        assert summary.latency_percentile(0.0) == 10.0
        assert summary.latency_percentile(0.5) == 10.0
        assert summary.latency_percentile(1.0) == 10.0

    def test_n2_median_interpolates(self):
        # round(0.5) == 0 under banker's rounding: the old code reported
        # the *lower* of two values as the median.
        assert self.summarize([1.0, 2.0]).latency_percentile(0.5) == 1.5

    def test_n4(self):
        summary = self.summarize([4.0, 1.0, 3.0, 2.0])
        assert summary.latency_percentile(0.5) == 2.5
        assert summary.latency_percentile(0.25) == 1.75
        assert summary.latency_percentile(1.0) == 4.0

    def test_n5(self):
        summary = self.summarize([5.0, 1.0, 4.0, 2.0, 3.0])
        assert summary.latency_percentile(0.5) == 3.0
        assert summary.latency_percentile(0.95) == pytest.approx(4.8)
        assert summary.latency_percentile(0.0) == 1.0


class CoordinatorRig:
    """Coordinator + sites assembly with a lock-wait timeout."""

    def __init__(self, wait_timeout=None):
        self.tree = from_spec("1-3-5")
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler, random.Random(0), latency=1.0)
        self.sites = [Site(sid, self.network) for sid in range(self.tree.n)]
        self.locks = LockManager(self.scheduler, wait_timeout=wait_timeout)
        self.coordinator = QuorumCoordinator(
            sid=-1,
            network=self.network,
            system=ArbitraryProtocol(self.tree),
            locks=self.locks,
            detector=lambda sid: self.sites[sid].is_up,
            rng=random.Random(1),
            timeout=8.0,
            writer_id=self.tree.n,
        )
        self.outcomes = []


class TestCoordinatorStateRegressions:
    """Bug 4: stale acks across attempts; release of an ungranted lock."""

    def test_start_attempt_clears_stale_acks(self):
        # White-box: commit acks left over from a previous attempt would
        # let ``_on_ack`` complete a fresh attempt's commit early with the
        # wrong quorum's acknowledgements.
        rig = CoordinatorRig()
        ctx = _OpContext(
            op_type="write", key="k", value="v",
            on_done=rig.outcomes.append, lock_token=1, started_at=0.0,
        )
        ctx.attempts = 1
        ctx.acks.update({0, 1, 2})
        ctx.replies[0] = object()
        ctx.votes[0] = True
        rig.coordinator._start_attempt(ctx)
        assert ctx.acks == set()
        assert ctx.replies == {} and ctx.votes == {}
        assert ctx.attempts == 2

    def test_lock_timeout_does_not_release_foreign_lock(self):
        rig = CoordinatorRig(wait_timeout=2.0)
        granted = []
        rig.locks.acquire(99, "k", LockMode.EXCLUSIVE, granted.append)
        rig.scheduler.run()
        assert granted == [True]

        rig.coordinator.read("k", rig.outcomes.append)
        rig.scheduler.run()

        assert len(rig.outcomes) == 1
        assert not rig.outcomes[0].success
        assert rig.outcomes[0].reason is FailureReason.LOCK_TIMEOUT
        # The old code released a lock it was never granted; the manager
        # now counts those, and the coordinator no longer does it.
        assert rig.locks.stats.spurious_releases == 0
        assert rig.locks.holders("k") == {99: LockMode.EXCLUSIVE}
