"""Unit tests for text table rendering."""

from repro.analysis.sweeps import figure2_series
from repro.analysis.tables import format_series, format_table
from repro.core.config import Configuration


class TestFormatTable:
    def test_headers_and_rows_present(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "1" in lines[2]
        assert "3" in lines[3]

    def test_title_line(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_columns_aligned(self):
        text = format_table(["col"], [[1], [100]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.5], [1234.5], [0.00001], [0.0]])
        assert "0.5" in text
        assert "e" in text.lower()  # scientific for extremes
        assert "0" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatSeries:
    def test_renders_all_configs(self):
        series = figure2_series(sizes=(15, 31))
        text = format_series(series, "read_cost", title="costs")
        assert "costs" in text
        for config in Configuration:
            assert str(config) in text
        assert "15" in text and "31" in text

    def test_subset_of_configs(self):
        series = figure2_series(sizes=(15,))
        text = format_series(
            series, "write_cost",
            configs=[Configuration.ARBITRARY, Configuration.HQC],
        )
        assert "ARBITRARY" in text and "HQC" in text
        assert "BINARY" not in text
