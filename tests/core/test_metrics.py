"""Unit tests for the closed-form metrics (Sections 3.2-3.3, Eq. 3.2)."""

import math

import pytest

from repro.core import metrics
from repro.core.builder import (
    algorithm_1,
    from_spec,
    mostly_read,
    mostly_write,
    unmodified_binary,
)


@pytest.fixture
def tree():
    return from_spec("1-3-5")


class TestPaperExample:
    """Every number of Section 3.4 at p = 0.7."""

    def test_read_cost(self, tree):
        assert metrics.read_cost(tree) == 2

    def test_read_availability(self, tree):
        expected = (1 - 0.3**3) * (1 - 0.3**5)
        assert metrics.read_availability(tree, 0.7) == pytest.approx(expected)
        assert metrics.read_availability(tree, 0.7) == pytest.approx(0.97, abs=0.005)

    def test_read_load(self, tree):
        assert metrics.read_load(tree) == pytest.approx(1 / 3)

    def test_write_costs(self, tree):
        assert metrics.write_cost_min(tree) == 3
        assert metrics.write_cost_max(tree) == 5
        assert metrics.write_cost_avg(tree) == pytest.approx(4.0)

    def test_write_availability(self, tree):
        expected = 1 - (1 - 0.7**3) * (1 - 0.7**5)
        assert metrics.write_availability(tree, 0.7) == pytest.approx(expected)
        assert metrics.write_availability(tree, 0.7) == pytest.approx(0.45, abs=0.005)

    def test_write_load(self, tree):
        assert metrics.write_load(tree) == pytest.approx(0.5)

    def test_expected_loads(self, tree):
        assert metrics.expected_read_load(tree, 0.7) == pytest.approx(0.35, abs=0.005)
        assert metrics.expected_write_load(tree, 0.7) == pytest.approx(0.775, abs=0.005)


class TestFormulaIdentities:
    def test_read_cost_identity(self, tree):
        """RD_cost = 1 + h - |K_log|."""
        assert metrics.read_cost(tree) == 1 + tree.height - tree.num_logical_levels

    def test_write_avg_cost_identity(self, tree):
        assert metrics.write_cost_avg(tree) == pytest.approx(
            tree.n / tree.num_physical_levels
        )

    def test_failure_complement(self, tree):
        for p in (0.5, 0.7, 0.9):
            assert metrics.write_availability(tree, p) == pytest.approx(
                1 - metrics.write_failure(tree, p)
            )

    def test_perfect_replicas(self, tree):
        assert metrics.read_availability(tree, 1.0) == 1.0
        assert metrics.write_availability(tree, 1.0) == 1.0
        assert metrics.expected_read_load(tree, 1.0) == pytest.approx(
            metrics.read_load(tree)
        )
        assert metrics.expected_write_load(tree, 1.0) == pytest.approx(
            metrics.write_load(tree)
        )

    def test_dead_replicas(self, tree):
        assert metrics.read_availability(tree, 0.0) == 0.0
        assert metrics.write_availability(tree, 0.0) == 0.0
        assert metrics.expected_read_load(tree, 0.0) == pytest.approx(1.0)
        assert metrics.expected_write_load(tree, 0.0) == pytest.approx(1.0)

    def test_probability_validation(self, tree):
        with pytest.raises(ValueError):
            metrics.read_availability(tree, 1.2)
        with pytest.raises(ValueError):
            metrics.write_failure(tree, -0.1)


class TestExtremeShapes:
    def test_mostly_read_is_rowa(self):
        tree = mostly_read(10)
        p = 0.8
        assert metrics.read_cost(tree) == 1
        assert metrics.write_cost_avg(tree) == pytest.approx(10)
        assert metrics.read_load(tree) == pytest.approx(0.1)
        assert metrics.write_load(tree) == pytest.approx(1.0)
        assert metrics.read_availability(tree, p) == pytest.approx(1 - 0.2**10)
        assert metrics.write_availability(tree, p) == pytest.approx(0.8**10)

    def test_mostly_write_quantities(self):
        n = 15
        tree = mostly_write(n)
        assert metrics.read_cost(tree) == (n - 1) // 2
        assert metrics.write_cost_min(tree) == 2
        assert metrics.read_load(tree) == pytest.approx(0.5)
        assert metrics.write_load(tree) == pytest.approx(2 / (n - 1))

    def test_unmodified_binary_loads(self):
        for n in (7, 15, 31):
            tree = unmodified_binary(n)
            assert metrics.write_load(tree) == pytest.approx(1 / math.log2(n + 1))
            assert metrics.read_load(tree) == pytest.approx(1.0)
            assert metrics.read_cost(tree) == math.log2(n + 1)

    def test_unmodified_write_availability_above_p(self):
        tree = unmodified_binary(31)
        for p in (0.55, 0.7, 0.9):
            assert metrics.write_availability(tree, p) > p

    def test_unmodified_read_availability_below_p(self):
        tree = unmodified_binary(31)
        for p in (0.55, 0.7, 0.9):
            assert metrics.read_availability(tree, p) < p


class TestAlgorithm1Claims:
    def test_headline_quantities(self):
        n = 400
        tree = algorithm_1(n)
        assert metrics.write_load(tree) == pytest.approx(1 / 20)
        assert metrics.read_load(tree) == pytest.approx(0.25)
        assert metrics.read_cost(tree) == 20
        assert metrics.write_cost_avg(tree) == pytest.approx(20)

    def test_limits(self):
        for p in (0.55, 0.7, 0.9):
            assert metrics.limit_read_availability(p) == pytest.approx(
                (1 - (1 - p) ** 4) ** 7
            )
            assert metrics.limit_write_availability(p) == pytest.approx(
                1 - (1 - p**4) ** 7
            )

    def test_finite_n_approaches_limits(self):
        tree = algorithm_1(40_000)
        for p in (0.6, 0.75, 0.9):
            assert metrics.read_availability(tree, p) == pytest.approx(
                metrics.limit_read_availability(p), abs=0.01
            )
            assert metrics.write_availability(tree, p) == pytest.approx(
                metrics.limit_write_availability(p), abs=0.01
            )

    def test_limit_probability_validation(self):
        with pytest.raises(ValueError):
            metrics.limit_read_availability(2.0)


class TestStability:
    def test_stable_at_high_p(self, tree):
        read_stable, write_stable = metrics.is_stable(tree, 0.99)
        assert read_stable and write_stable

    def test_unstable_at_low_p(self, tree):
        _read_stable, write_stable = metrics.is_stable(tree, 0.55)
        assert not write_stable


class TestAnalyse:
    def test_summary_fields(self, tree):
        summary = metrics.analyse(tree, p=0.7)
        assert summary.spec == "1-3-5"
        assert summary.n == 8
        assert summary.num_read_quorums == 15
        assert summary.num_write_quorums == 2
        assert summary.d == 3 and summary.e == 5
        assert summary.p == 0.7

    def test_summary_consistent_with_functions(self, tree):
        summary = metrics.analyse(tree, p=0.8)
        assert summary.read_availability == metrics.read_availability(tree, 0.8)
        assert summary.expected_write_load == metrics.expected_write_load(tree, 0.8)
