"""Edge-case tests for the coordinator: lock timeouts, stale replies,
write_with_system, quiescence accounting."""

import random

import pytest

from repro.core.builder import from_spec, mostly_write
from repro.core.protocol import ArbitraryProtocol
from repro.sim.coordinator import (
    FailureReason,
    QuorumCoordinator,
)
from repro.sim.events import Scheduler
from repro.sim.locks import LockManager, LockMode
from repro.sim.network import Network
from repro.sim.site import Site


def make_rig(spec="1-3-5", lock_timeout=None, max_attempts=3, seed=0):
    tree = from_spec(spec)
    scheduler = Scheduler()
    network = Network(scheduler, random.Random(seed), latency=1.0)
    sites = [Site(sid, network) for sid in range(tree.n)]
    locks = LockManager(scheduler, wait_timeout=lock_timeout)
    coordinator = QuorumCoordinator(
        sid=-1,
        network=network,
        system=ArbitraryProtocol(tree),
        locks=locks,
        detector=lambda sid: sites[sid].is_up,
        rng=random.Random(seed + 1),
        timeout=8.0,
        max_attempts=max_attempts,
        writer_id=tree.n,
    )
    return tree, scheduler, network, sites, locks, coordinator


class TestLockTimeout:
    def test_blocked_writer_times_out(self):
        tree, scheduler, network, sites, locks, coordinator = make_rig(
            lock_timeout=5.0
        )
        outcomes = []
        # park an exclusive lock under a foreign transaction id so the
        # coordinator's request queues until the wait timeout fires
        locks.acquire(999_999, "k", LockMode.EXCLUSIVE, lambda granted: None)
        coordinator.write("k", "v", outcomes.append)
        scheduler.run()
        assert outcomes and not outcomes[0].success
        assert outcomes[0].reason is FailureReason.LOCK_TIMEOUT
        assert coordinator.is_quiescent()


class TestStaleReplies:
    def test_replies_from_previous_attempt_ignored(self):
        tree, scheduler, network, sites, locks, coordinator = make_rig()
        outcomes = []
        coordinator.read("k", outcomes.append)
        # crash a quorum member while the request is in flight, forcing a
        # timeout and a second attempt; then recover it so the first
        # attempt's late reply (if any) would race the second attempt
        scheduler.run(until=0.5)
        sites[0].crash()
        scheduler.run(until=9.0)
        sites[0].recover()
        scheduler.run()
        assert len(outcomes) == 1  # on_done fired exactly once
        assert outcomes[0].success
        assert coordinator.is_quiescent()


class TestWriteWithSystem:
    def test_data_lands_on_override_quorum(self):
        tree, scheduler, network, sites, locks, coordinator = make_rig()
        override = ArbitraryProtocol(mostly_write(8))
        outcomes = []
        coordinator.write_with_system("k", "v", override, outcomes.append)
        scheduler.run()
        assert outcomes[0].success
        assert outcomes[0].quorum in set(override.write_quorums())

    def test_versions_still_come_from_current_system(self):
        tree, scheduler, network, sites, locks, coordinator = make_rig()
        outcomes = []
        coordinator.write("k", "v1", outcomes.append)
        scheduler.run()
        override = ArbitraryProtocol(mostly_write(8))
        coordinator.write_with_system("k", "v2", override, outcomes.append)
        scheduler.run()
        assert outcomes[1].timestamp.version == outcomes[0].timestamp.version + 1


class TestQuiescence:
    def test_counts_reads_and_writes(self):
        tree, scheduler, network, sites, locks, coordinator = make_rig()
        done = []
        assert coordinator.is_quiescent()
        coordinator.read("a", done.append)
        coordinator.write("b", 1, done.append)
        assert not coordinator.is_quiescent()
        scheduler.run()
        assert len(done) == 2
        assert coordinator.is_quiescent()

    def test_quiescent_after_failures_too(self):
        tree, scheduler, network, sites, locks, coordinator = make_rig(
            max_attempts=1
        )
        for sid in (0, 1, 2):
            sites[sid].crash()
        done = []
        coordinator.read("k", done.append)
        scheduler.run()
        assert done and not done[0].success
        assert coordinator.is_quiescent()


class TestSystemIntrospection:
    def test_system_universe(self):
        tree, *_rest, coordinator = make_rig()
        assert coordinator.system_universe() == frozenset(range(8))

    def test_system_universe_unavailable_for_opaque_systems(self):
        tree, scheduler, network, sites, locks, coordinator = make_rig()

        class Opaque:
            def select_read_quorum(self, live, rng=None):
                return frozenset({0})

            def select_write_quorum(self, live, rng=None):
                return frozenset({0})

        coordinator.set_system(Opaque())
        with pytest.raises(TypeError, match="universe"):
            coordinator.system_universe()
