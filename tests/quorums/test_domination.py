"""Unit tests for coterie domination theory."""

from itertools import combinations

import pytest

from repro.quorums.availability import exact_availability
from repro.quorums.domination import (
    dominates,
    dominating_coterie,
    is_non_dominated,
)


class TestDominates:
    def test_coterie_never_dominates_itself(self):
        quorums = [{0, 1}, {1, 2}, {0, 2}]
        assert not dominates(quorums, quorums)

    def test_smaller_quorums_dominate(self):
        # {{0}} dominates {{0,1}, {0,2}}: every quorum contains {0}
        assert dominates([{0}], [{0, 1}, {0, 2}])

    def test_majorities_dominate_star(self):
        """The 2-of-3 triangle dominates the star {01, 02} over {0,1,2}."""
        triangle = [{0, 1}, {1, 2}, {0, 2}]
        star = [{0, 1}, {0, 2}]
        assert dominates(triangle, star)
        assert not dominates(star, triangle)

    def test_incomparable_coteries(self):
        a = [{0}]
        b = [{1}]
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_domination_preserves_availability(self):
        """A dominating coterie is at least as available at every p."""
        star = [{0, 1}, {0, 2}]
        triangle = [{0, 1}, {1, 2}, {0, 2}]
        for p in (0.3, 0.5, 0.7, 0.9):
            assert exact_availability(
                triangle, p, universe=range(3)
            ) >= exact_availability(star, p, universe=range(3)) - 1e-12


class TestIsNonDominated:
    def test_singleton_coterie_is_nd(self):
        assert is_non_dominated([{0}], universe={0, 1, 2})

    def test_majority_coteries_are_nd(self):
        for n in (3, 5):
            majorities = [set(c) for c in combinations(range(n), (n + 1) // 2)]
            assert is_non_dominated(majorities, universe=range(n))

    def test_star_is_dominated(self):
        assert not is_non_dominated([{0, 1}, {0, 2}], universe={0, 1, 2})

    def test_even_majority_is_dominated(self):
        """3-of-4 is dominated (the classic wheel/asymmetric refinements)."""
        majorities = [set(c) for c in combinations(range(4), 3)]
        assert not is_non_dominated(majorities, universe=range(4))

    def test_universe_guard(self):
        with pytest.raises(ValueError, match="exceeds"):
            is_non_dominated([set(range(17))], universe=range(17))


class TestDominatingCoterie:
    def test_nd_input_is_returned_unchanged(self):
        triangle = [{0, 1}, {1, 2}, {0, 2}]
        result = dominating_coterie(triangle, universe=range(3))
        assert set(result.quorums) == {frozenset(q) for q in triangle}

    def test_star_gets_dominated_to_triangle_or_better(self):
        star = [{0, 1}, {0, 2}]
        result = dominating_coterie(star, universe=range(3))
        assert is_non_dominated(result.quorums, universe=range(3))
        assert dominates(result.quorums, star)

    def test_result_is_always_nd(self):
        systems = [
            [{0, 1, 2}],
            [{0, 1}, {2, 3, 0}],
            [set(c) for c in combinations(range(4), 3)],
        ]
        for quorums in systems:
            result = dominating_coterie(quorums, universe=range(4))
            assert is_non_dominated(result.quorums, universe=range(4))

    def test_availability_never_decreases(self):
        star = [{0, 1}, {0, 2}]
        result = dominating_coterie(star, universe=range(3))
        for p in (0.4, 0.6, 0.8):
            assert exact_availability(
                result.quorums, p, universe=range(3)
            ) >= exact_availability(star, p, universe=range(3)) - 1e-12
