"""Tests for exact and Monte-Carlo quorum-system availability."""

from itertools import combinations

import math
import pytest

from repro.quorums.availability import (
    best_not_to_replicate,
    estimate_availability_monte_carlo,
    exact_availability,
    system_availability,
)


class TestExactKnownValues:
    def test_single_replica(self):
        assert exact_availability([{0}], 0.8) == pytest.approx(0.8)

    def test_rowa_read(self):
        """Any of n singletons: 1 - (1-p)^n."""
        p = 0.7
        quorums = [{i} for i in range(4)]
        assert exact_availability(quorums, p) == pytest.approx(1 - 0.3**4)

    def test_rowa_write(self):
        """The full set: p^n."""
        assert exact_availability([set(range(4))], 0.7) == pytest.approx(0.7**4)

    def test_majority_3_of_5(self):
        """Binomial tail P[X >= 3]."""
        p = 0.8
        quorums = [set(c) for c in combinations(range(5), 3)]
        expected = sum(
            math.comb(5, k) * p**k * (1 - p) ** (5 - k) for k in range(3, 6)
        )
        assert exact_availability(quorums, p) == pytest.approx(expected)

    def test_two_disjoint_levels(self):
        """Write quorums of 1-3-5: 1 - (1-p^3)(1-p^5)."""
        p = 0.7
        quorums = [set(range(3)), set(range(3, 8))]
        expected = 1 - (1 - p**3) * (1 - p**5)
        assert exact_availability(quorums, p) == pytest.approx(expected)

    def test_p_zero_and_one(self):
        quorums = [{0, 1}, {1, 2}]
        assert exact_availability(quorums, 0.0) == pytest.approx(0.0)
        assert exact_availability(quorums, 1.0) == pytest.approx(1.0)


class TestPerElementProbabilities:
    def test_heterogeneous_availability(self):
        quorums = [{0, 1}]
        assert exact_availability(
            quorums, {0: 0.5, 1: 0.4}
        ) == pytest.approx(0.2)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="not in"):
            exact_availability([{0}], {0: 1.5})


class TestMethodAgreement:
    def test_inclusion_exclusion_matches_enumeration(self):
        """Force both exact methods onto the same mid-size system."""
        quorums = [{a, b} for a in range(3) for b in range(3, 8)]
        p = 0.65
        by_universe = exact_availability(quorums, p)
        # inclusion-exclusion path: widen the universe limit artificially by
        # calling the private function through a big-universe instance
        from repro.quorums import availability as module

        by_ie = module._availability_by_inclusion_exclusion(
            tuple(frozenset(q) for q in quorums),
            {i: p for i in range(8)},
        )
        assert by_ie == pytest.approx(by_universe, abs=1e-9)

    def test_monte_carlo_close_to_exact(self):
        quorums = [set(range(3)), set(range(3, 8))]
        p = 0.7
        exact = exact_availability(quorums, p)
        estimate = estimate_availability_monte_carlo(
            quorums, p, samples=200_000, seed=1
        )
        assert estimate == pytest.approx(exact, abs=0.01)

    def test_monte_carlo_deterministic_with_seed(self):
        quorums = [{0, 1}, {1, 2}]
        a = estimate_availability_monte_carlo(quorums, 0.6, samples=1000, seed=5)
        b = estimate_availability_monte_carlo(quorums, 0.6, samples=1000, seed=5)
        assert a == b

    def test_dispatcher_picks_exact_for_small(self):
        quorums = [{0, 1}, {1, 2}]
        assert system_availability(quorums, 0.7) == pytest.approx(
            exact_availability(quorums, 0.7)
        )

    def test_dispatcher_falls_back_to_monte_carlo(self):
        """Large universe AND many quorums -> Monte Carlo."""
        quorums = [set(range(i, i + 30)) for i in range(0, 60)]
        value = system_availability(quorums, 0.9, universe=range(90), samples=2000)
        assert 0.0 <= value <= 1.0

    def test_exact_raises_when_too_large(self):
        quorums = [set(range(i, i + 30)) for i in range(0, 60)]
        with pytest.raises(ValueError, match="too large"):
            exact_availability(quorums, 0.9, universe=range(90))


class TestMonotonicity:
    def test_availability_increases_with_p(self):
        quorums = [{0, 3}, {1, 3}, {2, 3}, {0, 1, 2}]
        values = [exact_availability(quorums, p) for p in (0.5, 0.6, 0.7, 0.8, 0.9)]
        assert values == sorted(values)

    def test_more_quorums_cannot_hurt(self):
        base = [{0, 1}]
        extended = [{0, 1}, {2, 3}]
        for p in (0.3, 0.5, 0.8):
            assert exact_availability(extended, p, universe=range(4)) >= (
                exact_availability(base, p, universe=range(4))
            )


class TestPelegWool:
    def test_below_half_prefer_single_king(self):
        assert best_not_to_replicate(0.4)
        assert not best_not_to_replicate(0.6)
