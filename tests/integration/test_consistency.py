"""Integration: one-copy equivalence under failures, loss and partitions.

The correctness contract of a replica control protocol: every successful
read returns the value of the latest successful write of that key, no
matter which replicas crashed, recovered, or were partitioned away in
between.  We drive the full stack through hostile schedules and audit every
outcome.
"""

import pytest

from repro.core.builder import from_spec, mostly_write, recommended_tree
from repro.sim import BernoulliFailures, SimulationConfig, WorkloadSpec, simulate
from repro.sim.failures import CompositeFailures, CrashRepairProcess, PartitionSchedule
from repro.sim.network import PartitionSpec


def audit_one_copy_equivalence(result) -> int:
    """Number of reads that returned something other than the latest write.

    Operations are audited in completion order.  With a single coordinator
    and per-key exclusive write locks, completion order is a valid
    serialisation order, so a successful read must return the latest
    previously-completed successful write (or None).
    """
    latest: dict = {}
    violations = 0
    for outcome in result.monitor.outcomes:
        if not outcome.success:
            continue
        if outcome.op_type == "write":
            latest[outcome.key] = outcome.value
        else:
            expected = latest.get(outcome.key)
            if expected is not None and outcome.value != expected:
                violations += 1
    return violations


class TestOneCopyEquivalence:
    def test_failure_free(self):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=2000, read_fraction=0.6, keys=8),
                seed=1,
            )
        )
        assert audit_one_copy_equivalence(result) == 0

    @pytest.mark.parametrize("seed", [2, 3, 4])
    def test_bernoulli_failures(self, seed):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=2000, read_fraction=0.5, keys=6),
                failures=BernoulliFailures(p=0.75, seed=seed, resample_every=45.0),
                max_attempts=3,
                timeout=8.0,
                seed=seed,
            )
        )
        assert audit_one_copy_equivalence(result) == 0

    def test_crash_repair_churn(self):
        result = simulate(
            SimulationConfig(
                tree=recommended_tree(30),
                workload=WorkloadSpec(operations=2500, read_fraction=0.5, keys=10),
                failures=CrashRepairProcess(
                    mean_uptime=120.0, mean_downtime=40.0, seed=5,
                ),
                max_attempts=3,
                timeout=8.0,
                seed=5,
            )
        )
        # churn must actually have happened
        assert sum(site.stats.crashes for site in result.sites) > 10
        assert audit_one_copy_equivalence(result) == 0

    def test_partition_window(self):
        tree = from_spec("1-3-5")
        partition = PartitionSpec.split(
            set(tree.replica_ids_at(1)),
            set(tree.replica_ids_at(2)) | {-1},
        )
        result = simulate(
            SimulationConfig(
                tree=tree,
                workload=WorkloadSpec(operations=1200, read_fraction=0.5, keys=6),
                failures=PartitionSchedule(partition, start=300.0, end=900.0),
                max_attempts=1,
                timeout=8.0,
                seed=6,
            )
        )
        assert result.network_stats.dropped_partition >= 0
        assert audit_one_copy_equivalence(result) == 0

    def test_lossy_network_with_churn(self):
        result = simulate(
            SimulationConfig(
                tree=mostly_write(9),
                workload=WorkloadSpec(operations=1500, read_fraction=0.4, keys=6),
                failures=CompositeFailures([
                    CrashRepairProcess(
                        mean_uptime=200.0, mean_downtime=30.0, seed=7,
                    ),
                ]),
                drop_probability=0.02,
                max_attempts=5,
                timeout=6.0,
                seed=7,
            )
        )
        assert audit_one_copy_equivalence(result) == 0

    def test_versions_strictly_increase_per_key(self):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=2000, read_fraction=0.3, keys=4),
                failures=BernoulliFailures(p=0.8, seed=9, resample_every=60.0),
                max_attempts=3,
                timeout=8.0,
                seed=9,
            )
        )
        last_version: dict = {}
        for outcome in result.monitor.outcomes:
            if outcome.op_type != "write" or not outcome.success:
                continue
            version = outcome.timestamp.version
            assert version > last_version.get(outcome.key, 0)
            last_version[outcome.key] = version

    def test_reads_never_go_backwards(self):
        """Monotone reads per key (a consequence of quorum intersection)."""
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=2000, read_fraction=0.7, keys=4),
                failures=BernoulliFailures(p=0.8, seed=10, resample_every=60.0),
                max_attempts=3,
                timeout=8.0,
                seed=10,
            )
        )
        highest_read: dict = {}
        for outcome in result.monitor.outcomes:
            if outcome.op_type != "read" or not outcome.success:
                continue
            if outcome.timestamp is None:
                continue
            version = outcome.timestamp.version
            assert version >= highest_read.get(outcome.key, 0)
            highest_read[outcome.key] = version
