"""Deterministic discrete-event scheduler.

A minimal event kernel: callbacks are scheduled at absolute simulation
times and executed in (time, insertion-order) order, so two events at the
same instant fire in the order they were scheduled — this makes every
simulation run bit-for-bit reproducible for a fixed RNG seed.

Queue entries are plain four-slot lists ``[time, sequence, callback, arg]``
rather than dataclass instances: the scheduler is the simulator's inner
ring (every message delivery and timeout passes through it), and list
construction + elementwise comparison is measurably cheaper than object
allocation with ``__lt__`` dispatch.  The unique, monotonically
increasing sequence number guarantees heap comparisons never reach the
(incomparable) callback slot and preserves the insertion-order tie-break.

The ``arg`` slot lets hot callers schedule ``(callback, argument)`` pairs
— a message delivery is ``(network._deliver, message)`` — instead of
allocating a closure per event; :data:`_NO_ARG` marks a plain thunk.
:meth:`Scheduler.call_later` is the handle-free variant for events that
are never cancelled (the vast majority), skipping the
:class:`EventHandle` allocation entirely.

Cancellation clears the callback slot in place (``entry[_CALLBACK] =
None``) — no tombstone flag, no handle bookkeeping beyond the shared
list.  Cancelled entries used to stay in the heap until their time came
up, which let schedule/cancel churn (lease revocation, retry timers)
grow the heap without bound; the scheduler now counts them and compacts
the queue in place — filter + ``heapify``, order-preserving because
(time, sequence) is a total order — once at least
:data:`_COMPACT_MIN_CANCELLED` cancelled entries make up half the queue.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any

# Entry slots: [time, sequence, callback-or-None, arg].
_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARG = 3

#: Sentinel ``arg`` meaning "call the callback with no argument at all".
#: (``None`` is a legitimate argument value, so identity is the test.)
_NO_ARG = object()

#: Compaction trigger: rebuild the queue in place once at least this many
#: cancelled entries make up >= half of it.  The floor keeps tiny queues
#: from compacting on every other cancel; the fraction bounds the heap at
#: ~2x its live size under any schedule/cancel churn pattern.
_COMPACT_MIN_CANCELLED = 64


class EventHandle:
    """Handle returned by :meth:`Scheduler.schedule`; allows cancellation."""

    __slots__ = ("_scheduler", "_entry")

    def __init__(self, scheduler: "Scheduler", entry: list) -> None:
        self._scheduler = scheduler
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        entry = self._entry
        if entry[_CALLBACK] is not None:
            entry[_CALLBACK] = None
            entry[_ARG] = None
            self._scheduler._note_cancelled()

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._entry[_TIME]


class Scheduler:
    """Priority-queue event loop with a virtual clock."""

    def __init__(self) -> None:
        self._queue: list[list] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def cancelled_events(self) -> int:
        """Cancelled entries currently dead in the queue (introspection)."""
        return self._cancelled

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
    ) -> EventHandle:
        """Run ``callback`` (with ``arg``, if given) after ``delay`` units."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        entry = [self._now + delay, self._sequence, callback, arg]
        self._sequence += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(self, entry)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
    ) -> EventHandle:
        """Run ``callback`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback, arg)

    def call_later(
        self,
        delay: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
    ) -> None:
        """Handle-free :meth:`schedule` for events that are never cancelled.

        The inner ring's workhorse: message deliveries and lock grants are
        fire-and-forget, so skipping the :class:`EventHandle` allocation
        (and the cancel bookkeeping it implies) is pure profit.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, [self._now + delay, self._sequence, callback, arg]
        )
        self._sequence += 1

    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
    ) -> None:
        """Handle-free :meth:`schedule_at` (see :meth:`call_later`).

        Computes the entry time as ``now + (time - now)`` — the same
        float round-trip :meth:`schedule_at` performs — so switching a
        call site between the two can never perturb event ordering.
        """
        delay = time - self._now
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, [self._now + delay, self._sequence, callback, arg]
        )
        self._sequence += 1

    def stop(self) -> None:
        """Make the innermost :meth:`run` loop return after the current event.

        Consumed by the next (or current) :meth:`run` call; :meth:`step`
        ignores it.  This is how a workload's completion callback halts
        the drain loop without per-event completion polling.
        """
        self._stopped = True

    def _note_cancelled(self) -> None:
        """Count a cancellation and compact the queue when dominated by dead
        entries.

        In-place (``queue[:] =``) so a :meth:`run` loop holding a local
        reference keeps seeing the live queue; ``heapify`` may reorder the
        internal array but pop order is fixed by the (time, sequence)
        total order, so execution order is untouched.
        """
        self._cancelled += 1
        queue = self._queue
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(queue)
        ):
            queue[:] = [
                entry for entry in queue if entry[_CALLBACK] is not None
            ]
            heapq.heapify(queue)
            self._cancelled = 0

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            callback = entry[_CALLBACK]
            if callback is None:
                self._cancelled -= 1
                continue
            # Clear the slot so a late cancel() of this entry stays a no-op
            # for the cancelled-entry accounting.
            entry[_CALLBACK] = None
            self._now = entry[_TIME]
            self._processed += 1
            arg = entry[_ARG]
            if arg is _NO_ARG:
                callback()
            else:
                callback(arg)
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Drain the queue, optionally stopping at a time or event budget;
        returns the number of events executed.

        ``until`` is an absolute simulation time: events scheduled strictly
        later stay queued and the clock is advanced to ``until``.  A
        pending :meth:`stop` — one requested while no run loop was active —
        is consumed immediately without executing anything.

        The pop/fire loop is inlined (rather than delegating to
        :meth:`step`) because this *is* the simulator's inner ring: one
        method call and one attribute load per event are measurable at
        millions of events.
        """
        if self._stopped:
            self._stopped = False
            return 0
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        # Fold the two optional limits into always-comparable sentinels so
        # the loop pays one comparison each instead of an ``is not None``
        # test plus a comparison per event.  ``inf`` never triggers either
        # branch, which is exactly the unlimited behaviour.
        budget = float("inf") if max_events is None else max_events
        horizon = float("inf") if until is None else until
        while queue:
            if executed >= budget:
                return executed
            head = queue[0]
            callback = head[_CALLBACK]
            if callback is None:
                pop(queue)
                self._cancelled -= 1
                continue
            if head[_TIME] > horizon:
                # Advance to the horizon, never backwards: with events
                # pending at times >= the current clock, a stale
                # ``until < now`` must not rewind virtual time (the
                # empty-queue tail below has the same guard).
                if until > self._now:
                    self._now = until
                return executed
            pop(queue)
            head[_CALLBACK] = None
            self._now = head[_TIME]
            self._processed += 1
            arg = head[_ARG]
            if arg is _NO_ARG:
                callback()
            else:
                callback(arg)
            executed += 1
            if self._stopped:
                self._stopped = False
                return executed
        if until is not None and until > self._now:
            self._now = until
        return executed
