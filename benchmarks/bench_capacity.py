"""Extension bench: system load as an operational throughput ceiling.

Naor & Wool define a quorum system's *capacity* as the inverse of its load:
a replica that appears in a fraction ``L`` of all quorums saturates once
the operation rate hits ``1 / (L * service_time)``.  The paper's whole
argument for low load is this bottleneck — here we make it observable by
giving every replica a unit service time and driving pure-read traffic at
increasing rates against two shapes with extreme read loads:

* MOSTLY-READ (load 1/n): work spreads, latency stays flat;
* UNMODIFIED (load 1: the root serves every read): the root's queue grows
  without bound as the rate approaches ``1/service_time``.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.builder import mostly_read, unmodified_binary
from repro.core.metrics import read_load
from repro.sim import SimulationConfig, WorkloadSpec, simulate

N = 15
SERVICE_TIME = 1.0
RATES = (0.3, 0.6, 0.9)


def _run(tree, rate: float, operations: int = 1500):
    config = SimulationConfig(
        tree=tree,
        workload=WorkloadSpec(
            operations=operations, read_fraction=1.0, keys=64,
            arrival="poisson", rate=rate,
        ),
        service_time=SERVICE_TIME,
        timeout=10_000.0,   # queueing delay must not trip retries
        seed=4,
    )
    result = simulate(config)
    worst_queue = max(site.stats.max_queue_depth for site in result.sites)
    return result, worst_queue


@pytest.fixture(scope="module")
def runs():
    shapes = {
        "MOSTLY-READ": mostly_read(N),
        "UNMODIFIED": unmodified_binary(N),
    }
    return {
        (name, rate): _run(tree, rate)
        for name, tree in shapes.items()
        for rate in RATES
    }


def test_capacity_table(runs, emit, benchmark):
    rows = []
    for (name, rate), (result, worst_queue) in runs.items():
        summary = result.summary()
        rows.append([
            name, rate,
            round(summary["read_latency_mean"], 2),
            round(result.monitor.reads.latency_percentile(0.95), 2),
            worst_queue,
        ])
    emit(
        "capacity",
        format_table(
            ["shape", "rate", "mean latency", "p95 latency", "max queue"],
            rows,
            title=f"Read latency vs offered rate (n={N}, service time "
                  f"{SERVICE_TIME}, read loads: MOSTLY-READ "
                  f"{read_load(mostly_read(N)):.3f}, UNMODIFIED "
                  f"{read_load(unmodified_binary(N)):.1f})",
        ),
    )
    benchmark(_run, mostly_read(N), 0.3, 200)


def test_low_load_shape_stays_flat(runs, benchmark):
    benchmark(lambda: None)
    latencies = [
        runs[("MOSTLY-READ", rate)][0].summary()["read_latency_mean"]
        for rate in RATES
    ]
    # far below every replica's saturation point: latency ~ RTT + service
    for latency in latencies:
        assert latency < 4.0
    assert latencies[-1] - latencies[0] < 1.0


def test_high_load_shape_saturates(runs, benchmark):
    benchmark(lambda: None)
    latencies = [
        runs[("UNMODIFIED", rate)][0].summary()["read_latency_mean"]
        for rate in RATES
    ]
    # the root is in every read quorum: utilisation = rate * service_time,
    # so latency climbs steeply as the rate approaches 1/service_time
    assert latencies == sorted(latencies)
    assert latencies[-1] > 2.0 * latencies[0]
    assert latencies[-1] > runs[("MOSTLY-READ", 0.9)][0].summary()[
        "read_latency_mean"
    ] * 2.0


def test_queue_depth_tracks_load(runs, benchmark):
    benchmark(lambda: None)
    for rate in RATES:
        spread_queue = runs[("MOSTLY-READ", rate)][1]
        root_queue = runs[("UNMODIFIED", rate)][1]
        assert root_queue >= spread_queue


def test_bottleneck_is_the_busiest_replica(runs, benchmark):
    """The per-replica touch counts match the analytical load profile."""
    benchmark(lambda: None)
    result, _ = runs[("UNMODIFIED", 0.6)]
    loads = result.monitor.per_replica_read_load()
    assert loads[0] == pytest.approx(1.0)  # the root serves every read
    result, _ = runs[("MOSTLY-READ", 0.6)]
    loads = result.monitor.per_replica_read_load()
    assert max(loads.values()) < 0.25      # ~1/15 each
