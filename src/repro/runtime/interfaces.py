"""The transport seam: what protocol logic is allowed to know about time
and message delivery.

The coordinator, site, lock, lease, and retry machinery were written
against the discrete-event simulator, but nothing in the *protocol* needs
virtual time or the simulator's delivery model — only the narrow surface
captured here:

* :class:`Clock` — scheduling primitives.  ``now`` is a monotone float
  (virtual seconds in the simulator, ``loop.time()`` wall seconds in the
  asyncio runtime); ``call_later`` is the handle-free fire-and-forget
  workhorse; ``schedule`` returns a cancellable handle (timeouts, batch
  windows).  The simulator's :class:`~repro.sim.events.Scheduler`
  satisfies it natively; :class:`~repro.runtime.clock.AsyncClock` adapts
  an asyncio event loop.
* :class:`Transport` — endpoint registry plus message delivery.  The
  simulator's :class:`~repro.sim.network.Network` satisfies it (latency
  models, partitions and drop probabilities are backend detail behind
  ``send``); :class:`~repro.runtime.transport.TcpTransport` carries the
  same messages as length-prefixed JSON frames over real sockets, and
  :class:`~repro.runtime.loopback.LoopbackTransport` is the minimal
  in-process implementation used by the seam conformance tests.

Protocol code must not reach past this surface — in particular it must
not touch ``network.scheduler`` (a simulator-only attribute) nor assume
zero-latency self-delivery.  Everything above the seam runs unchanged on
either backend; that is the repo's "same protocol logic, two backends"
contract.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class CancelHandle(Protocol):
    """A scheduled event that can still be revoked."""

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""


@runtime_checkable
class Clock(Protocol):
    """Scheduling surface the protocol layer is allowed to use.

    ``now`` must be monotone non-decreasing.  Callbacks scheduled with
    equal delays must fire in scheduling order (both backends guarantee
    it: the simulator by its (time, sequence) heap order, asyncio by the
    event loop's FIFO ready queue).
    """

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock)."""
        ...

    def call_later(
        self, delay: float, callback: Callable[..., Any], arg: Any = ...
    ) -> None:
        """Fire-and-forget: run ``callback`` (with ``arg``, if given)
        after ``delay`` seconds."""
        ...

    def schedule(
        self, delay: float, callback: Callable[..., Any], arg: Any = ...
    ) -> CancelHandle:
        """Like :meth:`call_later` but returns a cancellable handle."""
        ...


@runtime_checkable
class Endpoint(Protocol):
    """Anything registered on a transport: has liveness and receives."""

    up: bool

    def receive(self, message: Any) -> None:
        """Handle one protocol message addressed to this endpoint."""


@runtime_checkable
class Transport(Protocol):
    """Delivery surface the protocol layer is allowed to use.

    A transport owns a :class:`Clock` (exposed as ``clock``), a registry
    of local endpoints, and one-way message delivery.  Messages carry
    their own ``src``/``dst``; ``send`` may drop (dead peer, partition,
    loss model) — the protocol's timeout/retry machinery is the only
    delivery guarantee.
    """

    @property
    def clock(self) -> Clock:
        """The clock events on this transport are timed by."""
        ...

    def register(self, sid: int, endpoint: Endpoint) -> None:
        """Attach a local endpoint under site id ``sid``."""
        ...

    def send(self, message: Any) -> None:
        """Deliver ``message`` to ``message.dst`` (may drop silently)."""
        ...

    def broadcast(self, messages: list) -> None:
        """Deliver a batch of messages (same semantics as ``send``)."""
        ...
