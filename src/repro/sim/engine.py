"""One-call experiment wiring: tree + network + failures + workload.

:func:`simulate` assembles every piece of the Section 2.2 system model —
replica sites, lossy network, centralised lock manager, quorum coordinator,
failure injection and a client workload — runs the event loop to
completion, and returns the measured quantities side by side with the
closed-form predictions so experiments can compare them directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.builder import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.core.tree import ArbitraryTree
from repro.core.tuning import plan_reshape
from repro.fault.detector import SuspectList
from repro.fault.invariants import InvariantChecker
from repro.fault.retry import RetryPolicySpec
from repro.obs.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.quorums.system import QuorumSystem
from repro.sim.coordinator import QuorumCoordinator
from repro.sim.events import Scheduler
from repro.sim.failures import FailureInjector, NoFailures
from repro.sim.leases import LeaseCache
from repro.sim.locks import LockManager
from repro.sim.monitor import Monitor
from repro.sim.network import Network, NetworkStats
from repro.sim.reconfigure import ReconfigOutcome, TreeReconfigurer
from repro.sim.site import Site
from repro.sim.workload import Workload, WorkloadSpec

#: Network address of the (single) coordinator.
COORDINATOR_SID = -1


@dataclass
class SimulationConfig:
    """Everything a simulation run needs.

    Attributes
    ----------
    tree:
        The arbitrary-protocol tree to replicate over.  (To simulate a
        different protocol, pass ``system`` instead.)
    system:
        Alternative to ``tree``: any
        :class:`~repro.quorums.system.QuorumSystem` — every protocol in
        :mod:`repro.protocols.zoo` plugs in directly.  The replica count
        comes from the system's ``universe``.
    workload:
        The operation stream (mix, arrivals, key popularity).
    failures:
        Failure injector (default: none).
    latency:
        Per-message latency (a float for fixed, or a latency model callable).
    drop_probability:
        I.i.d. message loss probability.
    service_time:
        Per-message processing time at each replica (0 = instantaneous,
        the analytical setting; positive values add FIFO queueing so load
        becomes a throughput bottleneck).
    timeout:
        Coordinator quorum-phase timeout.
    max_attempts:
        Quorum attempts per operation; 1 measures raw availability.
    clients:
        Number of coordinators issuing operations (round-robin).  They
        share the centralised lock manager, transaction-id source and
        version registry, so concurrent clients stay serialisable.
    seed:
        Master RNG seed; every run with the same config is identical.
    trace:
        When True, wire a :class:`~repro.obs.recorder.TraceRecorder`
        through the whole stack (coordinator spans, network message
        counters, lock wait/hold metrics); the recorder lands on
        ``Monitor.recorder`` / ``SimulationResult.recorder``.  Off by
        default — the no-op recorder keeps the hot paths at full speed.
    retry_policy:
        Optional picklable :class:`~repro.fault.retry.RetryPolicySpec`.
        Each coordinator builds its own policy instance from it, with a
        seed derived from the coordinator master stream, so backoff
        jitter is deterministic per run and per coordinator.  ``None``
        keeps the legacy immediate-retry shape (and, crucially, the
        legacy RNG streams byte-for-byte).
    detector:
        When True, attach one shared
        :class:`~repro.fault.detector.SuspectList` to every coordinator:
        silent quorum members accumulate suspicion evidence and quorum
        selection prefers quorums avoiding suspected sites.
    probe_interval / suspect_threshold:
        Failure-detector tuning (how long suspicion lasts before a site
        is rehabilitated, and how many pieces of evidence it takes).
    check_invariants:
        When True, :func:`simulate` audits every completed operation with
        an :class:`~repro.fault.invariants.InvariantChecker` (quorum
        intersection + version monotonicity) and raises
        :class:`~repro.fault.invariants.InvariantViolation` on first
        blood.  The chaos CI job runs with this on.
    batch_window:
        Coordinator batching window in simulated time units.  0 (the
        default) keeps the legacy issue-immediately pipeline and its
        byte-identical RNG/event streams; positive values queue
        submissions per coordinator and flush them together (same-key
        reads coalesce into one quorum round, read groups share one
        selected quorum, same-key successor writes skip the version
        round).  See :mod:`repro.sim.coordinator`.
    leases:
        When True, every coordinator of the group shares one
        :class:`~repro.sim.leases.LeaseCache`: reads of a leased key are
        served from the cache without lock or quorum work, leases are
        revoked at a conflicting write's exclusive-lock grant and by
        liveness-epoch bumps, and committed writes re-grant them
        (write-through).  Off by default (legacy streams untouched).
    reshape_at:
        Simulated time at which to reconfigure the tree mid-run.  0 (the
        default) disables reconfiguration entirely and keeps the legacy
        event/RNG streams byte-identical.
    reshape_spec:
        Target tree spec (e.g. ``"1-4-4"``).  ``None`` plans the target
        from the live system instead: :func:`repro.core.tuning.plan_reshape`
        picks the shape for the workload's read fraction and demotes the
        failure detector's chronic suspects to the deepest level.
    reshape_online:
        True (default) runs the epoch-based online transition (dual
        quorums, traffic flowing); False runs the stop-the-world baseline
        (the pool pauses, drains, migrates, resumes).
    """

    tree: ArbitraryTree | None = None
    system: QuorumSystem | None = None
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    failures: FailureInjector = field(default_factory=NoFailures)
    latency: Any = 1.0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    timeout: float = 16.0
    max_attempts: int = 3
    clients: int = 1
    service_time: float = 0.0
    seed: int = 0
    trace: bool = False
    retry_policy: RetryPolicySpec | None = None
    detector: bool = False
    probe_interval: float = 30.0
    suspect_threshold: int = 1
    check_invariants: bool = False
    batch_window: float = 0.0
    leases: bool = False
    reshape_at: float = 0.0
    reshape_spec: str | None = None
    reshape_online: bool = True

    def resolve(self) -> tuple[QuorumSystem, int]:
        """The (quorum system, replica count) pair this config describes.

        Replica SIDs must be ``0..n-1``; the count is derived from the
        system's universe.
        """
        if self.tree is not None:
            if self.system is not None:
                raise ValueError("provide either tree or system, not both")
            return ArbitraryProtocol(self.tree), self.tree.n
        if self.system is None:
            raise ValueError("provide either tree or system")
        universe = self.system.universe
        n = len(universe)
        if universe != frozenset(range(n)):
            raise ValueError(
                f"the system's universe must be 0..{n - 1} to map onto "
                "simulated replica sites"
            )
        return self.system, n


@dataclass
class SimulationResult:
    """Everything measured by one simulation run."""

    config: SimulationConfig
    monitor: Monitor
    network_stats: NetworkStats
    sites: list[Site]
    duration: float
    events_processed: int
    #: The run's trace recorder (a no-op recorder unless ``config.trace``).
    recorder: NullRecorder = NULL_RECORDER
    #: The shared failure detector (``None`` unless ``config.detector``).
    suspects: SuspectList | None = None
    #: The safety auditor (``None`` unless ``config.check_invariants``).
    invariants: InvariantChecker | None = None
    #: The shared read-lease cache (``None`` unless ``config.leases``).
    leases: LeaseCache | None = None
    #: The mid-run reconfiguration's outcome (``None`` unless
    #: ``config.reshape_at`` scheduled one).
    reconfiguration: ReconfigOutcome | None = None

    def window_read_availability(self, start: float, end: float) -> float | None:
        """Fraction of reads *submitted* in ``[start, end]`` that completed
        successfully within the window (``None`` if none were submitted).

        The honest transition metric: a read deferred by a stop-the-world
        pause keeps its original submission time, so it counts as started
        inside the window and as unavailable if it only completed after
        the window closed.
        """
        started = [
            outcome
            for outcome in self.monitor.outcomes
            if outcome.op_type == "read" and start <= outcome.started_at <= end
        ]
        if not started:
            return None
        served = sum(
            1
            for outcome in started
            if outcome.success and outcome.finished_at <= end
        )
        return served / len(started)

    def summary(self) -> dict[str, float]:
        """Monitor headline numbers plus network/message counters."""
        result = self.monitor.summary()
        result["messages_sent"] = float(self.network_stats.sent)
        result["messages_delivered"] = float(self.network_stats.delivered)
        result["messages_dropped"] = float(self.network_stats.dropped)
        result["duration"] = self.duration
        return result


@dataclass
class ReplicaGroup:
    """One self-contained replica group: the unit a shard is made of.

    A group owns its message fabric, replica sites, lock manager and
    coordinator set — exactly the paper's single-object system.  The
    classic engine builds one group; the sharded store
    (:mod:`repro.shard.store`) composes many on a shared scheduler, one
    per shard of the keyspace.
    """

    system: QuorumSystem
    n: int
    network: Network
    sites: list[Site]
    locks: LockManager
    coordinators: list[QuorumCoordinator]
    suspects: SuspectList | None
    #: The group's shared read-lease cache (``None`` unless configured).
    leases: LeaseCache | None = None


def build_replica_group(
    config: SimulationConfig,
    system: QuorumSystem,
    n: int,
    scheduler: Scheduler,
    recorder: NullRecorder,
    network_seed: int,
    coordinator_seed: int,
) -> ReplicaGroup:
    """Wire one replica group (network + sites + locks + coordinators).

    ``network_seed`` / ``coordinator_seed`` are the group's child seeds —
    the caller owns the derivation order (the classic single-group build
    keeps the legacy network/workload/coordinator order; the sharded
    build derives one pair per shard).  Coordinators within the group
    share one :class:`~repro.quorums.selection.SelectionIndex` (when the
    system qualifies) so the packed quorum tables and viable-row caches
    are built once per group, not once per client.
    """
    if config.clients < 1:
        raise ValueError("need at least one client")
    from repro.sim.transactions import TransactionIdSource

    network = Network(
        scheduler,
        random.Random(network_seed),
        latency=config.latency,
        drop_probability=config.drop_probability,
        duplicate_probability=config.duplicate_probability,
        recorder=recorder,
    )
    sites = [
        Site(sid, network, service_time=config.service_time)
        for sid in range(n)
    ]
    locks = LockManager(scheduler, recorder=recorder)
    tx_ids = TransactionIdSource()
    version_floor: dict = {}
    coordinator_master = random.Random(coordinator_seed)
    # One SuspectList shared by every coordinator: evidence gathered by one
    # client's timeouts steers every client's selection (the detector
    # models a site-local subsystem, not per-operation state).
    suspects = (
        SuspectList(
            probe_interval=config.probe_interval,
            threshold=config.suspect_threshold,
            recorder=recorder,
        )
        if config.detector
        else None
    )
    # Like the version floor, the lease cache is *group* state: one
    # client's write must revoke the lease every other client would
    # otherwise serve reads from.
    leases = (
        LeaseCache(epoch=network.current_liveness_epoch)
        if config.leases
        else None
    )
    coordinators: list[QuorumCoordinator] = []
    shared_selector = None
    for index in range(config.clients):
        coordinator_sid = COORDINATOR_SID - index

        def detector(sid: int, _csid: int = coordinator_sid) -> bool:
            # From a coordinator's vantage point a replica on the far side
            # of a partition is indistinguishable from a crashed one
            # (Section 2.2 treats partitioning as a special case of site
            # and link failures).
            return sites[sid].up and network.reachable(_csid, sid)

        # The coordinator's own seed is drawn unconditionally (legacy
        # stream); the retry-policy jitter seed is drawn *only* when a
        # policy is configured, so unconfigured runs keep byte-identical
        # coordinator streams.
        coordinator_rng = random.Random(coordinator_master.getrandbits(64))
        retry_policy = (
            config.retry_policy.build(coordinator_master.getrandbits(64))
            if config.retry_policy is not None
            else None
        )
        coordinators.append(
            QuorumCoordinator(
                sid=coordinator_sid,
                network=network,
                system=system,
                locks=locks,
                detector=detector,
                rng=coordinator_rng,
                timeout=config.timeout,
                max_attempts=config.max_attempts,
                writer_id=n + index,  # distinct from every replica SID
                tx_ids=tx_ids,
                version_floor=version_floor,
                recorder=recorder,
                liveness_epoch=network.current_liveness_epoch,
                retry_policy=retry_policy,
                suspects=suspects,
                selector=shared_selector,
                batch_window=config.batch_window,
                leases=leases,
            )
        )
        if index == 0:
            shared_selector = coordinators[0].selector
    config.failures.install(scheduler, sites, network)
    return ReplicaGroup(
        system=system,
        n=n,
        network=network,
        sites=sites,
        locks=locks,
        coordinators=coordinators,
        suspects=suspects,
        leases=leases,
    )


def build_simulation(
    config: SimulationConfig,
    invariants: InvariantChecker | None = None,
) -> tuple[Scheduler, Workload, Monitor, Network, list[Site]]:
    """Wire a simulation without running it (useful for custom driving).

    ``invariants`` splices a safety auditor in front of the monitor's
    outcome callback; pass your own instance to keep a reference (one is
    created internally when ``config.check_invariants`` asks for auditing
    but none is supplied).
    """
    system, n = config.resolve()
    scheduler = Scheduler()
    rng = random.Random(config.seed)
    recorder: NullRecorder = TraceRecorder() if config.trace else NULL_RECORDER
    # Child RNGs are seeded with 64 fresh bits each: seeding from
    # rng.random() would collapse the seed space to a 53-bit float and
    # correlate the child streams.  The derivation order is part of the
    # determinism contract: network, workload, then one *dedicated* master
    # stream for coordinators, so changing ``clients`` never perturbs the
    # network or workload streams (and client k's stream is the same in
    # every run that has at least k clients).
    network_seed = rng.getrandbits(64)
    workload_seed = rng.getrandbits(64)
    coordinator_seed = rng.getrandbits(64)
    monitor = Monitor(replica_ids=tuple(range(n)), recorder=recorder)
    if invariants is None and config.check_invariants:
        invariants = InvariantChecker()
    group = build_replica_group(
        config, system, n, scheduler, recorder, network_seed, coordinator_seed
    )
    workload = Workload(
        spec=config.workload,
        coordinator=group.coordinators,
        scheduler=scheduler,
        rng=random.Random(workload_seed),
        on_outcome=(
            invariants.wrap(monitor.record)
            if invariants is not None
            else monitor.record
        ),
    )
    return scheduler, workload, monitor, group.network, group.sites


def run_workload(
    scheduler: Scheduler, workload: Workload, max_events: int
) -> int:
    """Drive the event loop until the workload completes; returns events run.

    Stops as soon as the last operation reports its outcome (periodic
    injectors such as resampling failures would otherwise keep the queue
    non-empty forever).  ``max_events`` is a safety net against
    configuration errors, raising rather than spinning.  Shared by the
    classic single-object :func:`simulate` and the sharded
    :func:`repro.shard.store.simulate_sharded`.
    """
    operations = workload.spec.operations
    # The completion hook halts the scheduler's inlined drain loop the
    # instant the last outcome reports, so the loop never pays a
    # per-event completion poll.  A workload that completes before the
    # loop starts (zero operations) leaves the stop pending and run()
    # consumes it without executing anything.
    workload.add_on_complete(scheduler.stop)
    workload.start()
    executed = scheduler.run(max_events=max_events)
    if workload.completed < operations:
        if executed >= max_events:
            raise RuntimeError(
                f"simulation exceeded {max_events} events "
                f"({workload.completed}/{operations} ops done)"
            )
        raise RuntimeError(
            "event queue drained before the workload completed "
            f"({workload.completed}/{operations} ops done)"
        )
    return executed


def _reshape_target(
    config: SimulationConfig, coordinator: QuorumCoordinator
) -> ArbitraryTree:
    """The reconfiguration target, resolved at trigger time.

    An explicit ``reshape_spec`` wins; otherwise the plan comes from the
    live system — the tuning advisor picks the shape for the workload's
    read fraction, and the failure detector's *chronic* suspects (if a
    detector is attached) are demoted to the deepest, widest level.
    """
    if config.reshape_spec is not None:
        return from_spec(config.reshape_spec)
    n = len(coordinator.system_universe())
    suspects = coordinator.suspects
    suspected = (
        suspects.chronic(coordinator.scheduler.now)
        if suspects is not None
        else frozenset()
    )
    plan = plan_reshape(
        n, suspected, read_fraction=config.workload.read_fraction
    )
    return plan.tree


def install_reshape(
    config: SimulationConfig,
    scheduler: Scheduler,
    coordinator: QuorumCoordinator,
    invariants: InvariantChecker | None,
) -> list[ReconfigOutcome]:
    """Schedule the configured mid-run reconfiguration; returns its outbox.

    The returned list receives the :class:`ReconfigOutcome` when the
    transition finishes — drain the scheduler past the workload if it is
    still empty (see :func:`simulate`).
    """
    reconfigurer = TreeReconfigurer(coordinator, invariants=invariants)
    keys = [f"k{index}" for index in range(config.workload.keys)]
    outbox: list[ReconfigOutcome] = []

    def launch() -> None:
        target = _reshape_target(config, coordinator)
        if config.reshape_online:
            reconfigurer.reconfigure_online(target, keys, outbox.append)
        else:
            reconfigurer.reconfigure(target, keys, outbox.append, wait=True)

    scheduler.schedule_at(config.reshape_at, launch)
    return outbox


def simulate(config: SimulationConfig, max_events: int = 5_000_000) -> SimulationResult:
    """Run one configured simulation until the workload completes.

    A thin wrapper: :func:`build_simulation` wires the single replica
    group (the one-shard degenerate case of the
    :mod:`repro.shard` multi-shard build) and :func:`run_workload`
    drains the event loop.  With ``reshape_at`` set, the scheduled
    reconfiguration runs concurrently with the workload and the loop is
    drained until its outcome lands as ``result.reconfiguration``.
    """
    invariants = InvariantChecker() if config.check_invariants else None
    scheduler, workload, monitor, network, sites = build_simulation(
        config, invariants=invariants
    )
    reconfig_outbox: list[ReconfigOutcome] | None = None
    if config.reshape_at > 0.0:
        reconfig_outbox = install_reshape(
            config, scheduler, workload.coordinators[0], invariants
        )
    run_workload(scheduler, workload, max_events)
    if reconfig_outbox is not None:
        # The workload can complete while the migration (or a paused
        # pool's drain poll) is still in flight; keep stepping until the
        # reconfiguration reports — it always terminates (attempts are
        # bounded, drain polls end when in-flight operations do).
        drained = 0
        while not reconfig_outbox and scheduler.step():
            drained += 1
            if drained > max_events:
                raise RuntimeError(
                    "reconfiguration did not complete within the event cap"
                )
    return SimulationResult(
        config=config,
        monitor=monitor,
        network_stats=network.stats,
        sites=sites,
        duration=scheduler.now,
        events_processed=scheduler.processed_events,
        recorder=monitor.recorder,
        suspects=workload.coordinators[0].suspects,
        invariants=invariants,
        leases=workload.coordinators[0].leases,
        reconfiguration=(
            reconfig_outbox[0] if reconfig_outbox else None
        ),
    )
