"""Replica sites: processing unit + storage + SID (Section 2.2).

Sites are fail-stop: while crashed they process nothing (in-flight messages
addressed to them are dropped by the network), and failures are transient —
on recovery the site resumes with its stable storage (the versioned store
and the 2PC prepare log) intact.

A site answers read/version requests directly and participates in 2PC for
writes.  The prepare log enforces write/write exclusion at the replica: a
second transaction asking to prepare a key that is already prepared (and
undecided) is refused, which keeps the site safe even if the centralised
lock manager is bypassed.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.sim.messages import (
    AbortMessage,
    AckMessage,
    CommitMessage,
    DecisionRequest,
    Message,
    PrepareMessage,
    ReadReply,
    ReadRequest,
    VersionReply,
    VersionRequest,
    VoteMessage,
)
from repro.sim.network import Network
from repro.sim.replica import Timestamp, VersionedStore


class SiteState(enum.Enum):
    """Fail-stop site lifecycle."""

    UP = "up"
    DOWN = "down"


@dataclass
class _PreparedWrite:
    txid: int
    key: Any
    value: Any
    timestamp: Timestamp
    coordinator: int


@dataclass
class SiteStats:
    """Per-site counters used by load measurements."""

    reads_served: int = 0
    versions_served: int = 0
    prepares: int = 0
    commits: int = 0
    aborts: int = 0
    refused_prepares: int = 0
    refused_reads: int = 0
    max_queue_depth: int = 0
    crashes: int = 0
    recoveries: int = 0

    @property
    def quorum_touches(self) -> int:
        """How many quorum memberships this site served (read + prepare)."""
        return self.reads_served + self.prepares


class Site:
    """One replica site.

    Parameters
    ----------
    sid:
        Unique non-negative site identifier.
    network:
        The message fabric to register on.
    service_time:
        Time the processing unit spends on each message.  Zero (default)
        means infinitely fast replicas — the paper's analytical setting.
        A positive value gives each site a FIFO queue served sequentially,
        which turns *system load* into an operational quantity: the busiest
        replica's queue bounds throughput at ``1 / (load * service_time)``
        (Naor-Wool capacity).
    """

    def __init__(
        self, sid: int, network: Network, service_time: float = 0.0
    ) -> None:
        if sid < 0:
            raise ValueError("replica SIDs must be non-negative")
        if service_time < 0:
            raise ValueError("service time cannot be negative")
        self.sid = sid
        self._network = network
        self._state = SiteState.UP
        #: Liveness as a plain attribute (mirrors ``_state``): the network
        #: checks it on every delivery and the service loop on every
        #: message, where a property + enum comparison is measurable.
        self.up = True
        self._clock = network.clock
        self._service_time = service_time
        self._queue: deque[Message] = deque()
        self._busy = False
        self.store = VersionedStore()
        self._prepared: dict[int, _PreparedWrite] = {}
        self._prepared_keys: dict[Any, int] = {}
        self.stats = SiteStats()
        network.register(sid, self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        """Whether the site currently processes messages."""
        return self.up

    @property
    def state(self) -> SiteState:
        """The current lifecycle state."""
        return self._state

    def crash(self) -> None:
        """Fail-stop: stop processing (storage and prepare log persist).

        Queued but unprocessed messages are lost — they lived in volatile
        memory.
        """
        if self._state is SiteState.UP:
            self._state = SiteState.DOWN
            self.up = False
            self.stats.crashes += 1
            self._queue.clear()
            self._busy = False
            self._network.bump_liveness_epoch()

    def recover(self) -> None:
        """Transient failure over: resume with stable storage intact.

        Recovery runs the 2PC termination protocol: for every in-doubt
        prepared transaction the site asks its coordinator for the decision
        (the coordinator answers commit or, presuming abort, abort), so a
        crash between vote and decision cannot block the key forever.
        """
        if self._state is not SiteState.DOWN:
            return
        self._state = SiteState.UP
        self.up = True
        self.stats.recoveries += 1
        self._network.bump_liveness_epoch()
        for prepared in list(self._prepared.values()):
            self._network.send(
                DecisionRequest(
                    src=self.sid,
                    dst=prepared.coordinator,
                    txid=prepared.txid,
                )
            )

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Accept one delivered message (the network checks liveness).

        With a zero service time the message is handled inline; otherwise
        it joins the FIFO queue and the processing unit works it off at one
        message per ``service_time``.
        """
        if not self.up:  # defensive: the network already filters
            return
        if self._service_time == 0.0:
            self._handle(message)
            return
        queue = self._queue
        queue.append(message)
        stats = self.stats
        depth = len(queue)
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        queue = self._queue
        if not queue or not self.up:
            self._busy = False
            return
        self._busy = True
        self._clock.call_later(
            self._service_time, self._service_done, queue.popleft()
        )

    def _service_done(self, message: Message) -> None:
        # _handle and _serve_next inlined: this is the saturated
        # replica's per-message hot path, and the two extra call frames
        # are measurable.  Behaviour is identical — a crash mid-service
        # drops the message (``up`` is false) and parks the loop.
        if self.up:
            handler = _HANDLERS.get(message.__class__)
            if handler is None:
                raise TypeError(
                    f"site {self.sid} cannot handle {type(message).__name__}"
                )
            handler(self, message)
            queue = self._queue
            if queue:
                self._clock.call_later(
                    self._service_time, self._service_done, queue.popleft()
                )
                return
        self._busy = False

    def _handle(self, message: Message) -> None:
        handler = _HANDLERS.get(message.__class__)
        if handler is None:
            raise TypeError(f"site {self.sid} cannot handle {type(message).__name__}")
        handler(self, message)

    def _on_read(self, message: ReadRequest) -> None:
        if message.key in self._prepared_keys:
            # In doubt for this key: the stored value may be stale the
            # instant the pending commit lands, so serving it could violate
            # one-copy equivalence.  Stay silent; the coordinator retries
            # with another replica.
            self.stats.refused_reads += 1
            return
        self.stats.reads_served += 1
        entry = self.store.read(message.key)
        # Positional construction (src, dst, key, request_id, value,
        # timestamp): replies are the replica's highest-volume allocation
        # and keyword binding costs real time at this call rate.
        self._network.send(
            ReadReply(
                self.sid, message.src, message.key, message.request_id,
                entry.value, entry.timestamp,
            )
        )

    def _on_version(self, message: VersionRequest) -> None:
        if message.key in self._prepared_keys:
            self.stats.refused_reads += 1
            return
        self.stats.versions_served += 1
        # Positional: (src, dst, key, request_id, timestamp).
        self._network.send(
            VersionReply(
                self.sid, message.src, message.key, message.request_id,
                self.store.version_of(message.key),
            )
        )

    def _on_prepare(self, message: PrepareMessage) -> None:
        holder = self._prepared_keys.get(message.key)
        if holder is not None and holder != message.txid:
            self.stats.refused_prepares += 1
            self._network.send(
                VoteMessage(self.sid, message.src, message.txid, False)
            )
            return
        self.stats.prepares += 1
        self._prepared[message.txid] = _PreparedWrite(
            txid=message.txid,
            key=message.key,
            value=message.value,
            timestamp=message.timestamp,
            coordinator=message.src,
        )
        self._prepared_keys[message.key] = message.txid
        self._network.send(
            VoteMessage(self.sid, message.src, message.txid, True)
        )

    def _on_commit(self, message: CommitMessage) -> None:
        prepared = self._prepared.pop(message.txid, None)
        if prepared is not None:
            self._prepared_keys.pop(prepared.key, None)
            self.store.apply_write(
                prepared.key, prepared.value, prepared.timestamp
            )
            self.stats.commits += 1
        # Always ack, even for an already-applied (retransmitted) commit —
        # the coordinator may have lost the first ack.
        self._network.send(
            AckMessage(self.sid, message.src, message.txid, True)
        )

    def _on_abort(self, message: AbortMessage) -> None:
        prepared = self._prepared.pop(message.txid, None)
        if prepared is not None:
            self._prepared_keys.pop(prepared.key, None)
        self.stats.aborts += 1
        self._network.send(
            AckMessage(self.sid, message.src, message.txid, False)
        )

    def __repr__(self) -> str:
        return f"Site(sid={self.sid}, state={self._state.value})"


#: Exact-type message dispatch for :meth:`Site._handle` — one dict probe
#: instead of an isinstance chain on the replica's hottest entry point.
#: Protocol messages are never subclassed, so exact-class lookup is safe;
#: anything absent (replies, decision requests) raises just like the old
#: chain's final ``else``.
_HANDLERS = {
    ReadRequest: Site._on_read,
    VersionRequest: Site._on_version,
    PrepareMessage: Site._on_prepare,
    CommitMessage: Site._on_commit,
    AbortMessage: Site._on_abort,
}
