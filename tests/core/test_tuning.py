"""Unit tests for the frequency-aware configuration advisor."""

import pytest

from repro.core import metrics
from repro.core.tuning import candidate_trees, recommend


class TestCandidatePool:
    def test_contains_every_level_count(self):
        pool = candidate_trees(12)
        level_counts = {tree.num_physical_levels for tree in pool}
        assert level_counts >= set(range(1, 13))

    def test_all_candidates_valid(self):
        for tree in candidate_trees(20):
            assert tree.n == 20
            assert tree.satisfies_assumption()

    def test_max_levels_cap(self):
        pool = candidate_trees(20, max_levels=3)
        # the near-even sweep is capped; the paper shapes may exceed it
        sweep = [t for t in pool if max(t.physical_level_sizes) >= 20 // 3]
        assert sweep

    def test_no_duplicate_specs(self):
        specs = [tree.spec() for tree in candidate_trees(15)]
        assert len(specs) == len(set(specs))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            candidate_trees(0)


class TestRecommend:
    def test_pure_reads_pick_one_level(self):
        result = recommend(24, p=0.9, read_fraction=1.0)
        assert result.tree.num_physical_levels == 1  # ROWA-like

    def test_pure_writes_pick_many_levels(self):
        result = recommend(24, p=0.99, read_fraction=0.0)
        assert result.tree.num_physical_levels >= 8

    def test_balanced_mix_in_between(self):
        read_heavy = recommend(24, p=0.9, read_fraction=0.9)
        balanced = recommend(24, p=0.9, read_fraction=0.5)
        write_heavy = recommend(24, p=0.9, read_fraction=0.1)
        assert (
            read_heavy.tree.num_physical_levels
            <= balanced.tree.num_physical_levels
            <= write_heavy.tree.num_physical_levels
        )

    def test_alternatives_sorted(self):
        result = recommend(16, read_fraction=0.5)
        scores = [candidate.score for candidate in result.alternatives]
        assert scores == sorted(scores)
        assert result.best is result.alternatives[0]

    def test_best_no_worse_than_paper_recipe(self):
        """The advisor's expected-load mix beats (or ties) recommended_tree."""
        from repro.core.builder import recommended_tree

        n, p, f = 48, 0.9, 0.5
        result = recommend(n, p=p, read_fraction=f)
        paper = recommended_tree(n)
        paper_score = f * metrics.expected_read_load(paper, p) + (
            1 - f
        ) * metrics.expected_write_load(paper, p)
        assert result.best.score <= paper_score + 1e-9

    def test_objective_load(self):
        result = recommend(16, read_fraction=0.5, objective="load")
        assert result.objective == "load"
        item = result.best
        assert item.score == pytest.approx(
            0.5 * metrics.read_load(item.tree) + 0.5 * metrics.write_load(item.tree)
        )

    def test_objective_cost(self):
        result = recommend(16, read_fraction=1.0, objective="cost")
        # pure reads + cost objective -> one wide level (read cost 1)
        assert result.tree.num_physical_levels == 1

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            recommend(16, objective="latency")

    def test_read_fraction_validated(self):
        with pytest.raises(ValueError, match="read_fraction"):
            recommend(16, read_fraction=1.5)

    def test_result_metadata(self):
        result = recommend(16, p=0.8, read_fraction=0.3)
        assert result.p == 0.8
        assert result.read_fraction == 0.3
        assert result.tree is result.best.tree


class TestReshapePlanning:
    def test_plan_uses_recommended_shape(self):
        from repro.core.tuning import plan_reshape

        plan = plan_reshape(8, read_fraction=0.5)
        assert plan.tree.spec() == recommend(8, read_fraction=0.5).tree.spec()
        assert plan.evicted == ()
        assert plan.sid_order == tuple(range(8))

    def test_suspects_demoted_to_the_deepest_level(self):
        from repro.core.tuning import plan_reshape

        plan = plan_reshape(8, suspected={1, 4}, read_fraction=0.5)
        assert plan.evicted == (1, 4)
        deepest = max(plan.tree.physical_levels)
        deepest_sids = {
            node.replica_id
            for node in plan.tree.physical_nodes_at(deepest)
        }
        assert {1, 4} <= deepest_sids
        # demotion, not removal: the fleet is unchanged
        assert sorted(plan.tree.replica_ids()) == list(range(8))

    def test_out_of_range_suspects_ignored(self):
        from repro.core.tuning import plan_reshape

        plan = plan_reshape(8, suspected={5, 99, -1})
        assert plan.evicted == (5,)

    def test_planned_tree_satisfies_assumption(self):
        from repro.core.tuning import plan_reshape

        for suspects in (set(), {0}, {0, 1, 2, 3}):
            plan = plan_reshape(12, suspected=suspects, read_fraction=0.8)
            assert plan.tree.satisfies_assumption()
            assert plan.tree.n == 12
