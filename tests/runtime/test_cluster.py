"""Real-process cluster: spawn, serve, SIGKILL, shut down clean.

These tests spawn actual ``repro serve`` child processes and talk to
them over real localhost TCP — the full runtime stack.  One test drives
everything (spawn is the expensive part): smoke traffic, the kill -9
chaos injection with reads surviving, the KV front-end API, and an
orphan-free shutdown.
"""

import asyncio

from repro.runtime.cluster import (
    KVFrontend,
    LocalCluster,
    kv_request,
    percentile,
    run_traffic,
)


def test_cluster_serves_sigkill_survives_and_shuts_down_clean():
    async def main():
        cluster = LocalCluster(spec="1-3", timeout=1.0, max_attempts=4)
        await cluster.start()
        try:
            # -- basic KV semantics over real TCP --------------------
            put = await cluster.put("greeting", "hello")
            assert put.success and put.timestamp.version == 1
            got = await cluster.get("greeting")
            assert got.success and got.value == "hello"

            # -- front-end API (external-client frames) --------------
            frontend = KVFrontend(cluster)
            await frontend.start()
            results = await kv_request(
                "127.0.0.1", frontend.port,
                [
                    {"kind": "put", "id": 1, "key": "fk", "value": "fv"},
                    {"kind": "get", "id": 2, "key": "fk"},
                    {"kind": "get", "id": 3, "key": "missing"},
                ],
            )
            await frontend.stop()
            assert [r["ok"] for r in results] == [True, True, True]
            assert results[1]["value"] == "fv"
            assert results[1]["version"] == 1
            assert results[2]["value"] is None  # never written

            # -- smoke traffic with a mid-run SIGKILL ----------------
            # Read-only measured loop: the kill gate is about READ
            # availability (1-3 write quorums need all three sites).
            report = await run_traffic(
                cluster, operations=30, read_fraction=1.0, keys=4,
                seed=5, kill_after_ops=10,
            )
            assert report.killed_site == 2
            assert not cluster.sites[2].alive  # SIGKILL landed
            assert report.reads == 30 and report.read_failures == 0
            assert report.post_kill_reads == 20
            assert report.post_kill_read_failures == 0
            assert report.ops_per_sec > 0
            summary = report.summary()
            assert summary["read_p99_ms"] >= summary["read_p50_ms"] >= 0

            # -- writes are honestly unavailable without their quorum
            lost = await cluster.put("greeting", "goodbye")
            assert not lost.success
            still = await cluster.get("greeting")
            assert still.success and still.value == "hello"
        finally:
            return_codes = await cluster.stop()
        assert cluster.orphans() == []  # nothing left running
        assert all(rc is not None for rc in return_codes)
        assert return_codes[2] == -9  # the SIGKILLed site

    asyncio.run(asyncio.wait_for(main(), 90.0))


def test_percentile_nearest_rank():
    samples = [float(value) for value in range(1, 101)]
    assert percentile(samples, 50) == 50.0
    assert percentile(samples, 99) == 99.0
    assert percentile(samples, 100) == 100.0
    assert percentile([], 50) == 0.0
    assert percentile([42.0], 99) == 42.0
