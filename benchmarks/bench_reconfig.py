"""Online vs stop-the-world reconfiguration: availability through the epoch.

The quiescent migration pauses every coordinator in the group, drains the
in-flight traffic, copies each key and only then swaps trees — every
operation that arrives during the window is deferred past its end, so the
group's availability *during* the reconfiguration is exactly zero.  The
epoch-based online transition instead moves the group onto dual quorums
(old ∪ new read and write quorums) and migrates under normal locking, so
client traffic keeps completing while the shape changes.

This bench runs the same 1-3-5 → 1-4-4 reshape both ways under an open
Poisson client stream with the safety invariant checker armed across the
epoch boundary, plus the survivability case: the online transition
launched in the middle of a ``flapping`` partition chaos scenario.
Recorded per case: read availability *inside the transition window*
(operations submitted during the window that completed by its end), whole
run availability, read/write latency percentiles and the invariant
counters.  Acceptance (the CI smoke gate):

* online window read availability **>= 0.95** — the epoch boundary is
  (nearly) invisible to clients;
* stop-the-world window read availability **<= 0.05** — the honest cost
  of quiescence the online path removes;
* **zero invariant violations** in every case, including the
  reconfigure-during-flapping run (which may legitimately commit *or*
  roll back — both must leave the audit clean).

Every number is simulated time from a seeded run — bit-stable across
hosts, so the recorded JSON is a regression baseline, not a noisy timing.

Run directly::

    PYTHONPATH=src python benchmarks/bench_reconfig.py [--smoke] [--out P]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    from benchmarks.perf_harness import write_bench_json
except ImportError:  # direct `python benchmarks/bench_reconfig.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from perf_harness import write_bench_json

from repro.core.builder import from_spec
from repro.runner.tasks import SimParams, build_sim_config
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec

SPEC = "1-3-5"
TARGET = "1-4-4"
RESHAPE_AT = 200.0
READ_FRACTION = 0.5
RATE = 0.25
KEYS = 32
SEED = 3

#: Seed for the chaos composition case (picked so the flapping schedule
#: overlaps the transition window).
CHAOS_SEED = 5


def _config(operations: int, online: bool) -> SimulationConfig:
    return SimulationConfig(
        tree=from_spec(SPEC),
        workload=WorkloadSpec(
            operations=operations,
            read_fraction=READ_FRACTION,
            keys=KEYS,
            arrival="poisson",
            rate=RATE,
        ),
        clients=2,
        seed=SEED,
        check_invariants=True,
        reshape_at=RESHAPE_AT,
        reshape_spec=TARGET,
        reshape_online=online,
    )


def _chaos_config(operations: int) -> SimulationConfig:
    config, _label = build_sim_config(SimParams(
        spec=SPEC, operations=operations, read_fraction=READ_FRACTION,
        seed=CHAOS_SEED, max_attempts=4, detector=True, chaos="flapping",
        check_invariants=True, reshape_at=RESHAPE_AT,
    ))
    return config


def _point(case: str, config: SimulationConfig) -> dict:
    started = time.perf_counter()
    result = simulate(config)
    wall = time.perf_counter() - started
    summary = result.summary()
    outcome = result.reconfiguration
    checker = result.invariants
    assert outcome is not None and checker is not None
    window = result.window_read_availability(
        outcome.started_at, outcome.finished_at
    )
    point = {
        "case": case,
        "mode": outcome.mode,
        "status": outcome.status.value,
        "rolled_back": outcome.rolled_back,
        "epoch": outcome.epoch,
        "target": outcome.new_tree.spec(),
        "keys_migrated": outcome.keys_migrated,
        "keys_total": outcome.keys_total,
        "window_start": round(outcome.started_at, 2),
        "window_end": round(outcome.finished_at, 2),
        "window_duration": round(outcome.duration, 2),
        "window_read_availability": (
            None if window is None else round(window, 4)
        ),
        "read_availability": round(summary["read_availability"], 4),
        "write_availability": round(summary["write_availability"], 4),
        "read_p50": round(result.monitor.reads.latency_percentile(0.5), 3),
        "read_p99": round(result.monitor.reads.latency_percentile(0.99), 3),
        "write_p99": round(result.monitor.writes.latency_percentile(0.99), 3),
        "invariants_checked": checker.checked,
        "invariant_violations": len(checker.violations),
        "wall_seconds": round(wall, 3),
    }
    window_text = "-" if window is None else f"{window:.4f}"
    print(
        f"{case:>22}  window avail {window_text:>7}  "
        f"rd p99 {point['read_p99']:>7.2f}  "
        f"wr p99 {point['write_p99']:>7.2f}  "
        f"violations {point['invariant_violations']}"
    )
    return point


def run(smoke: bool, out: str | None = None) -> dict:
    operations = 500 if smoke else 2000
    points = [
        _point("reconfig/online", _config(operations, online=True)),
        _point("reconfig/stop-the-world", _config(operations, online=False)),
        _point("reconfig/online+flapping", _chaos_config(operations)),
    ]
    by_case = {point["case"]: point for point in points}
    online = by_case["reconfig/online"]
    quiescent = by_case["reconfig/stop-the-world"]
    chaotic = by_case["reconfig/online+flapping"]
    summary = {
        "online_window_read_availability": online[
            "window_read_availability"
        ],
        "stw_window_read_availability": quiescent[
            "window_read_availability"
        ],
        "online_read_p99": online["read_p99"],
        "stw_read_p99": quiescent["read_p99"],
        "online_write_p99": online["write_p99"],
        "stw_write_p99": quiescent["write_p99"],
        "flapping_status": chaotic["status"],
        "flapping_rolled_back": chaotic["rolled_back"],
        "total_invariant_violations": sum(
            point["invariant_violations"] for point in points
        ),
    }
    bench = "reconfig_smoke" if smoke and out else "reconfig"
    path = write_bench_json(bench, points, summary, out=out)
    print(f"\nwrote {path}")
    print(f"summary: {summary}")
    # The ISSUE's acceptance gates.
    assert summary["online_window_read_availability"] >= 0.95, (
        "online transition starved reads: window availability "
        f"{summary['online_window_read_availability']}"
    )
    assert summary["stw_window_read_availability"] <= 0.05, (
        "stop-the-world unexpectedly served reads inside its window "
        "(the quiescence pause is broken)"
    )
    assert chaotic["status"] == "success" or chaotic["rolled_back"], (
        f"flapping reconfiguration ended non-terminally: {chaotic['status']}"
    )
    assert summary["total_invariant_violations"] == 0, (
        "reconfiguration violated a safety invariant"
    )
    return summary


def test_reconfig_perf_smoke(emit):
    """CI smoke: both migration modes + the chaos case on a short stream.

    Writes to a ``_smoke`` JSON so a local pytest run never clobbers the
    recorded full-run baseline in ``BENCH_reconfig.json``.
    """
    from benchmarks.perf_harness import RESULTS_DIR

    summary = run(
        smoke=True, out=str(RESULTS_DIR / "BENCH_reconfig_smoke.json")
    )
    emit(
        "reconfig_smoke",
        "reconfig smoke: window read availability "
        f"{summary['online_window_read_availability']:.2f} online vs "
        f"{summary['stw_window_read_availability']:.2f} stop-the-world, "
        f"flapping -> {summary['flapping_status']}, "
        f"{summary['total_invariant_violations']} violations",
    )
    assert summary["total_invariant_violations"] == 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="short stream only (CI reconfiguration-job tier)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default benchmarks/results/BENCH_reconfig.json)",
    )
    args = parser.parse_args()
    run(smoke=args.smoke, out=args.out)
