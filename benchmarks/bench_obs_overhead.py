"""Overhead of the observability layer on the simulation hot paths.

The tracing instrumentation (``repro.obs``) must be free when disabled:
every hook in the coordinator/network/lock-manager hot paths is guarded by
a single ``recorder.enabled`` attribute check against the shared no-op
:data:`~repro.obs.recorder.NULL_RECORDER`.  This bench quantifies that
claim on the simulation benchmark workload:

* times the sim with tracing disabled (the default) and enabled, and
  reports the enabled/disabled ratio — the *opt-in* cost of full tracing;
* microbenchmarks the guard itself (`if recorder.enabled:` on the no-op
  recorder), counts how many guard touchpoints the workload actually hits
  (from the enabled run's span/counter/metric volumes, doubled for
  begin/end pairs and padded 2x for guards that record nothing), and
  bounds the disabled-path overhead as ``touchpoints x guard_cost /
  disabled_runtime``;
* asserts that bound stays under 2% (the PR's acceptance criterion).

Run directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick] [--out P]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    from benchmarks.perf_harness import time_callable, write_bench_json
except ImportError:  # direct `python benchmarks/bench_obs_overhead.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from perf_harness import time_callable, write_bench_json

from repro.core.builder import from_spec
from repro.obs.recorder import NULL_RECORDER
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec

#: Acceptance ceiling for the disabled-recorder overhead on the sim bench.
MAX_DISABLED_OVERHEAD = 0.02


def _config(operations: int, trace: bool) -> SimulationConfig:
    return SimulationConfig(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(
            operations=operations, read_fraction=0.5, keys=32,
            arrival="poisson", rate=0.3,
        ),
        drop_probability=0.03,
        timeout=8.0,
        max_attempts=3,
        seed=17,
        trace=trace,
    )


def _guard_cost_ns(iterations: int = 2_000_000) -> float:
    """Median per-check cost of ``if recorder.enabled:`` on the no-op
    recorder, with the bare loop's own cost subtracted out."""
    recorder = NULL_RECORDER
    guarded, bare = [], []
    for _ in range(3):
        start = time.perf_counter_ns()
        for _ in range(iterations):
            if recorder.enabled:
                raise AssertionError("null recorder must stay disabled")
        guarded.append(time.perf_counter_ns() - start)
        start = time.perf_counter_ns()
        for _ in range(iterations):
            pass
        bare.append(time.perf_counter_ns() - start)
    per_check = (sorted(guarded)[1] - sorted(bare)[1]) / iterations
    return max(per_check, 0.1)  # clock jitter floor


def _touchpoints(recorder) -> int:
    """Guard evaluations the workload hit, counted from an enabled run.

    Every span costs a begin and an end guard, counters and metric
    observations one each; the total is doubled again to cover guards
    that fire but record nothing (not-granted branches, phase closes).
    """
    spans = len(recorder.spans)
    counters = sum(
        value for group in recorder.counters.values() for value in group.values()
    )
    metrics = sum(len(values) for values in recorder.metrics.values())
    return 2 * (2 * spans + counters + metrics)


def run(quick: bool = False, out: str | None = None) -> dict:
    operations = 400 if quick else 2000
    repeat = 2 if quick else 3

    disabled_ns, disabled_result = time_callable(
        lambda: simulate(_config(operations, trace=False)), repeat
    )
    enabled_ns, enabled_result = time_callable(
        lambda: simulate(_config(operations, trace=True)), repeat
    )
    guard_ns = _guard_cost_ns(500_000 if quick else 2_000_000)
    touchpoints = _touchpoints(enabled_result.recorder)
    disabled_overhead = touchpoints * guard_ns / disabled_ns
    enabled_ratio = enabled_ns / disabled_ns

    # identical event history either way: tracing must not perturb the run
    assert (
        disabled_result.events_processed == enabled_result.events_processed
    ), "tracing changed the simulation itself"

    results = [
        {
            "case": f"sim/operations={operations}/trace=off",
            "median_ns": disabled_ns,
            "repeat": repeat,
        },
        {
            "case": f"sim/operations={operations}/trace=on",
            "median_ns": enabled_ns,
            "repeat": repeat,
            "spans": len(enabled_result.recorder.spans),
        },
        {
            "case": "guard/if-recorder.enabled",
            "median_ns_per_check": round(guard_ns, 3),
            "touchpoints": touchpoints,
        },
    ]
    summary = {
        "disabled_overhead_bound": round(disabled_overhead, 6),
        "disabled_overhead_limit": MAX_DISABLED_OVERHEAD,
        "enabled_over_disabled": round(enabled_ratio, 3),
        "quick": quick,
    }
    print(
        f"disabled run {disabled_ns / 1e6:.1f} ms, "
        f"enabled run {enabled_ns / 1e6:.1f} ms "
        f"({enabled_ratio:.2f}x), guard {guard_ns:.1f} ns x "
        f"{touchpoints} touchpoints -> disabled overhead bound "
        f"{disabled_overhead:.4%} (limit {MAX_DISABLED_OVERHEAD:.0%})"
    )
    write_bench_json("obs_overhead", results, summary, out=out)
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-recorder overhead bound {disabled_overhead:.4%} "
        f"exceeds {MAX_DISABLED_OVERHEAD:.0%}"
    )
    return summary


def test_obs_overhead_smoke(emit):
    """CI smoke: quick tier; the disabled path must stay under 2%.

    Writes to a ``_smoke`` JSON so a local pytest run never clobbers the
    recorded full-run trajectory in ``BENCH_obs_overhead.json``.
    """
    from benchmarks.perf_harness import RESULTS_DIR

    summary = run(
        quick=True, out=str(RESULTS_DIR / "BENCH_obs_overhead_smoke.json")
    )
    emit(
        "obs_overhead_smoke",
        "obs overhead smoke: disabled-path bound "
        f"{summary['disabled_overhead_bound']:.4%} (< 2%), "
        f"tracing opt-in cost {summary['enabled_over_disabled']:.2f}x",
    )
    assert summary["disabled_overhead_bound"] < MAX_DISABLED_OVERHEAD


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload only (CI smoke tier)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default benchmarks/results/BENCH_obs_overhead.json)",
    )
    arguments = parser.parse_args()
    run(quick=arguments.quick, out=arguments.out)
