"""Unit tests for the majority quorum protocol."""

import math
from itertools import combinations

import pytest

from repro.protocols.majority import MajorityProtocol
from repro.quorums.availability import exact_availability
from repro.quorums.base import is_intersecting
from repro.quorums.load import optimal_load


class TestThresholds:
    def test_default_simple_majority_odd(self):
        protocol = MajorityProtocol(5)
        assert protocol.read_threshold == 3
        assert protocol.write_threshold == 3

    def test_default_simple_majority_even(self):
        protocol = MajorityProtocol(6)
        assert protocol.read_threshold == 4

    def test_paper_cost_for_odd_n(self):
        """Both operations cost (n+1)/2 for odd n (the intro's figure)."""
        for n in (3, 5, 7, 9):
            protocol = MajorityProtocol(n)
            assert protocol.read_cost() == (n + 1) / 2
            assert protocol.write_cost() == (n + 1) / 2

    def test_asymmetric_thresholds(self):
        protocol = MajorityProtocol(5, read_threshold=2, write_threshold=4)
        assert protocol.read_cost() == 2
        assert protocol.write_cost() == 4

    def test_read_write_intersection_enforced(self):
        with pytest.raises(ValueError, match="read/write"):
            MajorityProtocol(5, read_threshold=2, write_threshold=3)

    def test_write_write_intersection_enforced(self):
        with pytest.raises(ValueError, match="Concurrent|concurrent"):
            MajorityProtocol(6, read_threshold=5, write_threshold=3)

    def test_threshold_range_enforced(self):
        with pytest.raises(ValueError, match="thresholds"):
            MajorityProtocol(5, read_threshold=0, write_threshold=5)


class TestQuantities:
    def test_load_at_least_half(self):
        """The intro: majority systems impose load >= 0.5."""
        for n in (3, 5, 9, 15):
            assert MajorityProtocol(n).write_load() >= 0.5

    def test_load_formula(self):
        protocol = MajorityProtocol(7)
        assert protocol.read_load() == pytest.approx(4 / 7)

    def test_availability_binomial_tail(self):
        protocol = MajorityProtocol(5)
        p = 0.75
        expected = sum(
            math.comb(5, k) * p**k * (1 - p) ** (5 - k) for k in range(3, 6)
        )
        assert protocol.read_availability(p) == pytest.approx(expected)

    def test_availability_grows_with_n_for_good_p(self):
        values = [MajorityProtocol(n).write_availability(0.8) for n in (3, 9, 21)]
        assert values == sorted(values)

    def test_availability_matches_exact_enumeration(self):
        protocol = MajorityProtocol(5)
        exact = exact_availability(
            list(protocol.read_quorums()), 0.7, universe=range(5)
        )
        assert protocol.read_availability(0.7) == pytest.approx(exact)


class TestQuorums:
    def test_quorum_count(self):
        protocol = MajorityProtocol(5)
        assert len(list(protocol.read_quorums())) == math.comb(5, 3)

    def test_quorums_intersect(self):
        protocol = MajorityProtocol(5)
        assert is_intersecting(list(protocol.write_quorums()))

    def test_load_is_lp_optimal(self):
        protocol = MajorityProtocol(5)
        lp = optimal_load(list(protocol.read_quorums()), universe=range(5))
        assert lp.load == pytest.approx(protocol.read_load())

    def test_asymmetric_quorums_cross_intersect(self):
        protocol = MajorityProtocol(5, read_threshold=2, write_threshold=4)
        reads = list(protocol.read_quorums())
        writes = list(protocol.write_quorums())
        for read in reads:
            for write in writes:
                assert read & write
