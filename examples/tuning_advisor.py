"""Configuring the tree from the read/write mix (Section 3.3).

The paper's selling point is that one protocol covers the whole spectrum:
reshaping the tree — never the protocol — adapts the system to its
workload.  This example sweeps the read fraction from write-heavy to
read-heavy and lets the tuning advisor pick the best tree shape for each
mix, showing the continuum from MOSTLY-WRITE-like to MOSTLY-READ-like
configurations.

Run:  python examples/tuning_advisor.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import analyse
from repro.core.tuning import recommend

N = 48
P = 0.9


def main() -> None:
    rows = []
    for read_fraction in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
        result = recommend(N, p=P, read_fraction=read_fraction)
        tree = result.tree
        metrics = analyse(tree, p=P)
        rows.append([
            f"{read_fraction:.2f}",
            tree.spec(),
            tree.num_physical_levels,
            round(result.best.score, 4),
            round(metrics.expected_read_load, 4),
            round(metrics.expected_write_load, 4),
            metrics.read_cost,
            round(metrics.write_cost_avg, 1),
        ])
    print(format_table(
        ["read frac", "best tree", "|K_phy|", "objective",
         "E[L_RD]", "E[L_WR]", "RD cost", "WR cost"],
        rows,
        title=f"Tuning advisor over the read/write spectrum (n={N}, p={P})",
    ))
    print()
    print("Reading the table top to bottom: as reads take over, the advisor")
    print("collapses the tree from many thin physical levels (cheap writes)")
    print("into a single wide level (cheap reads, i.e. ROWA / MOSTLY-READ).")
    print()

    # How the paper's own prescription compares at a balanced mix:
    balanced = recommend(N, p=P, read_fraction=0.5)
    print(f"balanced mix winner: {balanced.tree.spec()} "
          f"(score {balanced.best.score:.4f})")
    for candidate in balanced.alternatives[:5]:
        print(f"  runner-up {candidate.tree.spec():>20}  "
              f"score {candidate.score:.4f}  "
              f"E[L_RD]={candidate.read_metric:.3f}  "
              f"E[L_WR]={candidate.write_metric:.3f}")


if __name__ == "__main__":
    main()
