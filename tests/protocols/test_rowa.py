"""Unit tests for ROWA, including equivalence with MOSTLY-READ."""

import pytest

from repro.core.builder import mostly_read
from repro.core.config import ArbitraryTreeModel
from repro.protocols.rowa import RowaProtocol
from repro.quorums.base import BiCoterie
from repro.quorums.load import optimal_load


@pytest.fixture
def rowa():
    return RowaProtocol(6)


class TestQuantities:
    def test_costs(self, rowa):
        assert rowa.read_cost() == 1
        assert rowa.write_cost() == 6

    def test_loads(self, rowa):
        assert rowa.read_load() == pytest.approx(1 / 6)
        assert rowa.write_load() == 1.0

    def test_availability(self, rowa):
        p = 0.8
        assert rowa.read_availability(p) == pytest.approx(1 - 0.2**6)
        assert rowa.write_availability(p) == pytest.approx(0.8**6)

    def test_single_replica(self):
        solo = RowaProtocol(1)
        assert solo.read_cost() == solo.write_cost() == 1
        assert solo.read_availability(0.9) == pytest.approx(0.9)

    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            RowaProtocol(0)


class TestQuorums:
    def test_read_quorums_are_singletons(self, rowa):
        reads = list(rowa.read_quorums())
        assert len(reads) == 6
        assert all(len(q) == 1 for q in reads)

    def test_write_quorum_is_everything(self, rowa):
        writes = list(rowa.write_quorums())
        assert writes == [frozenset(range(6))]

    def test_forms_a_bicoterie(self, rowa):
        assert isinstance(rowa.bicoterie(), BiCoterie)

    def test_loads_are_lp_optimal(self, rowa):
        reads = optimal_load(list(rowa.read_quorums()), universe=range(6))
        writes = optimal_load(list(rowa.write_quorums()), universe=range(6))
        assert reads.load == pytest.approx(rowa.read_load())
        assert writes.load == pytest.approx(rowa.write_load())


class TestMostlyReadEquivalence:
    """The MOSTLY-READ configuration behaves exactly like ROWA (Section 4)."""

    @pytest.mark.parametrize("n", [2, 5, 12])
    def test_all_quantities_agree(self, n):
        rowa = RowaProtocol(n)
        model = ArbitraryTreeModel(mostly_read(n), name="MOSTLY-READ")
        assert model.read_cost() == rowa.read_cost()
        assert model.write_cost() == rowa.write_cost()
        assert model.read_load() == pytest.approx(rowa.read_load())
        assert model.write_load() == pytest.approx(rowa.write_load())
        for p in (0.6, 0.8, 0.95):
            assert model.read_availability(p) == pytest.approx(
                rowa.read_availability(p)
            )
            assert model.write_availability(p) == pytest.approx(
                rowa.write_availability(p)
            )

    def test_quorum_sets_identical(self):
        rowa = RowaProtocol(4)
        model = ArbitraryTreeModel(mostly_read(4))
        assert set(model.read_quorums()) == set(rowa.read_quorums())
        assert set(model.write_quorums()) == set(rowa.write_quorums())
