"""Unit tests for the Agrawal-El Abbadi tree-quorum protocol (BINARY)."""

import random

import pytest

from repro.protocols.tree_quorum import (
    TreeQuorumProtocol,
    binary_tree_sizes,
    complete_binary_height,
)
from repro.quorums.availability import exact_availability
from repro.quorums.base import is_intersecting
from repro.quorums.load import optimal_load


class TestTopology:
    def test_height(self):
        assert complete_binary_height(7) == 2
        assert complete_binary_height(1) == 0

    def test_invalid_sizes_rejected(self):
        for n in (2, 4, 6, 8, 100):
            with pytest.raises(ValueError):
                complete_binary_height(n)

    def test_sizes_helper(self):
        assert binary_tree_sizes(3) == [1, 3, 7, 15]

    def test_children(self):
        protocol = TreeQuorumProtocol(7)
        assert protocol.children(0) == (1, 2)
        assert protocol.children(2) == (5, 6)
        assert protocol.children(3) == ()

    def test_leaves(self):
        protocol = TreeQuorumProtocol(7)
        assert [sid for sid in range(7) if protocol.is_leaf(sid)] == [3, 4, 5, 6]


class TestQuorumConstruction:
    def test_failure_free_returns_root_to_leaf_path(self):
        protocol = TreeQuorumProtocol(7)
        quorum = protocol.construct_quorum(set(range(7)))
        assert quorum == frozenset({0, 1, 3})  # deterministic left path

    def test_root_failure_substitutes_children(self):
        protocol = TreeQuorumProtocol(7)
        quorum = protocol.construct_quorum(set(range(1, 7)))
        # both child subtrees must contribute a path
        assert quorum == frozenset({1, 3}) | frozenset({2, 5})

    def test_interior_failure(self):
        protocol = TreeQuorumProtocol(7)
        quorum = protocol.construct_quorum({0, 2, 3, 4, 5, 6})
        # node 1 dead: root takes the right path instead
        assert quorum is not None and 1 not in quorum
        assert 0 in quorum

    def test_leaf_level_failure_can_block(self):
        protocol = TreeQuorumProtocol(3)
        # root dead and one leaf dead: no quorum
        assert protocol.construct_quorum({1}) is None

    def test_all_leaves_is_worst_case(self):
        protocol = TreeQuorumProtocol(7)
        quorum = protocol.construct_quorum({3, 4, 5, 6})
        assert quorum == frozenset({3, 4, 5, 6})
        assert len(quorum) == protocol.max_cost()

    def test_no_quorum_when_too_many_dead(self):
        protocol = TreeQuorumProtocol(7)
        assert protocol.construct_quorum({3, 4}) is None

    def test_randomised_construction_stays_live(self):
        protocol = TreeQuorumProtocol(15)
        rng = random.Random(1)
        live = {0, 1, 2, 4, 5, 6, 9, 10, 12, 13, 14}
        for _ in range(30):
            quorum = protocol.construct_quorum(live, rng)
            if quorum is not None:
                assert quorum <= live


class TestEnumeration:
    def test_count_recurrence(self):
        assert TreeQuorumProtocol(1).quorum_count() == 1
        assert TreeQuorumProtocol(3).quorum_count() == 3
        assert TreeQuorumProtocol(7).quorum_count() == 15
        assert TreeQuorumProtocol(15).quorum_count() == 255

    def test_enumeration_matches_count(self):
        protocol = TreeQuorumProtocol(7)
        quorums = list(protocol.enumerate_quorums())
        assert len(quorums) == 15
        assert len(set(quorums)) == 15

    def test_enumerated_quorums_intersect(self):
        protocol = TreeQuorumProtocol(7)
        assert is_intersecting(list(protocol.enumerate_quorums()))

    def test_construction_result_is_enumerated(self):
        protocol = TreeQuorumProtocol(7)
        quorums = set(protocol.enumerate_quorums())
        rng = random.Random(0)
        for trial in range(30):
            live = {sid for sid in range(7) if rng.random() < 0.7}
            constructed = protocol.construct_quorum(live, rng)
            if constructed is not None:
                # the constructed set contains some minimal quorum
                assert any(q <= constructed for q in quorums)

    def test_enumeration_guard(self):
        with pytest.raises(ValueError, match="exceed"):
            list(TreeQuorumProtocol(63).enumerate_quorums(max_quorums=100))


class TestAnalyticQuantities:
    def test_paper_cost_formula(self):
        assert TreeQuorumProtocol(3).average_cost() == pytest.approx(2.0)
        assert TreeQuorumProtocol(7).average_cost() == pytest.approx(3.5)
        assert TreeQuorumProtocol(1).average_cost() == 1.0

    def test_cost_extremes(self):
        protocol = TreeQuorumProtocol(15)
        assert protocol.min_cost() == 4
        assert protocol.max_cost() == 8

    def test_average_cost_between_extremes(self):
        for n in (7, 15, 31, 63):
            protocol = TreeQuorumProtocol(n)
            assert protocol.min_cost() <= protocol.average_cost() <= protocol.max_cost()

    def test_optimal_load_formula(self):
        assert TreeQuorumProtocol(7).optimal_load() == pytest.approx(0.5)
        assert TreeQuorumProtocol(31).optimal_load() == pytest.approx(2 / 6)

    def test_load_matches_lp(self):
        for n in (3, 7, 15):
            protocol = TreeQuorumProtocol(n)
            lp = optimal_load(
                list(protocol.enumerate_quorums()), universe=range(n)
            )
            assert lp.load == pytest.approx(protocol.optimal_load(), abs=1e-6)

    def test_path_strategy_load_is_one(self):
        assert TreeQuorumProtocol(15).path_strategy_load() == 1.0


class TestAvailability:
    def test_single_node(self):
        assert TreeQuorumProtocol(1).availability(0.8) == pytest.approx(0.8)

    def test_recursion_matches_exact_enumeration(self):
        """A(h) equals P(construct_quorum succeeds) over all live sets."""
        for n in (3, 7):
            protocol = TreeQuorumProtocol(n)
            for p in (0.5, 0.7, 0.9):
                exact = _exact_construction_probability(protocol, p)
                assert protocol.availability(p) == pytest.approx(exact, abs=1e-9)

    def test_availability_better_than_single_replica(self):
        for p in (0.6, 0.8, 0.9):
            assert TreeQuorumProtocol(15).availability(p) > p

    def test_read_write_symmetric(self):
        protocol = TreeQuorumProtocol(7)
        assert protocol.read_availability(0.7) == protocol.write_availability(0.7)
        assert protocol.read_cost() == protocol.write_cost()
        assert protocol.read_load() == protocol.write_load()


def _exact_construction_probability(protocol: TreeQuorumProtocol, p: float) -> float:
    """Brute force over every live/dead configuration."""
    n = protocol.n
    total = 0.0
    for mask in range(1 << n):
        live = {sid for sid in range(n) if mask & (1 << sid)}
        if protocol.construct_quorum(live) is not None:
            probability = 1.0
            for sid in range(n):
                probability *= p if sid in live else 1.0 - p
            total += probability
    return total
