"""Backend conformance: one scripted scenario, two transports.

The same scripted scenario — seeded writes, reads, a site crash, more
traffic, a recovery — runs against (a) the discrete-event simulator
backend and (b) the asyncio/TCP backend with real in-process socket
servers, driven by the *same* :class:`QuorumCoordinator` class.  Both
backends must produce identical outcome semantics: per-operation
success, returned values, version numbers, and a clean
:class:`InvariantChecker` audit (read/write quorum intersection +
version monotonicity).

Quorum *membership* may differ between backends (selection RNG state
diverges once wall-clock retries enter the picture) — that is transport
detail; the observable semantics may not.
"""

import asyncio
import random

import pytest

from repro.core.builder import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.fault.invariants import InvariantChecker
from repro.runtime.siteserver import SiteServer
from repro.runtime.transport import TcpTransport
from repro.sim.coordinator import QuorumCoordinator
from repro.sim.events import Scheduler
from repro.sim.locks import LockManager
from repro.sim.network import Network
from repro.sim.site import Site

SPEC = "1-3-5"  # 8 replicas: level-1 SIDs 0-2, level-2 SIDs 3-7

#: The scripted scenario.  ``crash``/``recover`` name the deepest-level
#: leaf (SID 7): never read-critical, and the 1-3-5 write quorums built
#: from level 1 survive it, so post-crash writes stay available too.
SCRIPT = [
    ("put", "k1", "alpha"),
    ("put", "k2", "beta"),
    ("get", "k1", None),
    ("get", "k2", None),
    ("crash", 7, None),
    ("get", "k1", None),
    ("get", "k2", None),
    ("put", "k1", "gamma"),
    ("get", "k1", None),
    ("recover", 7, None),
    ("get", "k1", None),
    ("put", "k2", "delta"),
    ("get", "k2", None),
]


def _observe(op, key, outcome):
    """The semantics both backends must agree on, as a comparable tuple."""
    return (
        op,
        key,
        outcome.success,
        outcome.value,
        outcome.timestamp.version if outcome.timestamp is not None else None,
    )


def run_script_on_simulator():
    """The scenario on the discrete-event backend (virtual time)."""
    scheduler = Scheduler()
    network = Network(scheduler, random.Random(11), latency=0.05)
    system = ArbitraryProtocol(from_spec(SPEC))
    n = len(system.universe)
    sites = [Site(sid, network) for sid in range(n)]
    locks = LockManager(scheduler)
    coordinator = QuorumCoordinator(
        sid=-1,
        network=network,
        system=system,
        locks=locks,
        detector=lambda sid: sites[sid].up,
        rng=random.Random(3),
        timeout=5.0,
        max_attempts=4,
        writer_id=n,
        liveness_epoch=network.current_liveness_epoch,
    )
    checker = InvariantChecker(strict=False)
    observed = []
    for op, key, value in SCRIPT:
        if op == "crash":
            sites[key].crash()
            continue
        if op == "recover":
            sites[key].recover()
            scheduler.run()  # drain the 2PC termination protocol
            continue
        outcomes = []
        if op == "get":
            coordinator.read(key, outcomes.append)
        else:
            coordinator.write(key, value, outcomes.append)
        scheduler.run()
        assert len(outcomes) == 1, f"{op} {key} did not complete"
        checker.check(outcomes[0])
        observed.append(_observe(op, key, outcomes[0]))
    return observed, checker


def run_script_on_asyncio():
    """The same scenario over real TCP sockets (wall time), in-process."""

    async def main():
        servers = []
        transport = TcpTransport(local_sid=-1)
        system = ArbitraryProtocol(from_spec(SPEC))
        n = len(system.universe)
        try:
            for sid in range(n):
                server = SiteServer(sid)
                await server.start()
                servers.append(server)
            for server in servers:
                await transport.connect(server.sid, "127.0.0.1", server.port)
            locks = LockManager(transport.clock)
            coordinator = QuorumCoordinator(
                sid=-1,
                network=transport,
                system=system,
                locks=locks,
                detector=transport.is_live,
                rng=random.Random(3),
                timeout=0.5,
                max_attempts=4,
                writer_id=n,
                liveness_epoch=transport.current_liveness_epoch,
            )
            checker = InvariantChecker(strict=False)
            observed = []
            for op, key, value in SCRIPT:
                if op == "crash":
                    servers[key].crash()
                    # The severed connection surfaces as EOF on the
                    # transport's pump; yield until liveness notices.
                    while transport.is_live(key):
                        await asyncio.sleep(0.01)
                    continue
                if op == "recover":
                    servers[key].recover()
                    await transport.connect(
                        key, "127.0.0.1", servers[key].port
                    )
                    continue
                future = asyncio.get_running_loop().create_future()
                if op == "get":
                    coordinator.read(key, future.set_result)
                else:
                    coordinator.write(key, value, future.set_result)
                outcome = await asyncio.wait_for(future, 10.0)
                checker.check(outcome)
                observed.append(_observe(op, key, outcome))
            return observed, checker
        finally:
            await transport.close()
            for server in servers:
                await server.stop()

    return asyncio.run(main())


@pytest.fixture(scope="module")
def sim_run():
    return run_script_on_simulator()


@pytest.fixture(scope="module")
def tcp_run():
    return run_script_on_asyncio()


def test_every_scripted_operation_succeeds_on_both(sim_run, tcp_run):
    for observed, _ in (sim_run, tcp_run):
        assert all(entry[2] for entry in observed), observed


def test_outcome_semantics_identical_across_backends(sim_run, tcp_run):
    assert sim_run[0] == tcp_run[0]


def test_values_and_versions_follow_the_script(sim_run):
    observed, _ = sim_run
    gets = [entry for entry in observed if entry[0] == "get"]
    # In script order: k1=alpha, k2=beta, then post-crash k1=alpha,
    # k2=beta, then k1=gamma twice (pre/post recovery), then k2=delta.
    assert [(key, value) for _, key, _, value, _ in gets] == [
        ("k1", "alpha"), ("k2", "beta"),
        ("k1", "alpha"), ("k2", "beta"),
        ("k1", "gamma"), ("k1", "gamma"), ("k2", "delta"),
    ]
    # Versions are monotone per key: each key written twice -> version 2.
    assert gets[-2][4] == 2 and gets[-1][4] == 2


def test_quorum_intersection_invariants_hold_on_both(sim_run, tcp_run):
    for _, checker in (sim_run, tcp_run):
        assert checker.checked > 0
        assert checker.violations == []
