"""Ablation: the "spectrum algorithm" claim of the conclusion.

"Our proposal enables the shifting from one configuration into another by
just modifying the structure of the tree."  The tuning advisor makes that
shift automatic; this bench sweeps the read fraction from 0 to 1 and
asserts the tree it picks walks monotonically from MOSTLY-WRITE-like (many
thin levels) to MOSTLY-READ-like (a single wide level), with the objective
score never worse than either fixed extreme.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import analyse, metrics
from repro.core.builder import mostly_read, mostly_write
from repro.core.tuning import recommend

N = 40
P = 0.9
FRACTIONS = (0.0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0)


@pytest.fixture(scope="module")
def spectrum():
    return {f: recommend(N, p=P, read_fraction=f) for f in FRACTIONS}


def test_spectrum_table(spectrum, emit, benchmark):
    benchmark(recommend, N, P, 0.5)
    rows = []
    for fraction, result in spectrum.items():
        tree = result.tree
        summary = analyse(tree, p=P)
        rows.append([
            fraction, tree.spec()[:34], tree.num_physical_levels,
            round(result.best.score, 4),
            round(summary.expected_read_load, 4),
            round(summary.expected_write_load, 4),
        ])
    emit(
        "tuning_spectrum",
        format_table(
            ["read frac", "chosen tree", "|K_phy|", "score",
             "E[L_RD]", "E[L_WR]"],
            rows,
            title=f"Tuning spectrum (n={N}, p={P})",
        ),
    )


def test_levels_monotone_in_read_fraction(spectrum, benchmark):
    benchmark(lambda: None)
    levels = [spectrum[f].tree.num_physical_levels for f in FRACTIONS]
    assert levels == sorted(levels, reverse=True)


def test_extremes_match_named_configurations(spectrum, benchmark):
    benchmark(lambda: None)
    pure_reads = spectrum[1.0].tree
    assert pure_reads.num_physical_levels == 1       # MOSTLY-READ shape
    pure_writes = spectrum[0.0].tree
    assert pure_writes.d <= 2                         # MOSTLY-WRITE-ish


def test_advisor_beats_both_fixed_extremes(spectrum, benchmark):
    benchmark(lambda: None)
    read_tree = mostly_read(N)
    write_tree = mostly_write(N)
    for fraction, result in spectrum.items():
        for fixed in (read_tree, write_tree):
            fixed_score = (
                fraction * metrics.expected_read_load(fixed, P)
                + (1 - fraction) * metrics.expected_write_load(fixed, P)
            )
            assert result.best.score <= fixed_score + 1e-9


def test_scores_bounded_by_unit_load(spectrum, benchmark):
    benchmark(lambda: None)
    for result in spectrum.values():
        assert 0.0 < result.best.score <= 1.0
