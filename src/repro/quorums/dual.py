"""Dual quorums: the transition-epoch system of online reconfiguration.

Quorums of two *different* trees need not intersect, so a system cannot
swap from one tree to another while traffic flows unless something makes
the boundary safe.  :class:`DualQuorumSystem` is that something: a
composite over an ``(old, new)`` pair sharing one universe whose read
quorum is *(an old read quorum) ∪ (a new read quorum)* and whose write
quorum is *(an old write quorum) ∪ (a new write quorum)*.

Every dual quorum is therefore a **superset of a quorum of either
component**, which yields the transition safety argument directly:

* a dual **read** contains an old read quorum, so it intersects every
  write committed in the old epoch; it also contains a new read quorum,
  so it intersects every write the new epoch will commit — reads during
  the transition can never miss a version, whichever side it landed on;
* a dual **write** contains both components' write quorums, so both an
  old-epoch and a new-epoch read quorum will see it — values written
  during the transition survive **commit and rollback alike**, which is
  what makes a failed transition abortable without state repair.

The bi-coterie property is inherited, not re-proved: dual-vs-dual
intersection follows from either component's own intersection.

Selection is structural (``uniform_selection = False``): the components
select independently and the picks are unioned, so the composite works
with lazy/structural component selectors and never enumerates.  The
collection enumeration below exists for the analysis/verification paths
(``is_bicoterie``, availability on small systems), not for selection.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.quorums.liveness import Liveness
from repro.quorums.system import QuorumSystem


class DualQuorumSystem(QuorumSystem):
    """The union-quorum composite of an old and a new quorum system.

    Both systems must span the same universe — reconfiguration changes
    the *shape*, not the fleet.
    """

    uniform_selection = False

    def __init__(self, old: QuorumSystem, new: QuorumSystem) -> None:
        if frozenset(old.universe) != frozenset(new.universe):
            raise ValueError(
                "dual quorum systems need one universe: "
                f"{sorted(old.universe)} vs {sorted(new.universe)}"
            )
        self._old = old
        self._new = new
        self.name = f"dual({old.name} -> {new.name})"

    @property
    def old(self) -> QuorumSystem:
        """The outgoing (pre-transition) system."""
        return self._old

    @property
    def new(self) -> QuorumSystem:
        """The incoming (post-transition) system."""
        return self._new

    @property
    def universe(self) -> frozenset[int]:
        return self._old.universe

    # ------------------------------------------------------------------
    # enumeration (analysis paths only; selection never touches these)
    # ------------------------------------------------------------------

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """Pairwise unions of both components' read quorums."""
        others: tuple[frozenset[int], ...] | None = None
        for mine in self._old.read_quorums():
            if others is None:
                others = tuple(self._new.read_quorums())
            for theirs in others:
                yield mine | theirs

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """Pairwise unions of both components' write quorums."""
        others: tuple[frozenset[int], ...] | None = None
        for mine in self._old.write_quorums():
            if others is None:
                others = tuple(self._new.write_quorums())
            for theirs in others:
                yield mine | theirs

    # ------------------------------------------------------------------
    # selection: independent component picks, unioned
    # ------------------------------------------------------------------

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """A live read quorum of *both* trees (None if either side fails).

        Availability during the transition is the product of both sides'
        read availability — the price of straddling two shapes, paid only
        for the duration of the migration.
        """
        mine = self._old.select_read_quorum(live, rng)
        if mine is None:
            return None
        theirs = self._new.select_read_quorum(live, rng)
        if theirs is None:
            return None
        return mine | theirs

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """A live write quorum of *both* trees (None if either side fails)."""
        mine = self._old.select_write_quorum(live, rng)
        if mine is None:
            return None
        theirs = self._new.select_write_quorum(live, rng)
        if theirs is None:
            return None
        return mine | theirs
