"""Packed-integer quorum kernel: bitmask quorums and vectorised set ops.

Every derived analysis in this library ultimately asks set questions about
quorums over a small integer universe: *is this quorum a subset of the live
set?*, *do these two quorums intersect?*, *which elements does this quorum
contain?*  Answering them through ``frozenset`` objects costs a Python-level
loop per element; this module instead packs each quorum into a bitmask —
element ``i`` of the (sorted) universe becomes bit ``i`` — so the same
questions become single AND/compare instructions, and whole quorum
*collections* become rows of a numpy ``uint64`` matrix (``ceil(n / 64)``
words per row) on which the questions vectorise across every quorum at once.

The design follows the compiled, array-oriented kernels that make Whittaker
et al., *Read-Write Quorum Systems Made Practical* (2021) practical at real
sizes.  ``frozenset`` remains the public currency at the API edges; a
collection is packed once (``PackedQuorums.from_quorums``) and every
consumer — exact availability, the Monte-Carlo estimator, bi-coterie
verification, failure-aware selection, the Naor-Wool LP's membership
matrix — runs on the packed form.  Consumers dispatch through
:func:`try_pack`, which returns ``None`` for non-integer universes so the
generic frozenset paths keep working for arbitrary element types.

Bit-exactness contract: every kernel op performs the *same* float
operations in the *same* element order as its pure-Python reference (and
totals are reduced with ``math.fsum`` on both sides), so the agreement
tests in ``tests/quorums/test_kernel_agreement.py`` can assert ``==``, not
``approx``.
"""

from __future__ import annotations

import math
import random
from collections.abc import Collection, Iterable, Mapping, Sequence

import numpy as np

#: Bits per matrix word.
WORD_BITS = 64

#: Soft cap on scratch memory (bytes) for batched broadcasts.
_BATCH_BYTES = 1 << 24


if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:  # pragma: no cover - numpy < 2.0 fallback
    _POPCOUNT_TABLE = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def _popcount(words: np.ndarray) -> np.ndarray:
        as_bytes = words.view(np.uint8).reshape(*words.shape, 8)
        return _POPCOUNT_TABLE[as_bytes].sum(axis=-1)


def mask_of(elements: Iterable[int], index: Mapping[int, int]) -> int:
    """Pack elements into an arbitrary-precision Python int bitmask."""
    mask = 0
    for element in elements:
        mask |= 1 << index[element]
    return mask


def mask_to_words(mask: int, words: int) -> np.ndarray:
    """Split a Python int bitmask into little-endian 64-bit words.

    One C-level conversion (``int.to_bytes`` + ``frombuffer``); the result
    is a read-only view, which every consumer treats it as.
    """
    return np.frombuffer(
        mask.to_bytes(words * 8, "little"), dtype=np.uint64
    )


def words_to_mask(row: np.ndarray) -> int:
    """Reassemble a Python int bitmask from its 64-bit words."""
    mask = 0
    for w, word in enumerate(row):
        mask |= int(word) << (w * WORD_BITS)
    return mask


def pack_rows(
    quorums: Sequence[Collection[int]],
    index: Mapping[int, int],
    words: int,
) -> np.ndarray:
    """Pack a sequence of quorums into an ``(m, words)`` uint64 matrix.

    Per-element shifts and per-row numpy scalar assignments dominate the
    naive loop, so the masks are built as plain Python ints off a
    precomputed element -> bit-value table (``sum`` of dict gets beats
    ``|=`` of fresh shifts) and materialised with one ``np.array`` call —
    the whole pack is then a single C-level conversion per word column.
    """
    bit_value = {element: 1 << bit for element, bit in index.items()}
    getter = bit_value.__getitem__
    masks = [sum(map(getter, quorum)) for quorum in quorums]
    return _masks_to_matrix(masks, words)


def _masks_to_matrix(masks: Sequence[int], words: int) -> np.ndarray:
    """Materialise Python-int bitmasks as an ``(m, words)`` uint64 matrix."""
    if words == 1:
        return np.array(masks, dtype=np.uint64).reshape(-1, 1)
    word_mask = (1 << WORD_BITS) - 1
    columns = [
        np.array(
            [(mask >> shift) & word_mask for mask in masks], dtype=np.uint64
        )
        for shift in range(0, words * WORD_BITS, WORD_BITS)
    ]
    return np.column_stack(columns)


def pack_bool_matrix(alive: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, n)`` boolean matrix into ``(rows, words)`` uint64.

    Column ``i`` becomes bit ``i`` (little-endian within and across words),
    matching the element order of :class:`PackedQuorums` built over the same
    universe.  Used to turn Monte-Carlo live/dead draws into live-set masks.
    """
    rows, n = alive.shape
    words = max(1, -(-n // WORD_BITS))
    padded = np.zeros((rows, words * WORD_BITS), dtype=np.uint8)
    padded[:, :n] = alive
    packed = np.packbits(padded, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view(np.uint64)


class PackedQuorums:
    """A quorum collection packed into a ``(m, words)`` uint64 bit matrix.

    ``elements`` is the sorted universe; element ``elements[i]`` owns bit
    ``i`` (bit ``i % 64`` of word ``i // 64``).  All kernel ops are
    vectorised across the ``m`` rows.  Instances are immutable once built
    and safe to cache (``CachedQuorumSystem`` does).
    """

    __slots__ = (
        "elements", "index", "words", "matrix", "_bit_value",
        "_int_masks", "_frozensets",
    )

    def __init__(
        self,
        matrix: np.ndarray,
        elements: tuple[int, ...],
    ) -> None:
        self.elements = elements
        self.index = {element: i for i, element in enumerate(elements)}
        self.words = matrix.shape[1] if matrix.ndim == 2 else 1
        self.matrix = matrix
        self._bit_value = {
            element: 1 << i for i, element in enumerate(elements)
        }
        self._int_masks: list[int] | None = None
        self._frozensets: tuple[frozenset[int], ...] | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_quorums(
        cls,
        quorums: Iterable[Collection[int]],
        universe: Collection[int] | None = None,
    ) -> "PackedQuorums":
        """Pack an iterable of integer quorums over a (sorted) universe."""
        rows = [frozenset(q) for q in quorums]
        if universe is None:
            union: set[int] = set()
            for quorum in rows:
                union |= quorum
            universe = union
        elements = tuple(sorted(universe))
        index = {element: i for i, element in enumerate(elements)}
        words = max(1, -(-len(elements) // WORD_BITS))
        packed = cls(pack_rows(rows, index, words), elements)
        packed._frozensets = tuple(rows)
        return packed

    @classmethod
    def from_system(cls, system, op: str = "read") -> "PackedQuorums":
        """Pack one operation's collection of a quorum system, masks first.

        Systems exposing :meth:`~repro.quorums.system.QuorumSystem.quorum_masks`
        (combinatorial protocols: subsets, cartesian covers) are packed
        straight from the integer masks — no frozenset is ever built per
        quorum, which makes packing cheaper than the frozenset enumeration
        itself.  Row order equals the frozenset enumeration order by the
        hook's contract, so enumeration-order consumers (RNG-stream
        agreement in selection) see identical collections.  Systems
        without the hook — or with a non-contiguous universe, where mask
        bit positions would not be SIDs — fall back to
        :meth:`from_quorums` over ``quorums(op)``.
        """
        masks = None
        quorum_masks = getattr(system, "quorum_masks", None)
        if quorum_masks is not None:
            masks = quorum_masks(op)
        if masks is not None:
            elements = tuple(sorted(system.universe))
            if elements == tuple(range(len(elements))):
                words = max(1, -(-len(elements) // WORD_BITS))
                return cls(_masks_to_matrix(masks, words), elements)
        return cls.from_quorums(system.quorums(op), universe=system.universe)

    # -- basic views -------------------------------------------------------

    def __len__(self) -> int:
        return self.matrix.shape[0]

    @property
    def n(self) -> int:
        """Universe size."""
        return len(self.elements)

    def masks(self) -> list[int]:
        """The rows as arbitrary-precision Python int bitmasks (memoised)."""
        if self._int_masks is None:
            if self.words == 1:
                self._int_masks = [int(word) for word in self.matrix[:, 0]]
            else:
                self._int_masks = [
                    words_to_mask(row) for row in self.matrix
                ]
        return self._int_masks

    def to_frozensets(self) -> tuple[frozenset[int], ...]:
        """Unpack back to frozensets (memoised; the public-API edge)."""
        if self._frozensets is None:
            bits = self.bit_matrix()
            self._frozensets = tuple(
                frozenset(
                    self.elements[i] for i in np.nonzero(row)[0]
                )
                for row in bits
            )
        return self._frozensets

    def pack_live(self, live: Iterable[int]) -> np.ndarray:
        """Pack a live set into a ``(words,)`` mask, ignoring foreign SIDs.

        Elements outside the universe cannot influence any quorum test and
        are dropped, matching the frozenset reference (which only ever asks
        whether a *quorum member* is live).  The per-element Python loop
        this used to be dominated steady-state selection on large
        universes; ``dict.get`` misses yield ``None`` and every hit is a
        power of two, so ``filter(None, ...)`` drops exactly the foreign
        SIDs and the whole pack runs as one C-level pipeline.
        """
        get = self._bit_value.get
        mask = sum(filter(None, map(get, live)))
        return mask_to_words(mask, self.words)

    # -- kernel ops --------------------------------------------------------

    def live_filter(self, live_words: np.ndarray) -> np.ndarray:
        """Boolean vector: row ``j`` is True iff quorum ``j`` ⊆ live set."""
        return ((self.matrix & live_words) == self.matrix).all(axis=1)

    def first_live(self, live_words: np.ndarray) -> int | None:
        """Index of the first fully-live quorum, or ``None``."""
        viable = self.live_filter(live_words)
        hits = np.nonzero(viable)[0]
        return int(hits[0]) if hits.size else None

    def select(
        self, live_words: np.ndarray, rng: random.Random | None
    ) -> int | None:
        """Index of a fully-live quorum, reservoir-sampled under ``rng``.

        Consumes ``rng`` exactly like the frozenset reference scan: one
        ``randrange`` call per viable quorum, in row order — so reference
        and kernel selection agree under identical RNG streams.

        Tiny collections (m <= 64) take a Python-int scan over the
        memoised row masks: at that size the fixed overhead of the numpy
        broadcast outweighs the loop, and the int path keeps multi-word
        universes (n = 256 striped) ahead of the frozenset reference.
        """
        if len(self) <= 64:
            live = int.from_bytes(
                np.ascontiguousarray(live_words).tobytes(), "little"
            )
            viable = [
                row
                for row, mask in enumerate(self.masks())
                if mask & live == mask
            ]
        else:
            viable = np.nonzero(self.live_filter(live_words))[0].tolist()
        if not viable:
            return None
        if rng is None:
            return viable[0]
        chosen = viable[0]
        for count, row in enumerate(viable, start=1):
            if rng.randrange(count) == 0:
                chosen = row
        return chosen

    def popcounts(self) -> np.ndarray:
        """Per-quorum cardinalities (vectorised popcount)."""
        return _popcount(self.matrix).sum(axis=1, dtype=np.int64)

    def bit_matrix(self) -> np.ndarray:
        """The ``(m, n)`` 0/1 uint8 matrix of quorum membership."""
        as_bytes = np.ascontiguousarray(self.matrix).view(np.uint8)
        bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
        return bits[:, : self.n]

    def membership_matrix(self, dtype=float) -> np.ndarray:
        """The ``(n, m)`` element × quorum membership matrix (LP input)."""
        return self.bit_matrix().T.astype(dtype)

    def covered(
        self,
        live_matrix: np.ndarray,
        check_every: int = 64,
    ) -> np.ndarray:
        """Which live-set rows contain at least one quorum.

        ``live_matrix`` is ``(rows, words)`` uint64 (see
        :func:`pack_bool_matrix`).  Quorums are tested in batches sized to
        bound scratch memory; after each batch a single ``hit.all()`` check
        allows early exit, so the periodic-scan cost is O(rows · m / batch)
        instead of the reference's O(rows · m).
        """
        rows = live_matrix.shape[0]
        hit = np.zeros(rows, dtype=bool)
        if not len(self):
            return hit
        if self.words == 1:
            # Single-word universes have at most 2^n distinct live masks —
            # usually far fewer than the sample count — so test each unique
            # mask once and scatter the verdicts back.  Identical results,
            # |unique| / rows of the work.
            unique, inverse = np.unique(
                live_matrix[:, 0], return_inverse=True
            )
            unique_hit = np.zeros(unique.shape, dtype=bool)
            per_mask = max(1, unique.shape[0] * 8)
            batch = max(1, min(check_every, _BATCH_BYTES // per_mask))
            masks = self.matrix[:, 0]
            for start in range(0, len(self), batch):
                block = masks[start : start + batch]
                unique_hit |= (
                    (unique[:, None] & block[None, :]) == block[None, :]
                ).any(axis=1)
                if unique_hit.all():
                    break
            return unique_hit[inverse]
        per_row = max(1, rows * self.words * 8)
        batch = max(1, min(check_every, _BATCH_BYTES // per_row))
        for start in range(0, len(self), batch):
            block = self.matrix[start : start + batch]
            sub = (live_matrix[:, None, :] & block[None, :, :]) == block
            hit |= sub.all(axis=2).any(axis=1)
            if hit.all():
                break
        return hit

    def cross_intersects(self, other: "PackedQuorums") -> bool:
        """True iff every row here intersects every row of ``other``.

        Both collections must be packed over the same universe (same
        element → bit mapping); :meth:`from_quorums` with an explicit
        shared universe, or :func:`try_pack_pair`, guarantees that.
        """
        if self.elements != other.elements:
            raise ValueError("collections packed over different universes")
        if not len(self) or not len(other):
            # Empty double loop: vacuously true, matching the reference.
            return True
        per_row = max(1, len(other) * self.words * 8)
        batch = max(1, _BATCH_BYTES // per_row)
        theirs = other.matrix
        for start in range(0, len(self), batch):
            block = self.matrix[start : start + batch]
            meets = (block[:, None, :] & theirs[None, :, :]).any(axis=2)
            if not meets.all():
                return False
        return True

    def superset_counts(self) -> np.ndarray:
        """For each row, how many rows (itself included) contain it.

        A collection is an antichain iff every count is exactly one.
        """
        counts = np.empty(len(self), dtype=np.int64)
        for row in range(len(self)):
            mask = self.matrix[row]
            counts[row] = int(
                ((self.matrix & mask) == mask).all(axis=1).sum()
            )
        return counts

    def __repr__(self) -> str:
        return (
            f"PackedQuorums(m={len(self)}, n={self.n}, words={self.words})"
        )


# ---------------------------------------------------------------------------
# dispatch helpers
# ---------------------------------------------------------------------------


def packable_universe(universe: Iterable) -> bool:
    """True iff every universe element is a plain int (maskable)."""
    return all(isinstance(element, int) for element in universe)


def try_pack(
    quorums: Iterable[Collection],
    universe: Collection | None = None,
) -> PackedQuorums | None:
    """Pack when the universe is all-int; ``None`` sends callers to the
    frozenset reference path (generic element types)."""
    rows = [frozenset(q) for q in quorums]
    if universe is None:
        union: set = set()
        for quorum in rows:
            union |= quorum
        universe = union
    if not packable_universe(universe):
        return None
    return PackedQuorums.from_quorums(rows, universe=universe)


def try_pack_pair(
    reads: Iterable[Collection],
    writes: Iterable[Collection],
) -> tuple[PackedQuorums, PackedQuorums] | None:
    """Pack two collections over their shared (union) universe."""
    read_rows = [frozenset(q) for q in reads]
    write_rows = [frozenset(q) for q in writes]
    union: set = set()
    for quorum in read_rows:
        union |= quorum
    for quorum in write_rows:
        union |= quorum
    if not packable_universe(union):
        return None
    universe = frozenset(union)
    return (
        PackedQuorums.from_quorums(read_rows, universe=universe),
        PackedQuorums.from_quorums(write_rows, universe=universe),
    )


# ---------------------------------------------------------------------------
# availability kernels
# ---------------------------------------------------------------------------


def _probability_vectors(
    packed: PackedQuorums,
    probabilities: Mapping[int, float],
) -> np.ndarray:
    return np.array(
        [float(probabilities[element]) for element in packed.elements]
    )


def availability_by_universe_enumeration(
    packed: PackedQuorums,
    probabilities: Mapping[int, float],
) -> float:
    """Vectorised 2^n live-set enumeration (kernel twin of the reference).

    Enumerates every live set as an integer mask, marks the masks containing
    at least one quorum with one AND/compare pass per quorum, accumulates
    each live set's probability with one multiply pass per element (same
    multiplication order as the reference loop), and ``fsum``s the marked
    probabilities — bit-identical to the pure-Python path.
    """
    n = packed.n
    if n > 26:  # 2^26 doubles ≈ 0.5 GiB of scratch; callers guard earlier.
        raise ValueError(f"universe of {n} too large to enumerate")
    live = np.arange(1 << n, dtype=np.uint64)
    hit = np.zeros(live.shape, dtype=bool)
    for mask in np.unique(packed.matrix[:, 0]):
        hit |= (live & mask) == mask
    probability = np.ones(live.shape)
    one = np.uint64(1)
    for i, element in enumerate(packed.elements):
        p_i = float(probabilities[element])
        bit = (live >> np.uint64(i)) & one
        probability *= np.where(bit.astype(bool), p_i, 1.0 - p_i)
    return math.fsum(probability[hit].tolist())


def availability_by_inclusion_exclusion(
    packed: PackedQuorums,
    probabilities: Mapping[int, float],
) -> float:
    """Vectorised 2^m inclusion-exclusion over quorum subsets.

    Builds the union mask of every subset of quorums with one OR pass per
    quorum, the union's fully-live probability with one multiply pass per
    element (ascending element order, like the reference), signs terms by
    subset-popcount parity, and ``fsum``s — bit-identical to the reference.
    """
    m = len(packed)
    if m > 24:
        raise ValueError(f"{m} quorums too many for inclusion-exclusion")
    subsets = np.arange(1 << m, dtype=np.uint64)
    unions = np.zeros(((1 << m), packed.words), dtype=np.uint64)
    one = np.uint64(1)
    for j in range(m):
        member = ((subsets >> np.uint64(j)) & one).astype(bool)
        unions[member] |= packed.matrix[j]
    probability = np.ones(1 << m)
    for i, element in enumerate(packed.elements):
        word, bit = divmod(i, WORD_BITS)
        present = ((unions[:, word] >> np.uint64(bit)) & one).astype(bool)
        probability *= np.where(present, float(probabilities[element]), 1.0)
    sign = np.where(_popcount(subsets) % 2 == 1, 1.0, -1.0)
    terms = sign[1:] * probability[1:]  # skip the empty subset
    return math.fsum(terms.tolist())


def estimate_availability_monte_carlo_packed(
    packed: PackedQuorums,
    probabilities: Mapping[int, float],
    samples: int,
    seed: int | None,
) -> float:
    """Vectorised Monte-Carlo availability on a packed collection.

    Draws the same ``(samples, n)`` uniform matrix as the reference (same
    generator, same stream), packs each sample row into a live-set mask,
    and tests quorum containment with batched word ops instead of per-quorum
    column gathers.  The early-exit check runs once per batch, fixing the
    reference's O(m · samples) per-quorum ``hit.all()`` scans.
    """
    p_vector = _probability_vectors(packed, probabilities)
    rng = np.random.default_rng(seed)
    alive = rng.random((samples, packed.n)) < p_vector
    live_matrix = pack_bool_matrix(alive)
    hit = packed.covered(live_matrix)
    return float(hit.mean())
