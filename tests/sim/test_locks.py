"""Unit tests for the centralised lock manager."""

import pytest

from repro.sim.events import Scheduler
from repro.sim.locks import LockManager, LockMode


@pytest.fixture
def rig():
    scheduler = Scheduler()
    return scheduler, LockManager(scheduler)


def grant_recorder(results: list, tag):
    return lambda granted: results.append((tag, granted))


class TestBasicGrants:
    def test_free_lock_granted(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        scheduler.run()
        assert results == [("a", True)]
        assert locks.holders("k") == {1: LockMode.EXCLUSIVE}

    def test_shared_locks_coexist(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.SHARED, grant_recorder(results, "a"))
        locks.acquire(2, "k", LockMode.SHARED, grant_recorder(results, "b"))
        scheduler.run()
        assert results == [("a", True), ("b", True)]
        assert len(locks.holders("k")) == 2

    def test_exclusive_blocks_shared(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(2, "k", LockMode.SHARED, grant_recorder(results, "b"))
        scheduler.run()
        assert results == [("a", True)]
        assert locks.queue_length("k") == 1

    def test_shared_blocks_exclusive(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.SHARED, grant_recorder(results, "a"))
        locks.acquire(2, "k", LockMode.EXCLUSIVE, grant_recorder(results, "b"))
        scheduler.run()
        assert results == [("a", True)]

    def test_distinct_keys_independent(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k1", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(2, "k2", LockMode.EXCLUSIVE, grant_recorder(results, "b"))
        scheduler.run()
        assert sorted(results) == [("a", True), ("b", True)]


class TestQueueing:
    def test_release_grants_next_in_fifo_order(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(2, "k", LockMode.EXCLUSIVE, grant_recorder(results, "b"))
        locks.acquire(3, "k", LockMode.EXCLUSIVE, grant_recorder(results, "c"))
        scheduler.run()
        locks.release(1, "k")
        scheduler.run()
        assert results == [("a", True), ("b", True)]
        locks.release(2, "k")
        scheduler.run()
        assert results[-1] == ("c", True)

    def test_release_grants_shared_batch(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(2, "k", LockMode.SHARED, grant_recorder(results, "b"))
        locks.acquire(3, "k", LockMode.SHARED, grant_recorder(results, "c"))
        scheduler.run()
        locks.release(1, "k")
        scheduler.run()
        assert ("b", True) in results and ("c", True) in results

    def test_exclusive_grant_stops_batch(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(2, "k", LockMode.EXCLUSIVE, grant_recorder(results, "b"))
        locks.acquire(3, "k", LockMode.SHARED, grant_recorder(results, "c"))
        scheduler.run()
        locks.release(1, "k")
        scheduler.run()
        assert ("b", True) in results
        assert all(tag != "c" for tag, _ in results)

    def test_release_all(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k1", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(1, "k2", LockMode.EXCLUSIVE, grant_recorder(results, "b"))
        locks.acquire(2, "k1", LockMode.EXCLUSIVE, grant_recorder(results, "c"))
        scheduler.run()
        locks.release_all(1)
        scheduler.run()
        assert ("c", True) in results
        assert locks.holders("k2") == {}

    def test_release_of_unheld_lock_is_noop(self, rig):
        _scheduler, locks = rig
        locks.release(1, "nothing")  # must not raise


class TestReentrancyAndUpgrade:
    def test_reacquire_same_mode(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.SHARED, grant_recorder(results, "a"))
        locks.acquire(1, "k", LockMode.SHARED, grant_recorder(results, "b"))
        scheduler.run()
        assert results == [("a", True), ("b", True)]

    def test_upgrade_when_sole_holder(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.SHARED, grant_recorder(results, "a"))
        scheduler.run()
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "b"))
        scheduler.run()
        assert results == [("a", True), ("b", True)]
        assert locks.holders("k") == {1: LockMode.EXCLUSIVE}

    def test_exclusive_holder_may_take_shared(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(1, "k", LockMode.SHARED, grant_recorder(results, "b"))
        scheduler.run()
        assert results == [("a", True), ("b", True)]
        assert locks.holders("k") == {1: LockMode.EXCLUSIVE}


class TestTimeout:
    def test_queued_request_expires(self):
        scheduler = Scheduler()
        locks = LockManager(scheduler, wait_timeout=5.0)
        results = []
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(2, "k", LockMode.EXCLUSIVE, grant_recorder(results, "b"))
        scheduler.run()
        assert ("b", False) in results
        assert locks.stats.timeouts == 1

    def test_grant_before_timeout_wins(self):
        scheduler = Scheduler()
        locks = LockManager(scheduler, wait_timeout=5.0)
        results = []
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(2, "k", LockMode.EXCLUSIVE, grant_recorder(results, "b"))
        scheduler.run(until=1.0)
        locks.release(1, "k")
        scheduler.run()
        assert ("b", True) in results
        assert ("b", False) not in results


class TestStats:
    def test_counters(self, rig):
        scheduler, locks = rig
        results = []
        locks.acquire(1, "k", LockMode.EXCLUSIVE, grant_recorder(results, "a"))
        locks.acquire(2, "k", LockMode.EXCLUSIVE, grant_recorder(results, "b"))
        scheduler.run()
        locks.release(1, "k")
        scheduler.run()
        assert locks.stats.granted_immediately == 1
        assert locks.stats.granted_after_wait == 1
        assert locks.stats.releases == 1
        assert locks.stats.granted == 2
