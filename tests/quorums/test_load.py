"""Tests for the optimal-load LP and the Proposition 2.1 witness check."""

from itertools import combinations

import pytest

from repro.quorums.base import SetSystem
from repro.quorums.load import OptimalLoad, optimal_load, verify_load_witness


class TestKnownOptima:
    def test_singleton_system(self):
        """One quorum covering one element: load 1."""
        assert optimal_load([{0}]).load == pytest.approx(1.0)

    def test_rowa_reads(self):
        """n singletons: load 1/n."""
        result = optimal_load([{i} for i in range(5)])
        assert result.load == pytest.approx(1 / 5)

    def test_rowa_writes(self):
        """The single full quorum: load 1."""
        assert optimal_load([set(range(5))]).load == pytest.approx(1.0)

    def test_majority_3_of_5(self):
        """k-of-n systems have load k/n."""
        quorums = [set(c) for c in combinations(range(5), 3)]
        assert optimal_load(quorums).load == pytest.approx(3 / 5)

    def test_triangle_coterie(self):
        """{12, 23, 13}: each element in 2 of 3 quorums -> load 2/3."""
        result = optimal_load([{1, 2}, {2, 3}, {1, 3}])
        assert result.load == pytest.approx(2 / 3)

    def test_star_coterie_loads_the_center(self):
        """{01, 02, 03}: element 0 is in every quorum -> load 1."""
        assert optimal_load([{0, 1}, {0, 2}, {0, 3}]).load == pytest.approx(1.0)

    def test_fpp_fano_plane(self):
        """The Fano plane (7 points, 7 lines of 3): load 3/7."""
        from repro.protocols.fpp import FiniteProjectivePlaneProtocol

        lines = list(FiniteProjectivePlaneProtocol(7).read_quorums())
        assert optimal_load(lines, universe=range(7)).load == pytest.approx(3 / 7)

    def test_arbitrary_135_reads(self):
        quorums = [{a, b} for a in range(3) for b in range(3, 8)]
        assert optimal_load(quorums).load == pytest.approx(1 / 3)

    def test_arbitrary_135_writes(self):
        assert optimal_load(
            [set(range(3)), set(range(3, 8))]
        ).load == pytest.approx(1 / 2)


class TestResultStructure:
    @pytest.fixture
    def result(self) -> OptimalLoad:
        return optimal_load([{1, 2}, {2, 3}, {1, 3}])

    def test_strategy_achieves_load(self, result):
        assert result.strategy.induced_load() <= result.load + 1e-6

    def test_witness_is_distribution(self, result):
        assert sum(result.witness.values()) == pytest.approx(1.0)
        assert all(v >= -1e-9 for v in result.witness.values())

    def test_verify(self, result):
        assert result.verify()

    def test_accepts_set_system_input(self):
        system = SetSystem([{0, 1}, {1, 2}])
        assert optimal_load(system).load == optimal_load([{0, 1}, {1, 2}]).load

    def test_unused_universe_elements_are_free(self):
        result = optimal_load([{0}], universe={0, 1, 2})
        assert result.load == pytest.approx(1.0)


class TestWitnessVerification:
    @pytest.fixture
    def system(self):
        return SetSystem([{1, 2}, {2, 3}, {1, 3}])

    def test_valid_witness(self, system):
        witness = {1: 1 / 3, 2: 1 / 3, 3: 1 / 3}
        assert verify_load_witness(system, witness, 2 / 3)

    def test_witness_must_sum_to_one(self, system):
        assert not verify_load_witness(system, {1: 0.5}, 0.5)

    def test_witness_must_cover_quorums(self, system):
        witness = {1: 1.0, 2: 0.0, 3: 0.0}
        # y({2,3}) = 0 < 2/3
        assert not verify_load_witness(system, witness, 2 / 3)

    def test_negative_mass_rejected(self, system):
        witness = {1: 1.5, 2: -0.5, 3: 0.0}
        assert not verify_load_witness(system, witness, 0.5)

    def test_weaker_bound_accepted(self, system):
        witness = {1: 1 / 3, 2: 1 / 3, 3: 1 / 3}
        assert verify_load_witness(system, witness, 0.5)  # 0.5 < 2/3


class TestNaorWoolBounds:
    """L(S) >= max(1/c(S), c(S)/n) where c(S) is the smallest quorum size."""

    @pytest.mark.parametrize(
        "quorums",
        [
            [{0, 1}, {1, 2}, {0, 2}],
            [set(c) for c in combinations(range(4), 3)],
            [{0, 1, 2}, {2, 3, 4}, {0, 3, 4}],
        ],
    )
    def test_lower_bounds_hold(self, quorums):
        system = SetSystem(quorums)
        result = optimal_load(system)
        smallest = system.smallest_quorum_size()
        n = len(system.universe)
        assert result.load >= 1.0 / smallest - 1e-9
        assert result.load >= smallest / n - 1e-9
