"""Unit tests for retry policies and their deterministic jitter."""

import pytest

from repro.fault.retry import (
    ExponentialBackoff,
    FixedDelay,
    RetryPolicySpec,
    _jitter_fraction,
)


class TestFixedDelay:
    def test_zero_is_legacy_immediate_retry(self):
        policy = FixedDelay()
        assert policy.retry_delay(1) == 0.0
        assert policy.retry_delay(7) == 0.0
        assert policy.unavailable_delay(1) is None  # defer to coordinator

    def test_constant_delay(self):
        policy = FixedDelay(delay=2.5, unavailable=4.0)
        assert policy.retry_delay(1) == 2.5
        assert policy.retry_delay(9) == 2.5
        assert policy.unavailable_delay(3) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedDelay(delay=-1.0)
        with pytest.raises(ValueError):
            FixedDelay(unavailable=-0.1)


class TestExponentialBackoff:
    def test_geometric_growth_and_cap(self):
        policy = ExponentialBackoff(base=1.0, factor=2.0, cap=10.0)
        assert policy.retry_delay(1) == 1.0
        assert policy.retry_delay(2) == 2.0
        assert policy.retry_delay(3) == 4.0
        assert policy.retry_delay(4) == 8.0
        assert policy.retry_delay(5) == 10.0  # capped
        assert policy.retry_delay(50) == 10.0

    def test_unavailable_delay_backs_off_too(self):
        policy = ExponentialBackoff(base=1.0, factor=3.0, cap=100.0)
        assert policy.unavailable_delay(2) == policy.retry_delay(2) == 3.0

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            ExponentialBackoff().retry_delay(0)

    def test_jitter_bounds(self):
        policy = ExponentialBackoff(base=4.0, factor=1.0, cap=4.0, jitter=0.5)
        for attempt in range(1, 200):
            delay = policy.retry_delay(attempt)
            assert 2.0 <= delay <= 6.0

    def test_jitter_is_pure_function_of_seed_and_attempt(self):
        a = ExponentialBackoff(base=1.0, jitter=0.9, seed=42)
        b = ExponentialBackoff(base=1.0, jitter=0.9, seed=42)
        delays_a = [a.retry_delay(k) for k in range(1, 20)]
        # Interleaving / evaluation order cannot matter: re-query in
        # reverse and shuffled orders and exactly the same delays come out.
        delays_b = [b.retry_delay(k) for k in range(19, 0, -1)][::-1]
        assert delays_a == delays_b

    def test_different_seeds_decorrelate(self):
        a = ExponentialBackoff(base=1.0, jitter=0.9, seed=1)
        b = ExponentialBackoff(base=1.0, jitter=0.9, seed=2)
        assert [a.retry_delay(k) for k in range(1, 10)] != [
            b.retry_delay(k) for k in range(1, 10)
        ]

    def test_jitter_fraction_deterministic(self):
        assert _jitter_fraction(7, 3) == _jitter_fraction(7, 3)
        assert _jitter_fraction(7, 3) != _jitter_fraction(8, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base=-1.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(factor=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(base=5.0, cap=1.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=1.0)


class TestRetryPolicySpec:
    def test_fixed_build(self):
        policy = RetryPolicySpec(kind="fixed", base=1.5).build(seed=9)
        assert isinstance(policy, FixedDelay)
        assert policy.retry_delay(4) == 1.5

    def test_exponential_build_threads_seed(self):
        spec = RetryPolicySpec(kind="exponential", base=2.0, jitter=0.4)
        a = spec.build(seed=11)
        b = spec.build(seed=11)
        c = spec.build(seed=12)
        assert isinstance(a, ExponentialBackoff)
        assert a.retry_delay(3) == b.retry_delay(3)
        assert a.retry_delay(3) != c.retry_delay(3)

    def test_exponential_build_defaults_base(self):
        policy = RetryPolicySpec(kind="exponential").build()
        assert policy.retry_delay(1) == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicySpec(kind="quadratic")

    def test_spec_is_picklable(self):
        import pickle

        spec = RetryPolicySpec(kind="exponential", base=0.5, jitter=0.2)
        assert pickle.loads(pickle.dumps(spec)) == spec
