"""Keyspace partitioning: which shard owns which key.

A :class:`ShardRouter` is a **pure, total function** from key indices to
shard ids: every key in ``[0, keys)`` maps to exactly one shard, the
mapping depends only on the router's constructor parameters (never on
process state — Python's salted ``hash()`` is deliberately avoided), and
two routers built with the same parameters agree bit-for-bit across
processes, hosts and reseeded runs.  That purity is what makes sharded
simulations reproducible and lets parallel workers route independently
without coordination.

Two partitioning schemes:

* :class:`HashRouter` — a ``splitmix64`` mix of ``(key, seed)`` reduced
  mod the shard count.  Spreads any key distribution (including a
  Zipf-skewed one) near-uniformly: consecutive hot keys land on
  different shards.
* :class:`RangeRouter` — contiguous near-equal ranges, the classic
  range-partitioned layout.  Preserves key locality (range scans touch
  one shard) at the price of concentrating a skewed head on shard 0.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """The splitmix64 finaliser: a high-quality, process-stable 64-bit mix.

    Used instead of ``hash()`` because CPython salts string/bytes hashes
    per process (PYTHONHASHSEED), which would make shard placement
    unreproducible across runs.
    """
    value = value & _MASK64
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


@dataclass(frozen=True)
class ShardRouter:
    """Base router: holds the shard count and the totality contract."""

    shards: int

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")

    def shard_of(self, key: int) -> int:
        """The shard owning key index ``key`` (must be in ``[0, shards)``)."""
        raise NotImplementedError

    def placement(self, keys: int) -> list[int]:
        """The full key -> shard map for a keyspace of ``keys`` keys."""
        return [self.shard_of(key) for key in range(keys)]


@dataclass(frozen=True)
class HashRouter(ShardRouter):
    """Hash partitioning: ``splitmix64(key ^ rotated seed) mod shards``.

    ``seed`` picks one of 2^64 placements — reseeding with the same seed
    (and shard count) reproduces the identical mapping; different seeds
    decorrelate placements (useful for placement-sensitivity studies).
    """

    seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        # ``mix64(seed)`` is a pure function of a frozen field; hoist it
        # here so ``shard_of`` — called once per key per placement — pays
        # one mix instead of two.  (Frozen dataclass, hence the
        # ``object.__setattr__`` escape hatch.)
        object.__setattr__(self, "_mixed_seed", mix64(self.seed))

    def shard_of(self, key: int) -> int:
        if key < 0:
            raise ValueError("key indices are non-negative")
        return mix64(key ^ self._mixed_seed) % self.shards


@dataclass(frozen=True)
class RangeRouter(ShardRouter):
    """Range partitioning: shard ``s`` owns one contiguous key range.

    Ranges are balanced to within one key: shard ``s`` covers
    ``[ceil(s*keys/shards), ceil((s+1)*keys/shards))``.  The mapping is
    monotone in the key, so range scans touch a minimal set of shards.
    """

    keys: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.keys < 1:
            raise ValueError("need at least one key")
        if self.shards > self.keys:
            raise ValueError("cannot spread fewer keys than shards")

    def shard_of(self, key: int) -> int:
        if not 0 <= key < self.keys:
            raise ValueError(f"key {key} outside [0, {self.keys})")
        return key * self.shards // self.keys

    def range_of(self, shard: int) -> tuple[int, int]:
        """The half-open key range ``[lo, hi)`` owned by ``shard``."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} outside [0, {self.shards})")
        lo = -(-shard * self.keys // self.shards)
        hi = -(-(shard + 1) * self.keys // self.shards)
        return lo, hi


#: Router kinds the factory (and the CLI) accepts.
ROUTER_KINDS: tuple[str, ...] = ("hash", "range")


def make_router(
    kind: str, shards: int, keys: int, seed: int = 0
) -> ShardRouter:
    """Build a router by name — the single place the CLI/config resolves one."""
    if kind == "hash":
        return HashRouter(shards=shards, seed=seed)
    if kind == "range":
        return RangeRouter(shards=shards, keys=keys)
    raise ValueError(
        f"unknown router kind {kind!r}; choose from {ROUTER_KINDS}"
    )
