"""JSONL export round-trips and report rendering."""

import json

import pytest

from repro.obs import (
    Histogram,
    SpanKind,
    TraceRecorder,
    export_trace,
    flame_summary,
    load_trace,
    phase_breakdown,
    phase_histograms,
    render_counters,
    render_phase_breakdown,
    render_trace,
    summaries_of,
)


def make_recorder() -> TraceRecorder:
    recorder = TraceRecorder()
    trace = recorder.start_trace("write", 0.0, key="k1")
    attempt = recorder.start_span(
        trace, trace, "attempt", SpanKind.ATTEMPT, 0.0, op="write", number=1
    )
    phase = recorder.start_span(
        trace, attempt, "phase/version", SpanKind.PHASE, 0.0, op="write",
        quorum=3,
    )
    recorder.end_span(phase, 4.0)
    phase = recorder.start_span(
        trace, attempt, "phase/prepare", SpanKind.PHASE, 4.0, op="write",
        quorum=2,
    )
    recorder.end_span(phase, 6.0)
    recorder.end_span(attempt, 6.0)
    recorder.end_span(trace, 6.0, attempts=1)
    recorder.count("message.sent", "PrepareMessage", 2)
    recorder.observe("lock.wait", 1.25)
    return recorder


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = make_recorder()
        path = export_trace(recorder, tmp_path / "trace.jsonl")
        with path.open() as handle:
            records = [json.loads(line) for line in handle]
        assert {r["record"] for r in records} == {"span", "counter", "metric"}

        loaded = load_trace(path)
        assert loaded.spans == recorder.spans
        assert loaded.counters == recorder.counters
        assert summaries_of(loaded)["lock.wait"]["count"] == 1

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        recorder = make_recorder()
        path = export_trace(recorder, tmp_path / "trace.jsonl")
        path.write_text(path.read_text() + "\n\n")
        assert load_trace(path).spans == recorder.spans


class TestPhaseBreakdown:
    def test_stats_per_phase(self):
        stats = phase_breakdown(make_recorder().finished_spans())
        by_phase = {(s.op, s.phase): s for s in stats}
        version = by_phase[("write", "phase/version")]
        assert version.count == 1
        assert version.mean == version.p50 == version.total == 4.0
        assert ("write", "phase/prepare") in by_phase
        # attempts and operations are not "phases"
        assert all(s.phase.startswith(("phase/", "lock", "unavail"))
                   for s in stats)

    def test_render_contains_rows(self):
        text = render_phase_breakdown(
            phase_breakdown(make_recorder().finished_spans())
        )
        assert "phase/version" in text and "phase/prepare" in text

    def test_render_empty(self):
        assert "no timed spans" in render_phase_breakdown([])

    def test_histograms(self):
        histograms = phase_histograms(make_recorder().finished_spans())
        assert histograms[("write", "phase/version")].total == 1


class TestFlameAndTrace:
    def test_flame_summary_nests_and_counts(self):
        text = flame_summary(make_recorder())
        lines = text.splitlines()
        assert "flame summary (1 traces, 4 spans)" in lines[0]
        # children indented under parents, alphabetical within a level
        write_idx = next(
            i for i, line in enumerate(lines) if line.startswith("write")
        )
        assert lines[write_idx + 1].startswith("  attempt")
        assert "phase/prepare" in lines[write_idx + 2]
        assert "phase/version" in lines[write_idx + 3]

    def test_render_trace_tree(self):
        recorder = make_recorder()
        text = render_trace(recorder.trace(1))
        assert text.splitlines()[0].startswith("write [0.00 -> 6.00] ok")
        assert "  attempt" in text
        assert "    phase/version" in text

    def test_render_counters(self):
        assert "PrepareMessage" in render_counters(make_recorder())
        assert "no counters" in render_counters(TraceRecorder())


class TestHistogram:
    def test_bucketing_with_overflow(self):
        histogram = Histogram(bounds=[1.0, 2.0, 4.0])
        histogram.extend([0.5, 1.5, 3.0, 100.0])
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.total == 4

    def test_exponential_bounds(self):
        histogram = Histogram.exponential(start=1.0, factor=2.0, buckets=3)
        assert histogram.bounds == [1.0, 2.0, 4.0]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[])
        with pytest.raises(ValueError):
            Histogram(bounds=[2.0, 1.0])

    def test_render(self):
        histogram = Histogram(bounds=[1.0]).extend([0.5, 0.7, 2.0])
        assert "#" in histogram.render()
