"""Head-to-head: the arbitrary protocol vs the tree-quorum baseline, live.

The paper's Figures 2-4 compare protocols analytically.  This example runs
the actual message-level protocols side by side on the same simulated
cluster conditions — both the BINARY baseline and the ARBITRARY
configuration plug into the simulator directly through the unified
:class:`~repro.quorums.system.QuorumSystem` interface — and prints measured
cost, load and availability next to each paper formula.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import analyse, recommended_tree
from repro.protocols.tree_quorum import TreeQuorumProtocol
from repro.sim import BernoulliFailures, SimulationConfig, WorkloadSpec, simulate

N = 31     # a complete-binary-tree size so both protocols fit the same n
P = 0.8
OPERATIONS = 4000


def run_arbitrary():
    tree = recommended_tree(N)
    result = simulate(
        SimulationConfig(
            tree=tree,
            workload=WorkloadSpec(
                operations=OPERATIONS, read_fraction=0.5, keys=32,
                arrival="poisson", rate=0.25,
            ),
            failures=BernoulliFailures(p=P, seed=1, resample_every=40.0),
            max_attempts=1,
            timeout=8.0,
            seed=1,
        )
    )
    predicted = analyse(tree, p=P)
    return result.summary(), predicted, tree


def run_binary():
    protocol = TreeQuorumProtocol(N)
    result = simulate(
        SimulationConfig(
            system=protocol,
            workload=WorkloadSpec(
                operations=OPERATIONS, read_fraction=0.5, keys=32,
                arrival="poisson", rate=0.25,
            ),
            failures=BernoulliFailures(p=P, seed=1, resample_every=40.0),
            max_attempts=1,
            timeout=8.0,
            seed=1,
        )
    )
    return result.summary(), protocol


def main() -> None:
    arbitrary, predicted, tree = run_arbitrary()
    binary, protocol = run_binary()

    print(f"ARBITRARY tree: {tree.spec()}   |   BINARY: complete tree, n={N}")
    print(f"{OPERATIONS} operations each, Bernoulli failures at p = {P}\n")
    rows = [
        ["read cost",
         round(arbitrary["read_cost"], 2), predicted.read_cost,
         round(binary["read_cost"], 2), round(protocol.average_cost(), 2)],
        ["write cost",
         round(arbitrary["write_cost"], 2), round(predicted.write_cost_avg, 2),
         round(binary["write_cost"], 2), round(protocol.average_cost(), 2)],
        ["read load",
         round(arbitrary["read_load"], 3), round(predicted.read_load, 3),
         round(binary["read_load"], 3), round(protocol.optimal_load(), 3)],
        ["write load",
         round(arbitrary["write_load"], 3), round(predicted.write_load, 3),
         round(binary["write_load"], 3), round(protocol.optimal_load(), 3)],
        ["read availability",
         round(arbitrary["read_availability"], 3),
         round(predicted.read_availability, 3),
         round(binary["read_availability"], 3),
         round(protocol.availability(P), 3)],
        ["write availability",
         round(arbitrary["write_availability"], 3),
         round(predicted.write_availability, 3),
         round(binary["write_availability"], 3),
         round(protocol.availability(P), 3)],
    ]
    print(format_table(
        ["quantity", "ARB sim", "ARB paper", "BIN sim", "BIN paper"],
        rows,
    ))
    print()
    print("The paper's Figure 2/4 story, measured: the arbitrary protocol's")
    print("writes touch far fewer replicas and its uniform strategies land")
    print("the busiest replica near the analytical optimum without any")
    print("coordination.  BINARY is doubly penalised in practice: its")
    print("greedy constructor takes cheap root-to-leaf paths (sim cost")
    print("below the formula's average) but those paths all pass through")
    print("the root, so the measured load blows far past the 2/(h+2)")
    print("optimum — achieving that optimum needs a carefully balanced")
    print("mixture over expensive quorums, exactly the trade-off the")
    print("paper's introduction criticises.")


if __name__ == "__main__":
    main()
