"""Picklable task records and the three parallel workload orchestrators.

Workers in a process pool receive tasks by pickling, so tasks carry only
plain data: a sweep shard is (quantities, sizes, p, configs); a Monte-Carlo
chunk is (system reference, op, p, samples, seed); a simulation repeat is a
:class:`SimParams` record.  Quorum systems are never pickled — workers
rebuild them from a :data:`SystemRef` (``("tree", spec)`` or
``("protocol", name, n)``), which is both cheaper than shipping a
materialised system and immune to unpicklable caches.

Each orchestrator derives its per-task seeds from the master seed with
:func:`~repro.runner.pool.derive_seeds` and folds shard results in task
order, so output is bit-identical across job counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.fault.retry import RetryPolicySpec

from repro.analysis.sweeps import (
    DEFAULT_P,
    DEFAULT_SIZES,
    FigureSeries,
    sweep_configurations,
)
from repro.core import from_spec
from repro.core.config import ALL_CONFIGURATIONS, Configuration
from repro.core.protocol import ArbitraryProtocol
from repro.quorums.availability import estimate_availability_monte_carlo
from repro.quorums.system import DEFAULT_MAX_QUORUMS, QuorumSystem
from repro.runner.merge import merge_availability, merge_series
from repro.runner.pool import ProgressCallback, derive_seeds, run_tasks
from repro.sim.monitor import Monitor, ShardedMonitor

#: Plain-data reference to a quorum system: ``("tree", "1-3-5")`` or
#: ``("protocol", "majority", 15)``.
SystemRef = tuple

#: Default Monte-Carlo samples per pool task: large enough to amortise the
#: per-task kernel setup, small enough to shard a default 100k estimate
#: across four workers.
DEFAULT_AVAILABILITY_CHUNK = 25_000

#: Default sweep sizes per pool task.
DEFAULT_SIZE_CHUNK = 4


def resolve_system(ref: SystemRef) -> QuorumSystem:
    """Rebuild the referenced quorum system inside a worker."""
    from repro.protocols.zoo import quorum_system

    kind = ref[0]
    if kind == "tree":
        return ArbitraryProtocol(from_spec(ref[1]))
    if kind == "protocol":
        return quorum_system(ref[1], ref[2])
    raise ValueError(f"unknown system reference kind {kind!r}")


# ----------------------------------------------------------------------
# parameter sweeps
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepTask:
    """One shard of a figure sweep: a contiguous run of sizes."""

    quantities: tuple[str, ...]
    sizes: tuple[int, ...]
    p: float
    configs: tuple[Configuration, ...]


def _run_sweep_task(task: SweepTask) -> FigureSeries:
    return sweep_configurations(
        task.quantities, task.sizes, task.p, task.configs
    )


def parallel_sweep(
    quantities: tuple[str, ...],
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    p: float = DEFAULT_P,
    configs: tuple[Configuration, ...] = ALL_CONFIGURATIONS,
    jobs: int = 1,
    size_chunk: int = DEFAULT_SIZE_CHUNK,
    progress: ProgressCallback | None = None,
) -> FigureSeries:
    """A figure sweep sharded by size runs across the pool.

    Shards are contiguous size runs (every shard covers all configs), and
    the merge concatenates per-config point tuples in shard order, so the
    result equals ``sweep_configurations(quantities, sizes, p, configs)``
    exactly at any job count.
    """
    if size_chunk < 1:
        raise ValueError("size_chunk must be positive")
    tasks = [
        SweepTask(
            quantities=tuple(quantities),
            sizes=tuple(sizes[start:start + size_chunk]),
            p=p,
            configs=tuple(configs),
        )
        for start in range(0, len(sizes), size_chunk)
    ]
    if not tasks:
        return FigureSeries(quantities=tuple(quantities), series={}, p=p)
    shards = run_tasks(_run_sweep_task, tasks, jobs=jobs, progress=progress)
    return merge_series(shards)


# ----------------------------------------------------------------------
# Monte-Carlo availability
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AvailabilityChunk:
    """One Monte-Carlo shard: ``samples`` draws under its own child seed."""

    ref: SystemRef
    op: str
    p: float
    samples: int
    seed: int


def _run_availability_chunk(chunk: AvailabilityChunk) -> float:
    system = resolve_system(chunk.ref)
    quorums = system.materialise(chunk.op, DEFAULT_MAX_QUORUMS)
    return estimate_availability_monte_carlo(
        quorums,
        chunk.p,
        universe=system.universe,
        samples=chunk.samples,
        seed=chunk.seed,
    )


def parallel_availability(
    ref: SystemRef,
    p: float,
    op: str = "read",
    samples: int = 100_000,
    seed: int = 0,
    jobs: int = 1,
    chunk: int = DEFAULT_AVAILABILITY_CHUNK,
    progress: ProgressCallback | None = None,
) -> float:
    """Monte-Carlo availability estimated over seed-independent chunks.

    The chunk layout and per-chunk seeds depend only on ``samples``,
    ``chunk`` and ``seed`` — never on ``jobs`` — and chunk fractions merge
    by ``fsum``-weighted mean, so the estimate is bit-identical across job
    counts.  (It intentionally differs from a single ``samples``-draw call:
    sharding re-seeds per chunk.)
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    if chunk < 1:
        raise ValueError("chunk must be positive")
    sizes = [chunk] * (samples // chunk)
    if samples % chunk:
        sizes.append(samples % chunk)
    seeds = derive_seeds(seed, len(sizes))
    tasks = [
        AvailabilityChunk(
            ref=ref, op=op, p=p, samples=size, seed=child_seed
        )
        for size, child_seed in zip(sizes, seeds)
    ]
    fractions = run_tasks(
        _run_availability_chunk, tasks, jobs=jobs, progress=progress
    )
    return merge_availability(fractions, sizes)


# ----------------------------------------------------------------------
# repeated-seed simulations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SimParams:
    """Plain-data simulation parameters (the CLI's knobs, picklable).

    The fault-layer fields all default to off, so a legacy record builds a
    byte-identical configuration: ``retry_policy`` is a picklable
    :class:`~repro.fault.retry.RetryPolicySpec` (workers rebuild the
    policy object per coordinator), ``chaos`` names a scenario from
    :data:`~repro.fault.scenarios.CHAOS_SCENARIOS` (or ``"all"``)
    composed onto the ``p``-driven failures, and ``chaos_horizon`` bounds
    the scenario's schedule.
    """

    spec: str = "1-3-5"
    operations: int = 2000
    read_fraction: float = 0.5
    p: float = 1.0
    seed: int = 0
    protocol: str | None = None
    n: int = 0
    drop: float = 0.0
    max_attempts: int = 1
    trace: bool = False
    retry_policy: "RetryPolicySpec | None" = None
    detector: bool = False
    chaos: str | None = None
    chaos_horizon: float = 1000.0
    check_invariants: bool = False
    batch_window: float = 0.0
    leases: bool = False
    reshape_at: float = 0.0
    reshape_spec: str | None = None
    reshape_online: bool = True


def build_sim_config(params: SimParams):
    """The ``(SimulationConfig, label)`` pair a :class:`SimParams` describes.

    This is the single source of the CLI's simulation defaults (Poisson
    arrivals at rate 0.25 over 32 keys, timeout 8, Bernoulli failures
    resampled every 40 time units when ``p < 1``); ``repro.cli`` delegates
    here so CLI runs and pool workers build byte-identical configs.
    """
    from repro.protocols.zoo import quorum_system
    from repro.sim import BernoulliFailures, SimulationConfig, WorkloadSpec
    from repro.sim.failures import CompositeFailures, NoFailures

    failures = (
        NoFailures() if params.p >= 1.0
        else BernoulliFailures(
            p=params.p, seed=params.seed, resample_every=40.0
        )
    )
    workload = WorkloadSpec(
        operations=params.operations,
        read_fraction=params.read_fraction,
        keys=32,
        arrival="poisson",
        rate=0.25,
    )
    if params.protocol is None or params.protocol == "arbitrary-spec":
        tree = from_spec(params.spec)
        system = None
        n = tree.n
        label = f"simulation of {params.spec}"
    else:
        tree = None
        system = quorum_system(
            params.protocol, params.n or from_spec(params.spec).n
        )
        n = system.n
        label = f"simulation of {system.name} (n = {system.n})"
    if params.chaos is not None:
        from repro.fault.scenarios import chaos_injector

        scenario = chaos_injector(
            params.chaos, n, seed=params.seed, horizon=params.chaos_horizon
        )
        failures = (
            scenario if isinstance(failures, NoFailures)
            else CompositeFailures([failures, scenario])
        )
        label = f"{label} under {params.chaos} chaos"
    config = SimulationConfig(
        tree=tree, system=system, workload=workload,
        failures=failures, drop_probability=params.drop,
        max_attempts=params.max_attempts, timeout=8.0,
        seed=params.seed, trace=params.trace,
        retry_policy=params.retry_policy,
        detector=params.detector,
        check_invariants=params.check_invariants,
        batch_window=params.batch_window,
        leases=params.leases,
        reshape_at=params.reshape_at,
        reshape_spec=params.reshape_spec,
        reshape_online=params.reshape_online,
    )
    return config, label


def _run_sim_task(params: SimParams) -> Monitor:
    from repro.sim import simulate

    config, _ = build_sim_config(params)
    return simulate(config).monitor


def parallel_simulations(
    params: SimParams,
    repeats: int,
    master_seed: int | None = None,
    jobs: int = 1,
    progress: ProgressCallback | None = None,
) -> list[Monitor]:
    """Run ``repeats`` independently seeded simulations of one config.

    Repeat k always simulates under the k-th child seed of ``master_seed``
    (default: ``params.seed``), so the monitor list — and any
    :func:`~repro.runner.merge.merge_monitors` fold over it — is identical
    at every job count.
    """
    if repeats < 1:
        raise ValueError("need at least one repeat")
    master = params.seed if master_seed is None else master_seed
    tasks = [
        replace(params, seed=child_seed)
        for child_seed in derive_seeds(master, repeats)
    ]
    return run_tasks(_run_sim_task, tasks, jobs=jobs, progress=progress)


# ----------------------------------------------------------------------
# repeated-seed sharded simulations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardParams:
    """Plain-data sharded-simulation parameters (picklable).

    ``systems`` carries :data:`SystemRef` tuples, never materialised
    quorum systems — workers rebuild each shard's system from its
    reference, exactly like the other task records.  One entry is
    broadcast to every shard.
    """

    shards: int = 4
    systems: tuple = (("tree", "1-3-5"),)
    operations: int = 2000
    read_fraction: float = 0.5
    keys: int = 1024
    zipf_s: float = 0.0
    arrival: str = "poisson"
    rate: float = 0.25
    diurnal_period: float = 0.0
    diurnal_amplitude: float = 0.0
    router: str = "hash"
    router_seed: int = 0
    balancer: str = "round-robin"
    clients_per_shard: int = 1
    p: float = 1.0
    regions: int = 0
    local_latency: float = 1.0
    remote_latency: float = 3.0
    drop: float = 0.0
    timeout: float = 8.0
    max_attempts: int = 3
    service_time: float = 0.0
    seed: int = 0
    retry_policy: "RetryPolicySpec | None" = None
    detector: bool = False
    batch_window: float = 0.0
    leases: bool = False


def build_sharded_config(params: ShardParams):
    """The ``(ShardedConfig, label)`` pair a :class:`ShardParams` describes.

    The single source of the ``shard`` CLI subcommand's defaults; workers
    and CLI runs build byte-identical configs from the same record.
    """
    from repro.shard import ShardedConfig
    from repro.sim import WorkloadSpec

    workload = WorkloadSpec(
        operations=params.operations,
        read_fraction=params.read_fraction,
        keys=params.keys,
        arrival=params.arrival,
        rate=params.rate,
        zipf_s=params.zipf_s,
        diurnal_period=params.diurnal_period,
        diurnal_amplitude=params.diurnal_amplitude,
    )
    config = ShardedConfig(
        workload=workload,
        shards=params.shards,
        systems=params.systems,
        router=params.router,
        router_seed=params.router_seed,
        balancer=params.balancer,
        clients_per_shard=params.clients_per_shard,
        p=params.p,
        regions=params.regions,
        local_latency=params.local_latency,
        remote_latency=params.remote_latency,
        drop_probability=params.drop,
        timeout=params.timeout,
        max_attempts=params.max_attempts,
        service_time=params.service_time,
        seed=params.seed,
        retry_policy=params.retry_policy,
        detector=params.detector,
        batch_window=params.batch_window,
        leases=params.leases,
    )
    names = ", ".join("/".join(str(part) for part in ref[1:]) for ref in params.systems)
    label = (
        f"sharded simulation: {params.shards} shards of {names} "
        f"({params.router} router, {params.keys} keys)"
    )
    return config, label


def _run_shard_sim_task(params: ShardParams) -> ShardedMonitor:
    from repro.shard import simulate_sharded

    config, _ = build_sharded_config(params)
    return simulate_sharded(config).monitor


def parallel_shard_simulations(
    params: ShardParams,
    repeats: int,
    master_seed: int | None = None,
    jobs: int = 1,
    progress: ProgressCallback | None = None,
) -> list[ShardedMonitor]:
    """Run ``repeats`` independently seeded sharded simulations.

    Same contract as :func:`parallel_simulations`: repeat k runs under the
    k-th child seed of ``master_seed`` (default ``params.seed``) no matter
    the job count, and the returned list folds shard-wise through
    :func:`~repro.runner.merge.merge_sharded_monitors` to bytes identical
    to a serial loop.
    """
    if repeats < 1:
        raise ValueError("need at least one repeat")
    master = params.seed if master_seed is None else master_seed
    tasks = [
        replace(params, seed=child_seed)
        for child_seed in derive_seeds(master, repeats)
    ]
    return run_tasks(_run_shard_sim_task, tasks, jobs=jobs, progress=progress)
