"""Equation-3.2 expected loads and the Section-3.2.3 stability notion.

A system is *stable* when the expected load stays close to the optimal
system load, which happens exactly when the operation's availability is
high — the paper uses this to argue Algorithm-1 trees behave well once
``p > 0.8``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import metrics
from repro.core.tree import ArbitraryTree


@dataclass(frozen=True)
class ExpectedLoads:
    """Optimal and expected loads of one tree at one ``p``."""

    p: float
    read_load: float
    write_load: float
    expected_read_load: float
    expected_write_load: float


def expected_loads(tree: ArbitraryTree, p: float) -> ExpectedLoads:
    """Evaluate Equation 3.2 for both operations of one tree."""
    return ExpectedLoads(
        p=p,
        read_load=metrics.read_load(tree),
        write_load=metrics.write_load(tree),
        expected_read_load=metrics.expected_read_load(tree, p),
        expected_write_load=metrics.expected_write_load(tree, p),
    )


@dataclass(frozen=True)
class StabilityReport:
    """How far expected loads drift from optimal loads across ``p`` values."""

    p_values: tuple[float, ...]
    read_gaps: tuple[float, ...]
    write_gaps: tuple[float, ...]

    def stable_from(self, tolerance: float = 0.05) -> float | None:
        """Smallest swept ``p`` from which *both* gaps stay within tolerance.

        Returns ``None`` when no swept ``p`` achieves it.
        """
        for i, p in enumerate(self.p_values):
            if all(
                read_gap <= tolerance and write_gap <= tolerance
                for read_gap, write_gap in zip(
                    self.read_gaps[i:], self.write_gaps[i:]
                )
            ):
                return p
        return None


def stability_report(
    tree: ArbitraryTree,
    p_values: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99),
) -> StabilityReport:
    """Expected-vs-optimal load gaps over a sweep of ``p``.

    The paper observes the ARBITRARY configuration's expected loads converge
    to the optimal loads once ``p > 0.8``; this report quantifies that.
    """
    read_gaps = []
    write_gaps = []
    for p in p_values:
        loads = expected_loads(tree, p)
        read_gaps.append(loads.expected_read_load - loads.read_load)
        write_gaps.append(loads.expected_write_load - loads.write_load)
    return StabilityReport(
        p_values=tuple(p_values),
        read_gaps=tuple(read_gaps),
        write_gaps=tuple(write_gaps),
    )
