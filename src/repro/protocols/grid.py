"""The grid protocol — Cheung, Ammar & Ahamad [4].

The ``n = rows x cols`` replicas are arranged in a rectangular grid.

* **Read quorum** — one replica from *every column* (a column cover),
  so reads cost ``cols`` messages.
* **Write quorum** — *all* replicas of one column plus one replica from
  every other column, so writes cost ``rows + cols - 1`` messages.

Every read quorum intersects every write quorum (the cover meets the full
column), and two write quorums intersect as well (each cover meets the other
full column).  On a square ``sqrt(n) x sqrt(n)`` grid the smallest quorum
has size ``sqrt(n)``, which by Naor-Wool is what makes the optimal load
reach the best possible ``O(1/sqrt(n))`` — the standard the paper measures
tree protocols against in its introduction.

SIDs are assigned row-major: replica ``(row, col)`` has SID
``row * cols + col``.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator
from itertools import product

from repro.protocols.base import ProtocolModel, check_probability
from repro.quorums.liveness import Liveness, as_oracle


def square_side(n: int) -> int:
    """Side length of a square grid with ``n`` replicas (n must be square)."""
    side = math.isqrt(n)
    if side * side != n:
        raise ValueError(f"n={n} is not a perfect square")
    return side


class GridProtocol(ProtocolModel):
    """The grid protocol on a ``rows x cols`` grid (square by default)."""

    name = "Grid"

    #: The write selector prefers one fully-live column and covers the
    #: rest, which is not uniform over the enumerated quorum collection —
    #: keep the structural path in the simulator.
    uniform_selection = False

    def __init__(self, n: int, rows: int | None = None, cols: int | None = None) -> None:
        super().__init__(n)
        if rows is None and cols is None:
            rows = cols = square_side(n)
        elif rows is None:
            assert cols is not None
            rows = n // cols
        elif cols is None:
            cols = n // rows
        if rows * cols != n:
            raise ValueError(f"{rows}x{cols} grid does not hold {n} replicas")
        self._rows = rows
        self._cols = cols

    @property
    def rows(self) -> int:
        """Number of grid rows."""
        return self._rows

    @property
    def cols(self) -> int:
        """Number of grid columns."""
        return self._cols

    def sid(self, row: int, col: int) -> int:
        """SID of the replica at grid position (row, col)."""
        if not (0 <= row < self._rows and 0 <= col < self._cols):
            raise IndexError(f"({row}, {col}) outside {self._rows}x{self._cols}")
        return row * self._cols + col

    def column(self, col: int) -> frozenset[int]:
        """All SIDs of one column."""
        return frozenset(self.sid(row, col) for row in range(self._rows))

    # ------------------------------------------------------------------
    # quorum enumeration
    # ------------------------------------------------------------------

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """Every column cover: one replica per column (``rows^cols`` covers)."""
        for rows in product(range(self._rows), repeat=self._cols):
            yield frozenset(
                self.sid(row, col) for col, row in enumerate(rows)
            )

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """One full column plus a cover of the remaining columns."""
        for full_col in range(self._cols):
            other_cols = [c for c in range(self._cols) if c != full_col]
            for rows in product(range(self._rows), repeat=len(other_cols)):
                cover = frozenset(
                    self.sid(row, col) for col, row in zip(other_cols, rows)
                )
                yield self.column(full_col) | cover

    def quorum_masks(self, op: str = "read") -> list[int]:
        """Mask twin of the cover enumerations, same cartesian order."""
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        column_bits = [
            [1 << self.sid(row, col) for row in range(self._rows)]
            for col in range(self._cols)
        ]
        if op == "read":
            return [sum(pick) for pick in product(*column_bits)]
        masks: list[int] = []
        for full_col in range(self._cols):
            full_mask = sum(column_bits[full_col])
            others = [
                column_bits[col]
                for col in range(self._cols)
                if col != full_col
            ]
            masks.extend(full_mask | sum(pick) for pick in product(*others))
        return masks

    # ------------------------------------------------------------------
    # failure-aware selection
    # ------------------------------------------------------------------

    def _live_cover(
        self,
        columns: list[int],
        oracle,
        rng: random.Random | None,
    ) -> list[int] | None:
        """One live replica per listed column, or ``None``."""
        picks: list[int] = []
        for col in columns:
            alive = [
                self.sid(row, col)
                for row in range(self._rows)
                if oracle(self.sid(row, col))
            ]
            if not alive:
                return None
            picks.append(rng.choice(alive) if rng is not None else alive[0])
        return picks

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """A column cover of live replicas, or ``None``."""
        oracle = as_oracle(live)
        cover = self._live_cover(list(range(self._cols)), oracle, rng)
        return None if cover is None else frozenset(cover)

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """A fully-live column plus a live cover of the other columns."""
        oracle = as_oracle(live)
        full_candidates = [
            col for col in range(self._cols)
            if all(oracle(sid) for sid in self.column(col))
        ]
        if not full_candidates:
            return None
        full_col = (
            rng.choice(full_candidates) if rng is not None
            else full_candidates[0]
        )
        others = [col for col in range(self._cols) if col != full_col]
        cover = self._live_cover(others, oracle, rng)
        if cover is None:
            return None
        return self.column(full_col) | frozenset(cover)

    # ------------------------------------------------------------------
    # analytic quantities
    # ------------------------------------------------------------------

    def read_cost(self) -> float:
        """One replica per column: ``cols``."""
        return float(self._cols)

    def write_cost(self) -> float:
        """A full column plus a cover: ``rows + cols - 1``."""
        return float(self._rows + self._cols - 1)

    def read_availability(self, p: float) -> float:
        """Every column needs a live replica: ``(1 - (1-p)^rows)^cols``."""
        check_probability(p)
        return (1.0 - (1.0 - p) ** self._rows) ** self._cols

    def write_availability(self, p: float) -> float:
        """Some fully-live column plus a live replica in every other column.

        With ``a = p^rows`` (column fully live) and ``b = 1 - (1-p)^rows``
        (column non-empty of live replicas), independence across columns
        gives ``b^cols - (b - a)^cols``: covers exist everywhere minus the
        event that no column is fully live.
        """
        check_probability(p)
        a = p**self._rows
        b = 1.0 - (1.0 - p) ** self._rows
        return b**self._cols - (b - a) ** self._cols

    def read_load(self) -> float:
        """Uniform covers touch each replica with probability ``1/rows``.

        For the square grid this is the optimal ``1/sqrt(n)``.
        """
        return 1.0 / self._rows

    def write_load(self) -> float:
        """Load of the uniform write strategy.

        A replica is in the fully-written column with probability
        ``1/cols`` and in the cover of another column with probability
        ``(cols - 1)/cols * 1/rows``; roughly ``2/sqrt(n)`` on a square
        grid.
        """
        in_full = 1.0 / self._cols
        in_cover = (self._cols - 1.0) / self._cols / self._rows
        return in_full + in_cover
