"""Wall-clock :class:`~repro.runtime.interfaces.Clock` over asyncio.

The simulator's :class:`~repro.sim.events.Scheduler` *is* a Clock; this
module is its real-time twin.  ``now`` is the event loop's monotonic
``loop.time()`` and callbacks ride ``loop.call_later``, so a coordinator
timeout of ``2.0`` means two wall seconds and retry backoff sleeps real
time — no protocol code can tell which clock it is running on.

Ordering contract: asyncio's ready queue is FIFO, so two callbacks
scheduled with the same delay fire in scheduling order — the same
guarantee the simulator's (time, sequence) heap gives, which the
coordinator's zero-delay completion deliveries rely on.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable
from typing import Any

#: Sentinel ``arg`` meaning "call the callback with no argument at all"
#: (mirrors :data:`repro.sim.events._NO_ARG`; ``None`` is a legal value).
_NO_ARG = object()


class AsyncTimerHandle:
    """Cancellable handle for :meth:`AsyncClock.schedule` events.

    Wraps the loop's :class:`asyncio.TimerHandle`; satisfies the seam's
    :class:`~repro.runtime.interfaces.CancelHandle` protocol and exposes
    the absolute fire time like the simulator's ``EventHandle`` does.
    """

    __slots__ = ("_handle", "_time")

    def __init__(self, handle: asyncio.TimerHandle, time: float) -> None:
        self._handle = handle
        self._time = time

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._handle.cancel()

    @property
    def time(self) -> float:
        """Absolute (loop) time the event is scheduled for."""
        return self._time


class AsyncClock:
    """The asyncio event loop seen through the transport-seam Clock."""

    __slots__ = ("_loop",)

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()

    @property
    def now(self) -> float:
        """Monotonic wall-clock seconds (``loop.time()``)."""
        return self._loop.time()

    def call_later(
        self,
        delay: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
    ) -> None:
        """Fire-and-forget: run ``callback`` after ``delay`` wall seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if arg is _NO_ARG:
            self._loop.call_later(delay, callback)
        else:
            self._loop.call_later(delay, callback, arg)

    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
    ) -> None:
        """Handle-free absolute-time variant of :meth:`call_later`."""
        self.call_later(time - self._loop.time(), callback, arg)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
    ) -> AsyncTimerHandle:
        """Like :meth:`call_later` but returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if arg is _NO_ARG:
            handle = self._loop.call_later(delay, callback)
        else:
            handle = self._loop.call_later(delay, callback, arg)
        return AsyncTimerHandle(handle, self._loop.time() + delay)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        arg: Any = _NO_ARG,
    ) -> AsyncTimerHandle:
        """Absolute-time variant of :meth:`schedule`."""
        return self.schedule(time - self._loop.time(), callback, arg)
