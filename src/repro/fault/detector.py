"""Suspicion-based failure detection from timeout/drop evidence.

The simulator's liveness oracle is *perfect* about crashes (Section 2.2
makes failures detectable), but plenty of real trouble is invisible to
it: a site whose link is dropping messages, or a straggler whose replies
arrive after the quorum timeout, is "up" by the oracle and yet poisons
every quorum it joins.  The coordinator used to keep selecting quorums
through such sites at random, re-timing-out over and over.

:class:`SuspectList` is the adaptive layer in between — an eventually
accurate, evidence-driven detector in the Chandra–Toueg mould:

* **suspicion** — every quorum member that failed to answer before the
  attempt timed out earns one piece of evidence; at ``threshold`` pieces
  the site becomes *suspected* until ``now + probe_interval``;
* **rehabilitation** — suspicion expires after ``probe_interval`` (the
  site gets probed again by simply becoming selectable); a reply from a
  suspected site exonerates it immediately and clears its evidence;
* **selection preference** — :meth:`preferred` filters a live set down
  to the unsuspected members.  Callers *prefer* quorums inside that set
  and fall back to blind selection when none exists, so suspicion can
  only redirect load, never manufacture unavailability.

Every transition emits a span event on the recorder's ``failure_detector``
singleton trace, and the ``fault.suspect`` counters (``suspected`` /
``rehabilitated`` / ``exonerated`` / ``selection_avoided``) make the
detector's effect visible in ``repro report``.  The detector is driven
purely by simulated time passed in by its callers — no wall clock, no
RNG — so runs remain bit-for-bit reproducible.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.obs.recorder import NULL_RECORDER, NullRecorder

#: Counter group used for every detector statistic.
COUNTER_GROUP = "fault.suspect"


class SuspectList:
    """Evidence-driven suspicion with timed rehabilitation.

    Parameters
    ----------
    probe_interval:
        How long (simulated time) a suspicion lasts before the site is
        rehabilitated and probed again.
    threshold:
        Pieces of evidence (missed replies / drops) required before a
        site becomes suspected.  1 = suspect on first miss.
    recorder:
        Trace recorder for transition events and counters (the no-op
        default keeps the detector free when tracing is off).
    """

    __slots__ = (
        "_probe_interval",
        "_threshold",
        "_recorder",
        "_trace",
        "_evidence",
        "_suspected_until",
        "suspicions_total",
        "rehabilitations_total",
        "exonerations_total",
        "selection_avoided",
    )

    def __init__(
        self,
        probe_interval: float = 30.0,
        threshold: int = 1,
        recorder: NullRecorder = NULL_RECORDER,
    ) -> None:
        if probe_interval <= 0:
            raise ValueError("probe interval must be positive")
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self._probe_interval = probe_interval
        self._threshold = threshold
        self._recorder = recorder
        self._trace = 0
        #: sid -> accumulated evidence (missed replies, drops).
        self._evidence: dict[int, int] = {}
        #: sid -> simulated time the suspicion expires.
        self._suspected_until: dict[int, float] = {}
        self.suspicions_total = 0
        self.rehabilitations_total = 0
        self.exonerations_total = 0
        self.selection_avoided = 0

    @property
    def probe_interval(self) -> float:
        """How long a suspicion lasts."""
        return self._probe_interval

    @property
    def suspects_active(self) -> int:
        """Currently suspected site count (may include expired entries
        not yet swept; sweeps happen on every query with a ``now``)."""
        return len(self._suspected_until)

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def _transition(self, name: str, sid: int, now: float) -> None:
        recorder = self._recorder
        if not recorder.enabled:
            return
        if not self._trace:
            self._trace = recorder.singleton_trace("failure_detector")
        recorder.event(
            self._trace, self._trace, name, now,
            sid=sid, active=len(self._suspected_until),
        )
        recorder.count(COUNTER_GROUP, name)

    def record_timeout(self, sids: Iterable[int], now: float) -> None:
        """Charge every silent quorum member one piece of evidence."""
        for sid in sids:
            self._record_evidence(sid, now)

    def record_drop(self, sid: int, now: float) -> None:
        """Charge one site for a message known to have been dropped."""
        self._record_evidence(sid, now)

    def _record_evidence(self, sid: int, now: float) -> None:
        count = self._evidence.get(sid, 0) + 1
        self._evidence[sid] = count
        if count < self._threshold:
            return
        already = sid in self._suspected_until
        self._suspected_until[sid] = now + self._probe_interval
        if not already:
            self.suspicions_total += 1
            self._transition("suspected", sid, now)

    def exonerate(self, sid: int, now: float) -> None:
        """A reply arrived from ``sid``: clear its evidence and suspicion."""
        self._evidence.pop(sid, None)
        if self._suspected_until.pop(sid, None) is not None:
            self.exonerations_total += 1
            self._transition("exonerated", sid, now)

    def _sweep(self, now: float) -> None:
        expired = [
            sid for sid, until in self._suspected_until.items() if until <= now
        ]
        for sid in expired:
            del self._suspected_until[sid]
            # Expired suspicion also resets evidence: the probe starts
            # from a clean slate rather than re-suspecting on one miss
            # forever once threshold > 1 was crossed.
            self._evidence.pop(sid, None)
            self.rehabilitations_total += 1
            self._transition("rehabilitated", sid, now)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def is_suspected(self, sid: int, now: float) -> bool:
        """Whether ``sid`` is currently suspected (rehabilitating lazily)."""
        self._sweep(now)
        return sid in self._suspected_until

    def suspected(self, now: float) -> frozenset[int]:
        """The set of currently suspected sites."""
        self._sweep(now)
        return frozenset(self._suspected_until)

    def chronic(self, now: float, min_evidence: int = 1) -> frozenset[int]:
        """Currently suspected sites with at least ``min_evidence`` strikes.

        Reconfiguration planning consumes this: a site that is not just
        momentarily suspected but has accumulated repeat evidence is a
        candidate for demotion to a deep/wide tree level (where a single
        unavailable replica hurts the fewest quorums).
        """
        self._sweep(now)
        return frozenset(
            sid
            for sid in self._suspected_until
            if self._evidence.get(sid, 0) >= min_evidence
        )

    def preferred(
        self, live: Iterable[int], now: float
    ) -> tuple[tuple[int, ...], bool]:
        """``(live minus suspected, anything_filtered)``.

        The second element tells the caller whether preference actually
        narrowed the candidate set — when False the preferred selection
        *is* the blind selection and no fallback pass is needed.
        """
        self._sweep(now)
        live_tuple = tuple(live)
        if not self._suspected_until:
            return live_tuple, False
        suspected = self._suspected_until
        kept = tuple(sid for sid in live_tuple if sid not in suspected)
        return kept, len(kept) != len(live_tuple)

    def note_avoided(self) -> None:
        """Count one selection that successfully avoided suspected sites."""
        self.selection_avoided += 1
        if self._recorder.enabled:
            self._recorder.count(COUNTER_GROUP, "selection_avoided")

    def counters(self) -> dict[str, int]:
        """The headline counters as a plain dict (for reports/tests)."""
        return {
            "suspects_active": self.suspects_active,
            "suspicions_total": self.suspicions_total,
            "rehabilitations_total": self.rehabilitations_total,
            "exonerations_total": self.exonerations_total,
            "selection_avoided": self.selection_avoided,
        }

    def __repr__(self) -> str:
        return (
            f"SuspectList(active={self.suspects_active}, "
            f"suspected={self.suspicions_total}, "
            f"avoided={self.selection_avoided})"
        )
