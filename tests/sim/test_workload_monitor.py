"""Unit tests for workload generation and the measurement monitor."""

import math
import random

import pytest

from repro.core.builder import from_spec
from repro.sim.coordinator import FailureReason, OperationOutcome
from repro.sim.engine import SimulationConfig, build_simulation
from repro.sim.monitor import Monitor
from repro.sim.workload import Workload, WorkloadSpec


class TestWorkloadSpec:
    def test_defaults_valid(self):
        WorkloadSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"operations": -1},
            {"read_fraction": 1.5},
            {"keys": 0},
            {"arrival": "burst"},
            {"arrival": "poisson", "rate": 0.0},
            {"zipf_s": -1.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


def _run_workload(spec: WorkloadSpec, seed: int = 0):
    config = SimulationConfig(tree=from_spec("1-3-5"), workload=spec, seed=seed)
    scheduler, workload, monitor, network, sites = build_simulation(config)
    workload.start()
    while workload.completed < spec.operations:
        assert scheduler.step(), "stalled"
    return workload, monitor


class TestWorkloadExecution:
    def test_closed_loop_completes_all_ops(self):
        workload, monitor = _run_workload(WorkloadSpec(operations=50))
        assert workload.issued == 50
        assert workload.completed == 50
        assert monitor.total_operations == 50

    def test_poisson_completes_all_ops(self):
        workload, monitor = _run_workload(
            WorkloadSpec(operations=50, arrival="poisson", rate=0.5)
        )
        assert monitor.total_operations == 50

    def test_read_fraction_respected(self):
        _workload, monitor = _run_workload(
            WorkloadSpec(operations=600, read_fraction=0.75)
        )
        fraction = monitor.reads.attempted / 600
        assert fraction == pytest.approx(0.75, abs=0.06)

    def test_pure_read_workload(self):
        _workload, monitor = _run_workload(
            WorkloadSpec(operations=40, read_fraction=1.0)
        )
        assert monitor.writes.attempted == 0

    def test_zero_operations_complete_immediately(self):
        config = SimulationConfig(
            tree=from_spec("1-3-5"), workload=WorkloadSpec(operations=0)
        )
        scheduler, workload, monitor, *_ = build_simulation(config)
        finished = []
        workload._on_complete = lambda: finished.append(True)
        workload.start()
        assert finished == [True]

    def test_zipf_skews_keys(self):
        _workload, monitor = _run_workload(
            WorkloadSpec(operations=400, keys=8, zipf_s=1.5, read_fraction=1.0)
        )
        counts = {}
        for outcome in monitor.outcomes:
            counts[outcome.key] = counts.get(outcome.key, 0) + 1
        assert counts.get("k0", 0) > counts.get("k7", 0)


def _outcome(op_type="read", success=True, quorum=(0, 3), latency=2.0,
             reason=FailureReason.NONE, attempts=1):
    return OperationOutcome(
        op_type=op_type, key="k", success=success,
        quorum=frozenset(quorum), attempts=attempts,
        started_at=0.0, finished_at=latency,
        reason=reason if not success else FailureReason.NONE,
    )


class TestMonitor:
    def test_availability_fractions(self):
        monitor = Monitor(replica_ids=tuple(range(8)))
        monitor.record(_outcome(success=True))
        monitor.record(_outcome(success=False, reason=FailureReason.UNAVAILABLE))
        assert monitor.reads.availability == pytest.approx(0.5)
        assert math.isnan(monitor.writes.availability)

    def test_mean_cost(self):
        monitor = Monitor(replica_ids=tuple(range(8)))
        monitor.record(_outcome(quorum=(0, 3)))
        monitor.record(_outcome(quorum=(1, 4, 5)))
        assert monitor.reads.mean_cost == pytest.approx(2.5)

    def test_measured_load_is_max_over_replicas(self):
        monitor = Monitor(replica_ids=tuple(range(8)))
        monitor.record(_outcome(quorum=(0, 3)))
        monitor.record(_outcome(quorum=(0, 4)))
        monitor.record(_outcome(quorum=(1, 5)))
        assert monitor.measured_read_load() == pytest.approx(2 / 3)
        loads = monitor.per_replica_read_load()
        assert loads[0] == pytest.approx(2 / 3)
        assert loads[7] == 0.0

    def test_write_load_tracked_separately(self):
        monitor = Monitor(replica_ids=tuple(range(8)))
        monitor.record(_outcome(op_type="write", quorum=(0, 1, 2)))
        assert monitor.measured_write_load() == pytest.approx(1.0)
        assert math.isnan(monitor.measured_read_load())

    def test_failure_reasons_counted(self):
        monitor = Monitor(replica_ids=tuple(range(8)))
        monitor.record(_outcome(success=False, reason=FailureReason.TIMEOUT))
        monitor.record(_outcome(success=False, reason=FailureReason.TIMEOUT))
        assert monitor.reads.failure_reasons["quorum-timeout"] == 2

    def test_latency_percentiles(self):
        monitor = Monitor(replica_ids=tuple(range(8)))
        for latency in (1.0, 2.0, 3.0, 4.0, 10.0):
            monitor.record(_outcome(latency=latency))
        assert monitor.reads.latency_percentile(0.5) == 3.0
        assert monitor.reads.mean_latency == pytest.approx(4.0)

    def test_empty_percentile_is_nan(self):
        monitor = Monitor(replica_ids=(0,))
        assert math.isnan(monitor.reads.latency_percentile(0.5))

    def test_summary_keys(self):
        monitor = Monitor(replica_ids=tuple(range(8)))
        monitor.record(_outcome())
        summary = monitor.summary()
        for key in ("reads", "read_availability", "read_cost", "read_load"):
            assert key in summary
