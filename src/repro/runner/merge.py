"""Fold shard results back into whole-run values.

Every helper folds **in task order** — the runner returns shard results in
the order tasks were defined, and the underlying ``merge()`` methods are
order-sensitive only through list concatenation, so the fold reproduces the
serial result exactly.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.analysis.sweeps import FigureSeries
from repro.sim.monitor import Monitor, ShardedMonitor


def merge_monitors(monitors: Sequence[Monitor]) -> Monitor:
    """Fold shard monitors into the first one (in place; returns it)."""
    if not monitors:
        raise ValueError("need at least one monitor to merge")
    merged = monitors[0]
    for monitor in monitors[1:]:
        merged.merge(monitor)
    return merged


def merge_sharded_monitors(
    monitors: Sequence[ShardedMonitor],
) -> ShardedMonitor:
    """Fold repeat :class:`ShardedMonitor` results into the first one.

    The fold is shard-wise and in task order (repeat 0's shard k absorbs
    repeat 1's shard k, then repeat 2's, ...), exactly the order a serial
    loop would produce — so a ``--jobs N`` sharded fan-out merges to the
    bytes of the serial run.
    """
    if not monitors:
        raise ValueError("need at least one sharded monitor to merge")
    merged = monitors[0]
    for monitor in monitors[1:]:
        merged.merge(monitor)
    return merged


def merge_series(shards: Sequence[FigureSeries]) -> FigureSeries:
    """Fold sweep shards into one :class:`FigureSeries` (a new instance)."""
    if not shards:
        raise ValueError("need at least one sweep shard to merge")
    merged = shards[0]
    for shard in shards[1:]:
        merged = merged.merge(shard)
    return merged


def merge_availability(
    fractions: Sequence[float], weights: Sequence[int]
) -> float:
    """Sample-weighted mean of per-chunk Monte-Carlo hit fractions.

    Reduces with ``math.fsum`` — the same compensated summation the
    availability kernel uses — so the merged estimate matches a single-pass
    estimate over the concatenated samples to the last bit.
    """
    if len(fractions) != len(weights):
        raise ValueError("fractions and weights must align")
    if not fractions:
        raise ValueError("need at least one chunk to merge")
    total = sum(weights)
    if total <= 0:
        raise ValueError("total sample count must be positive")
    return math.fsum(
        fraction * weight for fraction, weight in zip(fractions, weights)
    ) / total
