"""Micro-benchmarks of the protocol's hot paths.

Not a paper figure — these time the operations a deployment performs per
request (quorum selection, failure fallback, metric evaluation) so that
regressions in the core library are caught.
"""

from __future__ import annotations

import random

from repro.core import algorithm_1, analyse, recommended_tree
from repro.core.protocol import ArbitraryProtocol
from repro.core.tuning import recommend
from repro.protocols.hqc import HQCProtocol
from repro.protocols.tree_quorum import TreeQuorumProtocol


def test_select_read_quorum_speed(benchmark):
    protocol = ArbitraryProtocol(algorithm_1(1024))
    rng = random.Random(0)
    quorum = benchmark(protocol.select_read_quorum, lambda sid: True, rng)
    assert quorum is not None and len(quorum) == 32


def test_select_write_quorum_speed(benchmark):
    protocol = ArbitraryProtocol(algorithm_1(1024))
    rng = random.Random(0)
    quorum = benchmark(protocol.select_write_quorum, lambda sid: True, rng)
    assert quorum is not None


def test_select_read_quorum_under_failures(benchmark):
    protocol = ArbitraryProtocol(algorithm_1(1024))
    rng = random.Random(0)
    dead = set(rng.sample(range(1024), 100))
    live = lambda sid: sid not in dead  # noqa: E731
    quorum = benchmark(protocol.select_read_quorum, live, random.Random(1))
    assert quorum is None or not (quorum & dead)


def test_tree_construction_speed(benchmark):
    tree = benchmark(algorithm_1, 10_000)
    assert tree.n == 10_000


def test_analyse_speed(benchmark):
    tree = recommended_tree(4096)
    metrics = benchmark(analyse, tree, 0.9)
    assert metrics.n == 4096


def test_tuning_advisor_speed(benchmark):
    result = benchmark(recommend, 64, 0.9, 0.8)
    assert result.tree.n == 64


def test_tree_quorum_fallback_speed(benchmark):
    protocol = TreeQuorumProtocol(1023)
    rng = random.Random(0)
    dead = set(rng.sample(range(1023), 100))
    live = lambda sid: sid not in dead  # noqa: E731
    quorum = benchmark(protocol.construct_quorum, live, random.Random(1))
    if quorum is not None:
        assert not (quorum & dead)


def test_hqc_construction_speed(benchmark):
    protocol = HQCProtocol(729)
    quorum = benchmark(protocol.construct_quorum, lambda sid: True)
    assert quorum is not None and len(quorum) == 2**6
