"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.events import Scheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(3.0, lambda: fired.append("c"))
        scheduler.schedule(1.0, lambda: fired.append("a"))
        scheduler.schedule(2.0, lambda: fired.append("b"))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        scheduler = Scheduler()
        fired = []
        for tag in "abc":
            scheduler.schedule(1.0, lambda t=tag: fired.append(t))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule(5.0, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [5.0]
        assert scheduler.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="past"):
            Scheduler().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        scheduler = Scheduler()
        scheduler.schedule(2.0, lambda: None)
        scheduler.step()
        handle = scheduler.schedule_at(7.0, lambda: None)
        assert handle.time == 7.0

    def test_events_can_schedule_events(self):
        scheduler = Scheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule(1.0, lambda: fired.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run()
        assert fired == ["first", "second"]
        assert scheduler.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = Scheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        scheduler.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        scheduler = Scheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        handle.cancel()  # must not raise

    def test_cancelled_events_not_counted_as_processed(self):
        scheduler = Scheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        handle.cancel()
        scheduler.run()
        assert scheduler.processed_events == 1


class TestRunControls:
    def test_run_until_leaves_later_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        scheduler.run(until=3.0)
        assert fired == [1]
        assert scheduler.now == 3.0
        assert scheduler.pending_events == 1

    def test_run_until_advances_clock_on_empty_queue(self):
        scheduler = Scheduler()
        scheduler.run(until=10.0)
        assert scheduler.now == 10.0

    def test_max_events_budget(self):
        scheduler = Scheduler()
        for _ in range(5):
            scheduler.schedule(1.0, lambda: None)
        scheduler.run(max_events=3)
        assert scheduler.processed_events == 3
        assert scheduler.pending_events == 2

    def test_step_returns_false_on_empty(self):
        assert Scheduler().step() is False

    def test_step_executes_one_event(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(2.0, lambda: fired.append(2))
        assert scheduler.step() is True
        assert fired == [1]
