"""Unit tests for set systems, quorum systems, coteries and bi-coteries."""

import pytest

from repro.quorums.base import (
    BiCoterie,
    Coterie,
    QuorumSystem,
    SetSystem,
    is_antichain,
    is_cross_intersecting,
    is_intersecting,
    minimise,
)


class TestIsIntersecting:
    def test_single_set_is_intersecting(self):
        assert is_intersecting([{1, 2}])

    def test_overlapping_pair(self):
        assert is_intersecting([{1, 2}, {2, 3}])

    def test_disjoint_pair(self):
        assert not is_intersecting([{1, 2}, {3, 4}])

    def test_majorities_intersect(self):
        from itertools import combinations

        majorities = [set(c) for c in combinations(range(5), 3)]
        assert is_intersecting(majorities)

    def test_one_disjoint_pair_among_many(self):
        assert not is_intersecting([{1, 2}, {2, 3}, {4, 5}])


class TestIsAntichain:
    def test_incomparable_sets(self):
        assert is_antichain([{1, 2}, {2, 3}, {1, 3}])

    def test_subset_violates(self):
        assert not is_antichain([{1}, {1, 2}])

    def test_duplicates_violate(self):
        assert not is_antichain([{1, 2}, {1, 2}])

    def test_single_set(self):
        assert is_antichain([{1, 2, 3}])


class TestIsCrossIntersecting:
    def test_rowa_shape(self):
        reads = [{0}, {1}, {2}]
        writes = [{0, 1, 2}]
        assert is_cross_intersecting(reads, writes)

    def test_disjoint_read_write(self):
        assert not is_cross_intersecting([{0}], [{1, 2}])

    def test_levels_shape(self):
        reads = [{0, 3}, {0, 4}, {1, 3}, {1, 4}, {2, 3}, {2, 4}]
        writes = [{0, 1, 2}, {3, 4}]
        assert is_cross_intersecting(reads, writes)


class TestMinimise:
    def test_drops_supersets(self):
        result = minimise([{1}, {1, 2}, {2, 3}])
        assert set(result) == {frozenset({1}), frozenset({2, 3})}

    def test_keeps_antichain_unchanged(self):
        sets = [frozenset({1, 2}), frozenset({2, 3})]
        assert set(minimise(sets)) == set(sets)

    def test_deduplicates(self):
        assert len(minimise([{1, 2}, {1, 2}])) == 1

    def test_result_is_antichain(self):
        result = minimise([{1}, {1, 2}, {1, 2, 3}, {2, 3}, {3}])
        assert is_antichain(result)


class TestSetSystem:
    def test_universe_defaults_to_union(self):
        system = SetSystem([{1, 2}, {2, 3}])
        assert system.universe == frozenset({1, 2, 3})

    def test_explicit_universe(self):
        system = SetSystem([{1}], universe={1, 2, 3})
        assert system.universe == frozenset({1, 2, 3})

    def test_rejects_empty_collection(self):
        with pytest.raises(ValueError, match="at least one set"):
            SetSystem([])

    def test_rejects_empty_quorum(self):
        with pytest.raises(ValueError, match="non-empty"):
            SetSystem([set()])

    def test_rejects_stray_elements(self):
        with pytest.raises(ValueError, match="outside universe"):
            SetSystem([{1, 9}], universe={1, 2})

    def test_len_iter_contains(self):
        system = SetSystem([{1, 2}, {2, 3}])
        assert len(system) == 2
        assert frozenset({1, 2}) in system
        assert {3, 4} not in system
        assert list(system) == [frozenset({1, 2}), frozenset({2, 3})]

    def test_quorum_size_extremes(self):
        system = SetSystem([{1}, {1, 2, 3}])
        assert system.smallest_quorum_size() == 1
        assert system.largest_quorum_size() == 3

    def test_element_frequencies(self):
        system = SetSystem([{1, 2}, {2, 3}], universe={1, 2, 3, 4})
        assert system.element_frequencies() == {1: 1, 2: 2, 3: 1, 4: 0}

    def test_repr(self):
        assert "m=2" in repr(SetSystem([{1}, {2, 1}]))


class TestQuorumSystem:
    def test_accepts_intersecting(self):
        QuorumSystem([{1, 2}, {2, 3}])

    def test_rejects_disjoint(self):
        with pytest.raises(ValueError, match="intersection"):
            QuorumSystem([{1}, {2}])


class TestCoterie:
    def test_accepts_minimal(self):
        Coterie([{1, 2}, {2, 3}, {1, 3}])

    def test_rejects_dominated(self):
        with pytest.raises(ValueError, match="minimality"):
            Coterie([{1, 2}, {1, 2, 3}])

    def test_from_quorum_system(self):
        system = QuorumSystem([{1, 2}, {1, 2, 3}])
        coterie = Coterie.from_quorum_system(system)
        assert set(coterie.quorums) == {frozenset({1, 2})}
        assert coterie.universe == system.universe


class TestBiCoterie:
    def test_valid_bicoterie(self):
        bc = BiCoterie([{0}, {1}], [{0, 1}])
        assert len(bc.read_quorums) == 2
        assert len(bc.write_quorums) == 1

    def test_rejects_non_intersecting(self):
        with pytest.raises(ValueError, match="intersection"):
            BiCoterie([{0}], [{1}])

    def test_rejects_empty_reads(self):
        with pytest.raises(ValueError, match="read quorum"):
            BiCoterie([], [{0}])

    def test_rejects_empty_writes(self):
        with pytest.raises(ValueError, match="write quorum"):
            BiCoterie([{0}], [])

    def test_rejects_empty_quorum(self):
        with pytest.raises(ValueError, match="non-empty"):
            BiCoterie([set()], [{0}])

    def test_rejects_stray_elements(self):
        with pytest.raises(ValueError, match="outside universe"):
            BiCoterie([{0}], [{0, 5}], universe={0, 1})

    def test_reads_need_not_intersect_each_other(self):
        bc = BiCoterie([{0}, {1}], [{0, 1}])
        assert not bc.reads_intersect()
        assert bc.writes_intersect()

    def test_writes_intersect_detection(self):
        bc = BiCoterie(
            [{0, 2}, {1, 2}], [{0, 1, 2}, {2}],
        )
        assert bc.writes_intersect()

    def test_disjoint_writes_detected(self):
        # level-style writes are pairwise disjoint
        bc = BiCoterie([{0, 2}, {1, 2}, {0, 3}, {1, 3}], [{0, 1}, {2, 3}])
        assert not bc.writes_intersect()

    def test_as_systems(self):
        bc = BiCoterie([{0}, {1}], [{0, 1}])
        assert len(bc.as_read_system()) == 2
        assert len(bc.as_write_system()) == 1
        assert bc.as_read_system().universe == bc.universe

    def test_repr(self):
        bc = BiCoterie([{0}], [{0}])
        assert "m_R=1" in repr(bc)
