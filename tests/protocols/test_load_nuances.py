"""Nuance tests: quoted strategy loads vs true LP optima for the baselines.

The paper's introduction quotes load figures for particular *strategies*
(e.g. load 1 for cost-1 reads through the root of [1]'s tree).  The LP
optimum over the full quorum system can be lower — these tests pin down
both numbers so neither gets silently conflated.
"""

import pytest

from repro.protocols.agrawal_tree import AgrawalTreeProtocol
from repro.protocols.tree_quorum import TreeQuorumProtocol
from repro.quorums.load import optimal_load
from repro.quorums.strategy import Strategy
from repro.quorums.base import SetSystem


class TestAgrawalTreeReadLoad:
    """[1]'s reads: the cost-1 strategy loads the root fully, but mixing in
    child majorities achieves a strictly lower LP load."""

    def test_cost1_strategy_load_is_one(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        system = SetSystem(protocol.read_quorums(), universe=range(4))
        root_only = Strategy.from_mapping(system, {frozenset({0}): 1.0})
        assert root_only.induced_load() == pytest.approx(1.0)

    def test_lp_optimum_is_lower(self):
        protocol = AgrawalTreeProtocol(d=1, height=1)
        lp = optimal_load(list(protocol.read_quorums()), universe=range(4))
        # quorums: {0}, {1,2}, {1,3}, {2,3} -> balance root vs pairs: 2/5
        assert lp.load == pytest.approx(2 / 5)
        assert lp.load < 1.0

    def test_write_lp_optimum_really_is_one(self):
        """Writes have no such slack: the root is in EVERY write quorum."""
        protocol = AgrawalTreeProtocol(d=1, height=1)
        lp = optimal_load(list(protocol.write_quorums()), universe=range(4))
        assert lp.load == pytest.approx(1.0)


class TestTreeQuorumStrategyGap:
    """[2]: log-size path quorums force load 1; the 2/(h+2) optimum needs a
    mixture that mostly avoids the root — the introduction's trade-off."""

    def test_paths_only_strategy_loads_root_fully(self):
        protocol = TreeQuorumProtocol(7)
        quorums = list(protocol.enumerate_quorums())
        paths = [q for q in quorums if len(q) == protocol.min_cost() and 0 in q]
        assert paths  # the four root-to-leaf paths
        system = SetSystem(quorums, universe=range(7))
        weights = {q: 1.0 / len(paths) for q in paths}
        strategy = Strategy.from_mapping(system, weights)
        assert strategy.element_load(0) == pytest.approx(1.0)

    def test_optimal_mixture_avoids_the_root(self):
        protocol = TreeQuorumProtocol(7)
        lp = optimal_load(
            list(protocol.enumerate_quorums()), universe=range(7)
        )
        assert lp.load == pytest.approx(protocol.optimal_load())
        # expensive quorums must carry weight: expected size > min cost
        assert lp.strategy.expected_quorum_size() > protocol.min_cost()
