"""Quorum-system theory substrate.

This subpackage implements the classical machinery from Naor & Wool,
"The load, capacity, and availability of quorum systems" (SIAM J. Comput.,
1998), that the paper builds on:

* set systems, quorum systems, coteries and bi-coteries
  (Definitions 2.1-2.3 of the paper);
* strategies and the load they induce (Definitions 2.4-2.5);
* the optimal system load as a linear program, together with the dual
  witness characterisation (Proposition 2.1);
* availability of a quorum system under independent fail-stop replicas.

Everything here is protocol-agnostic: the arbitrary tree protocol, the
tree-quorum protocol, HQC, grids and so on are all expressed as (bi-)coteries
over a finite universe of replica identifiers and analysed with these tools.
"""

from repro.quorums.availability import (
    estimate_availability_monte_carlo,
    exact_availability,
    system_availability,
)
from repro.quorums.base import (
    BiCoterie,
    Coterie,
    QuorumSystem,
    SetSystem,
    is_antichain,
    is_intersecting,
    minimise,
)
from repro.quorums.domination import (
    dominates,
    dominating_coterie,
    is_non_dominated,
)
from repro.quorums.load import (
    OptimalLoad,
    optimal_load,
    verify_load_witness,
)
from repro.quorums.strategy import Strategy, induced_loads, system_load

__all__ = [
    "BiCoterie",
    "Coterie",
    "OptimalLoad",
    "dominates",
    "dominating_coterie",
    "is_non_dominated",
    "QuorumSystem",
    "SetSystem",
    "Strategy",
    "estimate_availability_monte_carlo",
    "exact_availability",
    "induced_loads",
    "is_antichain",
    "is_intersecting",
    "minimise",
    "optimal_load",
    "system_availability",
    "system_load",
    "verify_load_witness",
]
