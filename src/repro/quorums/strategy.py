"""Strategies over quorum systems and the load they induce.

Definitions 2.4 and 2.5 of the paper: a *strategy* is a probability
distribution over the quorums of a system; the *load it induces on an
element* is the total probability of the quorums containing that element;
the *load on the system* is the maximum element load; and the *system load*
is the minimum, over all strategies, of the induced load (computed by the
linear program in :mod:`repro.quorums.load`).
"""

from __future__ import annotations

import math
from collections.abc import Collection, Hashable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import TypeVar

from repro.quorums.base import SetSystem

Element = TypeVar("Element", bound=Hashable)

_PROBABILITY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Strategy:
    """A probability distribution over the quorums of a set system.

    Parameters
    ----------
    system:
        The set system the strategy picks quorums from.
    weights:
        One probability per quorum, aligned with ``system.quorums``.
        Must be non-negative and sum to one (Definition 2.4).
    """

    system: SetSystem
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.system):
            raise ValueError(
                f"strategy has {len(self.weights)} weights for "
                f"{len(self.system)} quorums"
            )
        if any(w < -_PROBABILITY_TOLERANCE for w in self.weights):
            raise ValueError("strategy weights must be non-negative")
        total = math.fsum(self.weights)
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ValueError(f"strategy weights sum to {total}, expected 1")

    @classmethod
    def uniform(cls, system: SetSystem) -> "Strategy":
        """The uniform strategy: every quorum picked with probability 1/m.

        This is the strategy the paper uses for both read and write quorums
        of the arbitrary protocol (Sections 3.2.1 and 3.2.2).
        """
        m = len(system)
        return cls(system, tuple(1.0 / m for _ in range(m)))

    @classmethod
    def from_mapping(
        cls,
        system: SetSystem,
        mapping: Mapping[frozenset, float],
    ) -> "Strategy":
        """Build a strategy from a quorum -> probability mapping.

        Quorums absent from the mapping get probability zero.
        """
        weights = tuple(float(mapping.get(q, 0.0)) for q in system.quorums)
        return cls(system, weights)

    def element_load(self, element: Element) -> float:
        """Load induced on one element: sum of weights of quorums holding it."""
        return math.fsum(
            w for w, q in zip(self.weights, self.system.quorums) if element in q
        )

    def element_loads(self) -> dict[Element, float]:
        """Load induced on every universe element (Definition 2.5)."""
        loads: dict[Element, float] = dict.fromkeys(self.system.universe, 0.0)
        for weight, quorum in zip(self.weights, self.system.quorums):
            if weight == 0.0:
                continue
            for element in quorum:
                loads[element] += weight
        return loads

    def induced_load(self) -> float:
        """The load this strategy induces on the system: max element load."""
        return max(self.element_loads().values())

    def expected_quorum_size(self) -> float:
        """Average number of replicas contacted per operation.

        For the arbitrary protocol's uniform write strategy this is the
        paper's *average* write cost ``n / (1 + h - |K_log|)``.
        """
        return math.fsum(
            w * len(q) for w, q in zip(self.weights, self.system.quorums)
        )


def induced_loads(
    system: SetSystem, weights: Sequence[float]
) -> dict[Element, float]:
    """Convenience wrapper: per-element loads for explicit weights."""
    return Strategy(system, tuple(float(w) for w in weights)).element_loads()


def system_load(
    quorums: Iterable[Collection[Element]],
    weights: Sequence[float] | None = None,
    universe: Collection[Element] | None = None,
) -> float:
    """Load induced by a strategy on an explicitly listed system.

    With ``weights=None`` the uniform strategy is used.  This computes
    ``L_w(S)`` of Definition 2.5, *not* the optimal system load ``L(S)``
    (for the latter see :func:`repro.quorums.load.optimal_load`).
    """
    system = SetSystem(quorums, universe=universe)
    if weights is None:
        strategy = Strategy.uniform(system)
    else:
        strategy = Strategy(system, tuple(float(w) for w in weights))
    return strategy.induced_load()
