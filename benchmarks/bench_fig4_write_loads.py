"""Figure 4: (expected) system loads of write operations.

Regenerates the write-load and expected-write-load series of Figure 4 at
p = 0.7 and asserts the Section 4.2.2 observations:

* MOSTLY-READ has the highest write load (1: every replica in every write);
* MOSTLY-WRITE has the least (2/(n-1)), stable and shrinking;
* among the first four BINARY has the highest (expected) write load;
* ARBITRARY has the least write load of the first four (1/sqrt(n) under
  Algorithm 1) and the smallest expected load at small n;
* HQC's write load is n^-0.37 and its *expected* load wins for large n when
  p < 0.8 (its availability recursion beats ARBITRARY's there);
* UNMODIFIED is second lowest, at 1/log2(n+1).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.sweeps import figure4_series
from repro.analysis.tables import format_series
from repro.core.config import Configuration

SIZES = (15, 31, 63, 127, 255, 511)
FIRST_FOUR = (
    Configuration.BINARY,
    Configuration.HQC,
    Configuration.UNMODIFIED,
    Configuration.ARBITRARY,
)


@pytest.fixture(scope="module")
def series():
    return figure4_series(sizes=SIZES)


def _values(series, config, quantity):
    return {
        point.requested_n: point.value
        for point in series.series[config][quantity]
    }


def _actual_n(series, config):
    return {
        point.requested_n: point.actual_n
        for point in series.series[config]["write_load"]
    }


def test_figure4_tables(series, emit, benchmark):
    benchmark(figure4_series, SIZES)
    emit(
        "fig4_write_loads",
        format_series(series, "write_load", title="Figure 4: write system load"),
    )
    emit(
        "fig4_expected_write_loads",
        format_series(
            series, "expected_write_load",
            title="Figure 4: expected write system load (p = 0.7)",
        ),
    )


def test_mostly_read_is_highest(series, benchmark):
    load = benchmark(_values, series, Configuration.MOSTLY_READ, "write_load")
    expected = _values(series, Configuration.MOSTLY_READ, "expected_write_load")
    for n in SIZES:
        assert load[n] == pytest.approx(1.0)
        assert expected[n] == pytest.approx(1.0)
        for config in Configuration:
            assert load[n] >= _values(series, config, "write_load")[n] - 1e-12


def test_mostly_write_is_least_and_stable(series, benchmark):
    load = benchmark(_values, series, Configuration.MOSTLY_WRITE, "write_load")
    expected = _values(series, Configuration.MOSTLY_WRITE, "expected_write_load")
    previous = 1.0
    for n in SIZES:
        assert load[n] == pytest.approx(2.0 / (n - 1), rel=0.05)
        for config in Configuration:
            assert load[n] <= _values(series, config, "write_load")[n] + 1e-12
        # stable: two-replica levels are individually very available
        assert expected[n] - load[n] < 0.15
        assert load[n] < previous
        previous = load[n]


def test_binary_highest_of_first_four(series, benchmark):
    load = benchmark(_values, series, Configuration.BINARY, "write_load")
    expected = _values(series, Configuration.BINARY, "expected_write_load")
    actual_n = _actual_n(series, Configuration.BINARY)
    for n in SIZES:
        assert load[n] == pytest.approx(2.0 / (math.log2(actual_n[n] + 1) + 1))
        if n < 31:
            continue  # HQC snaps to n=9 there and is degenerate
        for config in FIRST_FOUR:
            assert load[n] >= _values(series, config, "write_load")[n] - 1e-9
            # expected loads are ordered the same way, up to tiny wiggles
            # from the exact availability recursions
            assert (
                expected[n]
                >= _values(series, config, "expected_write_load")[n] - 5e-3
            )


def test_arbitrary_least_of_first_four(series, benchmark):
    load = benchmark(_values, series, Configuration.ARBITRARY, "write_load")
    for n in SIZES:
        if n >= 31:  # below the figures' range the fallback tree is shallow
            for config in FIRST_FOUR:
                assert load[n] <= _values(series, config, "write_load")[n] + 1e-9
        if n > 64:
            assert load[n] == pytest.approx(1.0 / math.isqrt(n), rel=1e-9)


def test_unmodified_second_lowest(series, benchmark):
    load = benchmark(_values, series, Configuration.UNMODIFIED, "write_load")
    actual_n = _actual_n(series, Configuration.UNMODIFIED)
    for n in SIZES:
        assert load[n] == pytest.approx(1.0 / math.log2(actual_n[n] + 1))
        # the paper's ordering ARBITRARY < UNMODIFIED < BINARY (HQC's rank
        # depends on how n snaps to powers of three, so it is not asserted)
        if n >= 31:
            arbitrary = _values(series, Configuration.ARBITRARY, "write_load")[n]
            binary = _values(series, Configuration.BINARY, "write_load")[n]
            assert arbitrary - 1e-9 <= load[n] <= binary + 1e-9


def test_hqc_expected_load_wins_for_large_n(series, benchmark):
    hqc = benchmark(_values, series, Configuration.HQC, "expected_write_load")
    arbitrary = _values(series, Configuration.ARBITRARY, "expected_write_load")
    n = SIZES[-1]
    # p = 0.7 < 0.8: HQC's better write availability gives it the best
    # expected load at large n (the paper's crossover observation)
    assert hqc[n] < arbitrary[n]
