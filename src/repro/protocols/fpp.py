"""Maekawa's sqrt(n) protocol via finite projective planes — [9].

For ``n = q^2 + q + 1`` with ``q`` a prime, the points of the projective
plane ``PG(2, q)`` are the replicas and its lines are the quorums: every
line holds exactly ``q + 1`` points, every point lies on exactly ``q + 1``
lines, and any two lines meet in exactly one point.  The resulting coterie
has quorums of size about ``sqrt(n)`` and — because the uniform strategy
touches each replica with probability ``(q+1)/n`` — achieves the optimal
load ``O(1/sqrt(n))`` the paper's introduction uses as the gold standard.

Construction: points are the ``q^2 + q + 1`` equivalence classes of nonzero
triples over ``GF(q)`` (normalised so the first nonzero coordinate is 1);
lines are the same classes; point ``P`` lies on line ``L`` iff their dot
product vanishes mod ``q``.  Only prime ``q`` is supported (prime-power
fields would need polynomial arithmetic, which the analyses here never
exercise).
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from itertools import product

from repro.protocols.base import ProtocolModel, check_probability
from repro.quorums.availability import system_availability
from repro.quorums.liveness import Liveness, as_oracle


def is_prime(value: int) -> bool:
    """Trial-division primality (fine for plane orders)."""
    if value < 2:
        return False
    if value % 2 == 0:
        return value == 2
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def plane_order(n: int) -> int:
    """The prime ``q`` with ``n = q^2 + q + 1``; raises for other ``n``."""
    q = 1
    while q * q + q + 1 < n:
        q += 1
    if q * q + q + 1 != n:
        raise ValueError(f"n={n} is not q^2+q+1 for any q")
    if not is_prime(q):
        raise ValueError(
            f"n={n} needs a projective plane of order {q}, "
            "which is not prime (prime powers are unsupported)"
        )
    return q


def fpp_sizes(max_order: int) -> list[int]:
    """Admissible sizes ``q^2 + q + 1`` for prime ``q`` up to ``max_order``."""
    return [q * q + q + 1 for q in range(2, max_order + 1) if is_prime(q)]


def _projective_points(q: int) -> list[tuple[int, int, int]]:
    """Canonical representatives of the points of PG(2, q).

    Normalised forms: (1, y, z), (0, 1, z), (0, 0, 1) — exactly
    ``q^2 + q + 1`` triples.
    """
    points = [(1, y, z) for y, z in product(range(q), repeat=2)]
    points += [(0, 1, z) for z in range(q)]
    points.append((0, 0, 1))
    return points


class FiniteProjectivePlaneProtocol(ProtocolModel):
    """Maekawa-style quorums from the lines of PG(2, q)."""

    name = "FPP"

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._q = plane_order(n)
        points = _projective_points(self._q)
        index = {point: sid for sid, point in enumerate(points)}
        self._quorums: list[frozenset[int]] = []
        for line in points:
            members = frozenset(
                index[point]
                for point in points
                if sum(a * b for a, b in zip(line, point)) % self._q == 0
            )
            self._quorums.append(members)

    @property
    def order(self) -> int:
        """The plane order ``q``."""
        return self._q

    def quorum_size(self) -> int:
        """Every line has exactly ``q + 1`` points."""
        return self._q + 1

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """The lines of the plane (reads and writes share them)."""
        return iter(self._quorums)

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """The lines of the plane (reads and writes share them)."""
        return iter(self._quorums)

    def _select_line(
        self, live: Liveness, rng: random.Random | None
    ) -> frozenset[int] | None:
        """A fully-live line (rng-uniform among the viable ones)."""
        oracle = as_oracle(live)
        viable = [
            line for line in self._quorums
            if all(oracle(sid) for sid in line)
        ]
        if not viable:
            return None
        return rng.choice(viable) if rng is not None else viable[0]

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """A fully-live line of the plane, or ``None``."""
        return self._select_line(live, rng)

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Identical to reads (one quorum set)."""
        return self._select_line(live, rng)

    def read_cost(self) -> float:
        """``q + 1 ~ sqrt(n)``."""
        return float(self.quorum_size())

    def write_cost(self) -> float:
        """``q + 1 ~ sqrt(n)``."""
        return float(self.quorum_size())

    def read_availability(self, p: float) -> float:
        """Exact / Monte-Carlo availability over the explicit line set."""
        check_probability(p)
        return system_availability(self._quorums, p, universe=range(self.n))

    def write_availability(self, p: float) -> float:
        """Identical to reads (one quorum set)."""
        return self.read_availability(p)

    def read_load(self) -> float:
        """Uniform over lines: each point on ``q+1`` of ``n`` lines."""
        return (self._q + 1.0) / self.n

    def write_load(self) -> float:
        """Identical to reads."""
        return self.read_load()
