"""Small statistics helpers shared by the monitor and trace reports.

* :func:`linear_percentile` — percentile by linear interpolation between
  closest ranks (numpy's default "linear" method).  The simulator's old
  nearest-rank-with-``round()`` percentile suffered from banker's rounding
  (``round(0.5) == 0``), misreporting p50/p95 on small samples; this is
  the fixed, canonical implementation.
* :class:`Histogram` — fixed-bucket histogram with an overflow bucket,
  used for latency and span-duration distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def linear_percentile(sorted_values: list[float], fraction: float) -> float:
    """Percentile of pre-sorted ``sorted_values`` by linear interpolation.

    ``fraction`` is in [0, 1]; an empty input yields NaN.  For a sample of
    size n the percentile sits at rank ``fraction * (n - 1)`` and is
    interpolated between the two bracketing order statistics, so e.g. the
    p50 of ``[1, 2]`` is 1.5 (the nearest-rank variant reported 1).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not sorted_values:
        return math.nan
    position = fraction * (len(sorted_values) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight


@dataclass
class Histogram:
    """Counts of values falling into ``bounds``-delimited buckets.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything larger.
    """

    bounds: list[float]
    counts: list[int] = field(default_factory=list)
    total: int = 0

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(self.bounds) != list(self.bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    @classmethod
    def exponential(
        cls, start: float = 1.0, factor: float = 2.0, buckets: int = 12
    ) -> "Histogram":
        """Geometric bucket edges ``start, start*factor, ...``."""
        if start <= 0 or factor <= 1 or buckets < 1:
            raise ValueError("need start > 0, factor > 1, buckets >= 1")
        return cls(bounds=[start * factor**i for i in range(buckets)])

    def add(self, value: float) -> None:
        """Count one observation."""
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1

    def extend(self, values: list[float]) -> "Histogram":
        """Count many observations; returns self for chaining."""
        for value in values:
            self.add(value)
        return self

    def merge(self, other: "Histogram") -> "Histogram":
        """Add another histogram's counts bucket-by-bucket (returns self).

        The bucket layouts must match exactly — merging is only meaningful
        for histograms built from the same configuration, as the parallel
        runner's shards are.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        return self

    def render(self, width: int = 40) -> str:
        """A text bar chart, one line per non-empty leading bucket."""
        peak = max(self.counts) if self.total else 0
        lines = []
        labels = [f"<= {bound:g}" for bound in self.bounds] + [
            f" > {self.bounds[-1]:g}"
        ]
        for label, count in zip(labels, self.counts):
            bar = "#" * (round(width * count / peak) if peak else 0)
            lines.append(f"{label:>12} {count:>7} {bar}")
        return "\n".join(lines)
