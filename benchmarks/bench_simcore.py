"""Simulator inner-ring performance: event core + end-to-end ops/sec.

The allocation-lean inner ring (compacting event core, closure-free
delivery, cached link tables — DESIGN.md §2.15) is a *wall-clock*
optimisation: simulated results are bit-identical to the previous
implementation, only the host time per simulated event changes.  That
makes the usual seeded-regression benches blind to it, so this bench
measures wall time directly, at two levels:

* **scheduler ring** — the event core alone, against an embedded copy of
  the pre-optimisation scheduler (three-slot entries, closure-only
  callbacks, no cancelled-entry compaction).  Two cases: a pure
  schedule/fire ring, and a schedule/cancel churn mix where the old core
  let dead entries pile up in the heap.  Values agree on processed-event
  counts, so the comparison also re-checks behavioural equivalence.
* **end-to-end** — the three saturated workloads used to record the
  pre-PR baseline (a 1-3-5 group legacy-path, the same group with
  batching + leases, and a 16-shard keyspace), reported as ops per
  wall-clock second next to the recorded pre-PR numbers.

Wall-clock numbers are machine-dependent: :data:`PRE_PR_BASELINE` is
only meaningful on the host that recorded it (stamped in the JSON).  The
CI smoke gate therefore never compares against the recorded baseline —
it reruns the embedded reference scheduler on the *same* machine in the
*same* process and requires the current core to be at least as fast,
which is noise-robust because both sides move with the host.

Two tiers:

* ``--smoke`` (and the pytest test, used by the CI simcore job): small
  rings and short streams, finishes in seconds;
* the default full run records the trajectory cited in EXPERIMENTS.md
  and asserts the tentpole acceptance floor: >= 1.5x end-to-end ops/sec
  on the saturated single-group legacy case vs the recorded pre-PR
  baseline.

Run directly::

    PYTHONPATH=src python benchmarks/bench_simcore.py [--smoke] [--out P]
"""

from __future__ import annotations

import argparse
import heapq
import sys
import time
from pathlib import Path

try:
    from benchmarks.perf_harness import write_bench_json
except ImportError:  # direct `python benchmarks/bench_simcore.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from perf_harness import write_bench_json

from repro.core.builder import from_spec
from repro.shard import ShardedConfig, simulate_sharded
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.events import Scheduler
from repro.sim.workload import WorkloadSpec

#: End-to-end ops/wall-sec recorded immediately before the inner-ring
#: work (commit 85df2e7, best of 3 on the recording host).  Comparable
#: only on that host — see the module docstring; the JSON stamps both
#: this table and the fresh measurements so the trajectory is auditable.
PRE_PR_BASELINE = {
    "single_group_legacy": 12908.0,
    "single_group_batched_leased": 26925.0,
    "shard16": 8651.0,
}
PRE_PR_BASELINE_COMMIT = "85df2e7"

#: Tentpole acceptance floor: saturated single-group legacy-path ops/sec
#: must reach this multiple of the recorded pre-PR baseline.
ACCEPTANCE_SPEEDUP = 1.5


# ---------------------------------------------------------------------------
# embedded pre-PR scheduler (the reference side of the ring cases)
# ---------------------------------------------------------------------------


class _ReferenceHandle:
    """Pre-PR cancel handle: clears the callback slot, no accounting."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry[2] = None


class ReferenceScheduler:
    """The scheduler as it stood before the inner-ring PR.

    Three-slot entries ``[time, sequence, callback]``, closure-only
    callbacks (no ``arg`` slot), ``run()`` delegating to ``step()`` per
    event, and no cancelled-entry compaction — dead entries stay heaped
    until their time comes up.  Kept verbatim (minus docstrings) so the
    ring cases compare against the real predecessor, not a strawman.
    """

    def __init__(self) -> None:
        self._queue: list[list] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(self, delay: float, callback) -> _ReferenceHandle:
        entry = [self._now + delay, self._sequence, callback]
        self._sequence += 1
        heapq.heappush(self._queue, entry)
        return _ReferenceHandle(entry)

    def step(self) -> bool:
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            callback = entry[2]
            if callback is None:
                continue
            self._now = entry[0]
            self._processed += 1
            callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        executed = 0
        queue = self._queue
        while queue:
            if max_events is not None and executed >= max_events:
                return
            if queue[0][2] is None:
                heapq.heappop(queue)
                continue
            self.step()
            executed += 1


# ---------------------------------------------------------------------------
# scheduler-ring cases
# ---------------------------------------------------------------------------


def _ring_reference(events: int) -> int:
    """Message-delivery ring on the pre-PR core.

    The pre-PR network scheduled every delivery as ``schedule(delay,
    lambda: deliver(message))`` — one closure allocation per message.
    This ring reproduces that pattern exactly.
    """
    scheduler = ReferenceScheduler()
    consumed = [0]

    def deliver(message: tuple) -> None:
        consumed[0] += 1
        if message[0] > 0:
            nxt = (message[0] - 1,)
            scheduler.schedule(1.0, lambda: deliver(nxt))

    first = (events - 1,)
    scheduler.schedule(1.0, lambda: deliver(first))
    scheduler.run()
    return consumed[0]


def _ring_current(events: int) -> int:
    """The same delivery ring via closure-free ``(callback, arg)`` entries."""
    scheduler = Scheduler()
    consumed = [0]

    def deliver(message: tuple) -> None:
        consumed[0] += 1
        if message[0] > 0:
            scheduler.call_later(1.0, deliver, (message[0] - 1,))

    scheduler.call_later(1.0, deliver, (events - 1,))
    scheduler.run()
    return consumed[0]


def _never() -> None:  # pragma: no cover - cancelled before it can fire
    raise AssertionError("cancelled timeout fired")


def _churn_reference(rounds: int) -> tuple[int, int]:
    """Timeout churn on the pre-PR core.

    Each round arms a far-future timeout and cancels it when the
    operation completes — the coordinator's ``_arm_timeout``/``_finish``
    pattern.  The pre-PR core never reclaims the dead far-future
    entries, so the heap grows by one per round; the returned peak
    pending count makes that visible.
    """
    scheduler = ReferenceScheduler()
    state = [rounds, 0]  # remaining, peak-pending

    def fire() -> None:
        state[0] -= 1
        timeout = scheduler.schedule(1_000_000.0, _never)
        if state[0] > 0:
            scheduler.schedule(1.0, fire)
        timeout.cancel()
        pending = scheduler.pending_events
        if pending > state[1]:
            state[1] = pending

    scheduler.schedule(1.0, fire)
    scheduler.run()
    return scheduler.processed_events, state[1]


def _churn_current(rounds: int) -> tuple[int, int]:
    """The same timeout churn on the current core (compaction bounds it)."""
    scheduler = Scheduler()
    state = [rounds, 0]

    def fire(state: list) -> None:
        state[0] -= 1
        timeout = scheduler.schedule(1_000_000.0, _never)
        if state[0] > 0:
            scheduler.call_later(1.0, fire, state)
        timeout.cancel()
        pending = scheduler.pending_events
        if pending > state[1]:
            state[1] = pending

    scheduler.call_later(1.0, fire, state)
    scheduler.run()
    return scheduler.processed_events, state[1]


def _timed(fn, *args, repeat: int = 3) -> tuple[float, object]:
    """Best (minimum) wall time over ``repeat`` runs + the last value.

    Min is the right statistic for a same-process A/B gate: both sides
    only ever get *slower* from scheduler noise, so the minimum is the
    least-contaminated estimate of each side's true cost.
    """
    best = float("inf")
    value: object = None
    for _ in range(repeat):
        started = time.perf_counter()
        value = fn(*args)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best, value


def scheduler_ring_cases(events: int, churn_rounds: int) -> list[dict]:
    """Time the embedded reference core against the current core."""
    points = []

    ref_wall, ref_value = _timed(_ring_reference, events)
    cur_wall, cur_value = _timed(_ring_current, events)
    points.append({
        "case": f"scheduler/ring/{events}",
        "reference_events_per_sec": round(events / ref_wall),
        "current_events_per_sec": round(events / cur_wall),
        "speedup": round(ref_wall / cur_wall, 2),
        "values_agree": ref_value == cur_value == events,
    })

    ref_wall, (ref_processed, ref_peak) = _timed(
        _churn_reference, churn_rounds
    )
    cur_wall, (cur_processed, cur_peak) = _timed(
        _churn_current, churn_rounds
    )
    points.append({
        "case": f"scheduler/churn/{churn_rounds}",
        "reference_events_per_sec": round(ref_processed / ref_wall),
        "current_events_per_sec": round(cur_processed / cur_wall),
        "speedup": round(ref_wall / cur_wall, 2),
        "reference_peak_pending": ref_peak,
        "current_peak_pending": cur_peak,
        "values_agree": ref_processed == cur_processed,
    })

    for point in points:
        print(
            f"{point['case']:<28}  "
            f"ref {point['reference_events_per_sec']:>9,} ev/s  "
            f"now {point['current_events_per_sec']:>9,} ev/s  "
            f"{point['speedup']:>5.2f}x  "
            f"{'ok' if point['values_agree'] else 'MISMATCH'}"
        )
    return points


# ---------------------------------------------------------------------------
# end-to-end cases (the pre-PR baseline's exact workloads)
# ---------------------------------------------------------------------------


def single_group_config(
    operations: int, batch_window: float, leases: bool
) -> SimulationConfig:
    """The saturated 1-3-5 group the pre-PR baseline was recorded on."""
    return SimulationConfig(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(
            operations=operations, read_fraction=0.9, keys=128,
            arrival="poisson", rate=4.0, zipf_s=1.1,
        ),
        clients=4, service_time=1.0, timeout=800.0, seed=2026,
        batch_window=batch_window, leases=leases,
    )


def shard16_config(operations: int) -> ShardedConfig:
    """The 16-shard keyspace the pre-PR baseline was recorded on."""
    return ShardedConfig(
        workload=WorkloadSpec(
            operations=operations, read_fraction=0.7, keys=20_000,
            arrival="poisson", rate=4.0, zipf_s=0.9,
        ),
        shards=16, systems=(("tree", "1-3-5"),), router="hash",
        clients_per_shard=2, service_time=1.0, timeout=400.0, seed=2024,
    )


def end_to_end_cases(
    single_ops: int, shard_ops: int, repeats: int
) -> list[dict]:
    """Ops per wall-second on the three baseline workloads (best of N)."""
    runs = [
        ("single_group_legacy",
         lambda: simulate(single_group_config(single_ops, 0.0, False))),
        ("single_group_batched_leased",
         lambda: simulate(single_group_config(single_ops, 2.0, True))),
        ("shard16",
         lambda: simulate_sharded(shard16_config(shard_ops))),
    ]
    points = []
    for name, fn in runs:
        best = 0.0
        events_per_sec = 0
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn()
            wall = time.perf_counter() - started
            summary = result.summary()
            ops = (
                summary["reads"] + summary["writes"]
                if "reads" in summary else summary["operations"]
            )
            if ops / wall > best:
                best = ops / wall
                events_per_sec = round(
                    getattr(result, "events_processed", 0) / wall
                )
        baseline = PRE_PR_BASELINE[name]
        point = {
            "case": f"end_to_end/{name}",
            "operations": ops,
            "ops_per_wall_sec": round(best),
            "sim_events_per_sec": events_per_sec,
            "pre_pr_ops_per_wall_sec": baseline,
            "speedup_vs_pre_pr": round(best / baseline, 2),
            "repeats": repeats,
        }
        points.append(point)
        print(
            f"{name:<28}  {point['ops_per_wall_sec']:>7,} ops/wall-sec  "
            f"(pre-PR {baseline:>7,.0f}, "
            f"{point['speedup_vs_pre_pr']:.2f}x)"
        )
    return points


def run(smoke: bool, out: str | None = None) -> dict:
    ring_events = 100_000 if smoke else 1_000_000
    churn_rounds = 20_000 if smoke else 200_000
    single_ops = 2_000 if smoke else 20_000
    shard_ops = 1_600 if smoke else 16_000
    repeats = 1 if smoke else 3

    print("scheduler ring (embedded pre-PR reference vs current core)")
    ring = scheduler_ring_cases(ring_events, churn_rounds)
    print("\nend to end (recorded pre-PR baseline workloads)")
    end_to_end = end_to_end_cases(single_ops, shard_ops, repeats)

    by_case = {point["case"]: point for point in ring + end_to_end}
    legacy = by_case["end_to_end/single_group_legacy"]
    summary = {
        "scheduler_ring_speedup":
            by_case[f"scheduler/ring/{ring_events}"]["speedup"],
        "scheduler_churn_speedup":
            by_case[f"scheduler/churn/{churn_rounds}"]["speedup"],
        "churn_peak_pending_reference":
            by_case[f"scheduler/churn/{churn_rounds}"][
                "reference_peak_pending"
            ],
        "churn_peak_pending_current":
            by_case[f"scheduler/churn/{churn_rounds}"][
                "current_peak_pending"
            ],
        "single_group_legacy_ops_per_sec": legacy["ops_per_wall_sec"],
        "single_group_legacy_speedup_vs_pre_pr":
            legacy["speedup_vs_pre_pr"],
        "pre_pr_baseline": PRE_PR_BASELINE,
        "pre_pr_baseline_commit": PRE_PR_BASELINE_COMMIT,
        "acceptance_floor": ACCEPTANCE_SPEEDUP,
    }
    bench = "simcore_smoke" if smoke and out else "simcore"
    path = write_bench_json(bench, ring + end_to_end, summary, out=out)
    print(f"\nwrote {path}")
    print(f"summary: {summary}")
    # Same-machine gate (CI-safe): the current core must not lose to the
    # embedded pre-PR reference run in the same process.
    assert summary["scheduler_ring_speedup"] >= 1.0, (
        "current scheduler slower than the embedded pre-PR reference"
    )
    for point in ring:
        assert point["values_agree"], f"{point['case']}: value mismatch"
    # Deterministic (timing-free) compaction gate: the pre-PR heap grows
    # with every cancelled far-future timeout; the current core stays
    # bounded regardless of churn volume.
    assert summary["churn_peak_pending_reference"] >= churn_rounds
    assert summary["churn_peak_pending_current"] <= 2 * 64 + 4, (
        f"compaction failed to bound the heap "
        f"(peak {summary['churn_peak_pending_current']})"
    )
    if not smoke:
        # The tentpole acceptance floor — recording-host-only, like the
        # baseline itself.
        assert (
            summary["single_group_legacy_speedup_vs_pre_pr"]
            >= ACCEPTANCE_SPEEDUP
        ), (
            f"single-group legacy path reached only "
            f"{summary['single_group_legacy_speedup_vs_pre_pr']}x "
            f"the pre-PR baseline (floor {ACCEPTANCE_SPEEDUP}x)"
        )
    return summary


def test_simcore_perf_smoke(emit):
    """CI smoke: ring + churn + short end-to-end streams.

    Gates only on the same-process reference comparison (machine-
    independent); writes to a ``_smoke`` JSON so a local pytest run
    never clobbers the recorded full-run trajectory.
    """
    from benchmarks.perf_harness import RESULTS_DIR

    summary = run(
        smoke=True, out=str(RESULTS_DIR / "BENCH_simcore_smoke.json")
    )
    emit(
        "simcore_smoke",
        "simcore smoke: scheduler ring "
        f"{summary['scheduler_ring_speedup']:.2f}x, churn "
        f"{summary['scheduler_churn_speedup']:.2f}x vs embedded pre-PR "
        f"reference; single-group legacy "
        f"{summary['single_group_legacy_ops_per_sec']:,} ops/wall-sec",
    )
    assert summary["scheduler_ring_speedup"] >= 1.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small rings and short streams (CI simcore-job tier)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default benchmarks/results/BENCH_simcore.json)",
    )
    args = parser.parse_args()
    run(smoke=args.smoke, out=args.out)
