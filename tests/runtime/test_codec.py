"""Wire codec: every protocol message survives the frame roundtrip."""

import asyncio

import pytest

from repro.runtime.codec import (
    MAX_FRAME_BYTES,
    CodecError,
    decode_message,
    encode_frame,
    encode_message,
    read_frame,
)
from repro.sim.messages import (
    AbortMessage,
    AckMessage,
    CommitMessage,
    DecisionRequest,
    PrepareMessage,
    ReadReply,
    ReadRequest,
    VersionReply,
    VersionRequest,
    VoteMessage,
)
from repro.sim.replica import ZERO_TIMESTAMP, Timestamp

ALL_MESSAGES = [
    ReadRequest(-1, 3, "k1", 17),
    ReadReply(3, -1, "k1", 17, "value", Timestamp(4, 8)),
    ReadReply(3, -1, "k1", 18, None, ZERO_TIMESTAMP),  # never-written key
    VersionRequest(-1, 0, "k2", 19),
    VersionReply(0, -1, "k2", 19, Timestamp(7, 9)),
    PrepareMessage(-1, 2, 101, "k2", "payload", Timestamp(8, 8)),
    VoteMessage(2, -1, 101, True),
    VoteMessage(2, -1, 102, False),
    CommitMessage(-1, 2, 101),
    AbortMessage(-1, 2, 102),
    AckMessage(2, -1, 101, True),
    DecisionRequest(4, -1, 103),
]


def _fields(message):
    names = [
        name
        for cls in reversed(type(message).__mro__)
        for name in getattr(cls, "__slots__", ())
        if name != "msg_id"  # regenerated locally, deliberately not carried
    ]
    return {name: getattr(message, name) for name in names}


@pytest.mark.parametrize(
    "message", ALL_MESSAGES, ids=lambda m: f"{m.type_name}-{m.msg_id}"
)
def test_roundtrip_every_message_type(message):
    decoded = decode_message(encode_message(message))
    assert type(decoded) is type(message)
    assert _fields(decoded) == _fields(message)


def test_timestamp_travels_as_version_sid_pair():
    obj = encode_message(ReadReply(3, -1, "k", 1, "v", Timestamp(5, 2)))
    assert obj["timestamp"] == [5, 2]
    decoded = decode_message(obj)
    assert decoded.timestamp == Timestamp(5, 2)
    assert decoded.timestamp.dominates(Timestamp(4, 0))


def test_unknown_type_rejected():
    with pytest.raises(CodecError, match="unknown message type"):
        decode_message({"kind": "msg", "type": "Gossip", "src": 0, "dst": 1})


def test_malformed_frame_rejected():
    with pytest.raises(CodecError, match="malformed"):
        decode_message({"kind": "msg", "type": "ReadRequest", "src": 0})


def _feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_frame_stream_roundtrip():
    async def main():
        frames = [encode_message(message) for message in ALL_MESSAGES]
        wire = b"".join(encode_frame(frame) for frame in frames)
        reader = _feed(wire)
        seen = []
        while (frame := await read_frame(reader)) is not None:
            seen.append(frame)
        assert seen == frames

    asyncio.run(main())


def test_clean_eof_returns_none_but_torn_frame_raises():
    async def main():
        assert await read_frame(_feed(b"")) is None
        with pytest.raises(CodecError, match="length prefix"):
            await read_frame(_feed(b"\x00\x00"))
        whole = encode_frame({"kind": "hello", "sid": 1})
        with pytest.raises(CodecError, match="payload"):
            await read_frame(_feed(whole[:-1]))

    asyncio.run(main())


def test_oversized_length_prefix_rejected_before_allocation():
    async def main():
        huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(CodecError, match="exceeds"):
            await read_frame(_feed(huge))

    asyncio.run(main())


def test_non_object_payload_rejected():
    async def main():
        frame = b"\x00\x00\x00\x02[]"
        with pytest.raises(CodecError, match="not an object"):
            await read_frame(_feed(frame))

    asyncio.run(main())
