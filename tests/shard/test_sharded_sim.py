"""End-to-end tests of the sharded keyspace simulation.

Covers the tentpole contract: per-shard replica groups behind a router
and load balancer, heterogeneous quorum systems, per-shard measurement
that folds cleanly, and bit-identical results between a serial repeat
loop and a ``--jobs N`` process-pool fan-out.
"""

import pytest

from repro.runner import (
    ShardParams,
    build_sharded_config,
    merge_sharded_monitors,
    parallel_shard_simulations,
)
from repro.shard import (
    HashRouter,
    ShardedConfig,
    build_sharded_simulation,
    simulate_sharded,
)
from repro.sim import WorkloadSpec


def _spec(**overrides):
    base = dict(operations=300, keys=512, arrival="poisson", rate=1.0)
    base.update(overrides)
    return WorkloadSpec(**base)


class TestShardedConfig:
    def test_system_broadcast(self):
        config = ShardedConfig(shards=3, systems=(("tree", "1-3"),))
        assert len(config.resolve_systems()) == 3

    def test_mismatched_system_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedConfig(shards=3, systems=(("tree", "1-3"),) * 2)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedConfig(shards=0)


class TestShardedSimulation:
    def test_all_operations_complete_and_route_consistently(self):
        config = ShardedConfig(workload=_spec(zipf_s=1.0), shards=4, seed=11)
        result = simulate_sharded(config)
        monitor = result.monitor
        assert monitor.total_operations == 300
        # Monitor attribution matches the balancer's dispatch counters:
        # every operation landed on the shard its key routed to.
        per_shard = [m.total_operations for m in monitor.shards]
        assert per_shard == result.store.balancer.dispatched
        assert sum(per_shard) == 300

    def test_routing_respects_router(self):
        scheduler, workload, store = build_sharded_simulation(
            ShardedConfig(workload=_spec(), shards=4, seed=2)
        )
        assert isinstance(store.router, HashRouter)
        workload.start()
        while workload.completed < 300:
            assert scheduler.step(), "stalled"
        # Hash routing over uniform keys spreads load: no empty shard.
        assert all(count > 0 for count in store.balancer.dispatched)

    def test_deterministic_under_same_seed(self):
        config = dict(workload=_spec(zipf_s=0.8), shards=4, p=0.9, seed=5)
        first = simulate_sharded(ShardedConfig(**config))
        second = simulate_sharded(ShardedConfig(**config))
        assert first.summary() == second.summary()
        assert first.monitor.per_shard_summaries() == (
            second.monitor.per_shard_summaries()
        )

    def test_seed_changes_results(self):
        base = dict(workload=_spec(), shards=2, p=0.85)
        first = simulate_sharded(ShardedConfig(**base, seed=1))
        second = simulate_sharded(ShardedConfig(**base, seed=2))
        assert first.summary() != second.summary()

    def test_heterogeneous_systems_per_shard(self):
        config = ShardedConfig(
            workload=_spec(operations=200),
            shards=2,
            systems=(("tree", "1-3-5"), ("protocol", "majority", 5)),
            router="range",
            seed=3,
        )
        result = simulate_sharded(config)
        assert result.monitor.total_operations == 200
        systems = [group.system for group in result.store.groups]
        assert systems[0].name != systems[1].name

    def test_ops_per_sec_reported(self):
        result = simulate_sharded(
            ShardedConfig(workload=_spec(), shards=2, seed=9)
        )
        summary = result.summary()
        assert summary["ops_per_sec"] > 0
        assert summary["shards"] == 2

    def test_regional_latency_slows_quorums(self):
        fast = simulate_sharded(ShardedConfig(
            workload=_spec(operations=150), shards=2, seed=4,
        ))
        slow = simulate_sharded(ShardedConfig(
            workload=_spec(operations=150), shards=2, seed=4,
            regions=2, local_latency=1.0, remote_latency=3.0,
        ))
        assert (
            slow.summary()["write_latency_mean"]
            > fast.summary()["write_latency_mean"]
        )

    def test_least_outstanding_balancer_runs(self):
        result = simulate_sharded(ShardedConfig(
            workload=_spec(operations=200, rate=4.0),
            shards=2, clients_per_shard=3,
            balancer="least-outstanding", service_time=0.5, seed=6,
        ))
        assert result.monitor.total_operations == 200
        # All slots were released on completion.
        for shard in range(2):
            assert result.store.balancer.outstanding(shard) == (0, 0, 0)


class TestParallelEquivalence:
    def test_serial_and_jobs_fanout_bit_identical(self):
        params = ShardParams(
            shards=4, operations=200, keys=256, zipf_s=1.0,
            p=0.9, seed=13,
        )
        serial = merge_sharded_monitors(
            parallel_shard_simulations(params, 4, jobs=1)
        )
        fanned = merge_sharded_monitors(
            parallel_shard_simulations(params, 4, jobs=2)
        )
        assert serial.summary() == fanned.summary()
        assert serial.per_shard_summaries() == fanned.per_shard_summaries()

    def test_build_sharded_config_round_trip(self):
        params = ShardParams(shards=2, systems=(("protocol", "grid", 16),))
        config, label = build_sharded_config(params)
        assert config.shards == 2
        assert "2 shards" in label
        systems = config.resolve_systems()
        assert all(n == 16 for _system, n in systems)


class TestShardReconfiguration:
    """Reconfiguration is shard-local: one group transitions, others serve."""

    def test_online_reconfigure_one_shard(self):
        from repro.core.builder import from_spec
        from repro.sim.engine import run_workload

        config = ShardedConfig(
            workload=_spec(operations=600, keys=64, rate=0.25),
            shards=3, systems=(("tree", "1-3-5"),), seed=7,
            clients_per_shard=2,
        )
        scheduler, workload, store = build_sharded_simulation(config)
        outcomes = []
        keys = store.shard_keys(1, 64)
        assert keys and all(
            store.router.shard_of(int(key[1:])) == 1 for key in keys
        )
        scheduler.schedule_at(150.0, lambda: store.reconfigure_shard(
            1, from_spec("1-4-4"), keys, outcomes.append
        ))
        run_workload(scheduler, workload, 5_000_000)
        assert outcomes and outcomes[0].success
        assert outcomes[0].mode == "online"
        assert outcomes[0].epoch == 1
        # the reconfigured shard's pool is on the new tree ...
        for coordinator in store.groups[1].coordinators:
            assert coordinator.system.tree.spec() == "1-4-4"
        # ... the untouched shards are not
        for shard in (0, 2):
            for coordinator in store.groups[shard].coordinators:
                assert coordinator.system.tree.spec() == "1-3-5"
        summary = store.monitor.summary()
        assert summary["read_availability"] == 1.0
        assert summary["write_availability"] == 1.0
