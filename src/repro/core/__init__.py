"""The paper's primary contribution: the arbitrary tree protocol.

* :mod:`repro.core.tree` — the logical/physical tree structure (Section 3.1);
* :mod:`repro.core.builder` — tree constructors, including Algorithm 1 and the
  MOSTLY-READ / MOSTLY-WRITE / UNMODIFIED shapes (Sections 3.3 and 4);
* :mod:`repro.core.protocol` — read/write quorum construction (Section 3.2);
* :mod:`repro.core.metrics` — closed-form cost/availability/load analysis
  (Sections 3.2-3.3 and the appendix);
* :mod:`repro.core.config` — the six named configurations of Section 4;
* :mod:`repro.core.tuning` — frequency-aware tree configuration advisor.
"""

from repro.core.builder import (
    algorithm_1,
    balanced_tree,
    from_spec,
    mostly_read,
    mostly_write,
    recommended_tree,
    sqrt_levels,
    uniform_tree,
)
from repro.core.config import Configuration, make_tree
from repro.core.metrics import (
    TreeMetrics,
    analyse,
    expected_read_load,
    expected_write_load,
    limit_read_availability,
    limit_write_availability,
    read_availability,
    read_cost,
    read_load,
    write_availability,
    write_cost_avg,
    write_cost_max,
    write_cost_min,
    write_load,
)
from repro.core.proofs import (
    OptimalityProof,
    prove_lower_bound_for_binary_tree,
    prove_read_load,
    prove_write_load,
)
from repro.core.protocol import ArbitraryProtocol
from repro.core.tree import ArbitraryTree, NodeKind, TreeNode
from repro.core.tuning import TuningResult, recommend

__all__ = [
    "ArbitraryProtocol",
    "ArbitraryTree",
    "Configuration",
    "NodeKind",
    "OptimalityProof",
    "TreeMetrics",
    "TreeNode",
    "TuningResult",
    "algorithm_1",
    "analyse",
    "balanced_tree",
    "expected_read_load",
    "expected_write_load",
    "from_spec",
    "limit_read_availability",
    "limit_write_availability",
    "make_tree",
    "mostly_read",
    "mostly_write",
    "prove_lower_bound_for_binary_tree",
    "prove_read_load",
    "prove_write_load",
    "read_availability",
    "read_cost",
    "read_load",
    "recommend",
    "recommended_tree",
    "sqrt_levels",
    "uniform_tree",
    "write_availability",
    "write_cost_avg",
    "write_cost_max",
    "write_cost_min",
    "write_load",
]
