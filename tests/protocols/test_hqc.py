"""Unit tests for hierarchical quorum consensus (HQC)."""

import math
import random

import pytest

from repro.protocols.hqc import (
    HQC_COST_EXPONENT,
    HQC_LOAD_EXPONENT,
    HQCProtocol,
    hqc_sizes,
    ternary_depth,
)
from repro.quorums.base import is_intersecting
from repro.quorums.load import optimal_load


class TestStructure:
    def test_depth(self):
        assert ternary_depth(1) == 0
        assert ternary_depth(27) == 3

    def test_invalid_sizes_rejected(self):
        for n in (2, 4, 10, 28):
            with pytest.raises(ValueError, match="power of 3"):
                ternary_depth(n)

    def test_sizes_helper(self):
        assert hqc_sizes(3) == [1, 3, 9, 27]


class TestQuorumConstruction:
    def test_failure_free_size(self):
        for n in (3, 9, 27):
            protocol = HQCProtocol(n)
            quorum = protocol.construct_quorum(set(range(n)))
            assert quorum is not None
            assert len(quorum) == protocol.quorum_size()

    def test_routes_around_failures(self):
        protocol = HQCProtocol(9)
        live = {0, 1, 3, 4, 6, 7}  # one leaf down per subtree
        quorum = protocol.construct_quorum(live)
        assert quorum is not None and quorum <= live

    def test_fails_when_two_subtrees_broken(self):
        protocol = HQCProtocol(3)
        assert protocol.construct_quorum({0}) is None

    def test_randomised_construction(self):
        protocol = HQCProtocol(27)
        rng = random.Random(5)
        live = set(range(27)) - {1, 5, 9, 14, 22}
        for _ in range(20):
            quorum = protocol.construct_quorum(live, rng)
            assert quorum is not None and quorum <= live


class TestEnumeration:
    def test_count_recurrence(self):
        assert HQCProtocol(1).quorum_count() == 1
        assert HQCProtocol(3).quorum_count() == 3
        assert HQCProtocol(9).quorum_count() == 27
        assert HQCProtocol(27).quorum_count() == 2187

    def test_enumeration_matches_count(self):
        quorums = list(HQCProtocol(9).enumerate_quorums())
        assert len(quorums) == 27
        assert len(set(quorums)) == 27

    def test_all_quorums_have_fixed_size(self):
        protocol = HQCProtocol(9)
        for quorum in protocol.enumerate_quorums():
            assert len(quorum) == 4  # 2^2

    def test_quorums_intersect(self):
        assert is_intersecting(list(HQCProtocol(9).enumerate_quorums()))

    def test_guard(self):
        with pytest.raises(ValueError, match="exceed"):
            list(HQCProtocol(81).enumerate_quorums(max_quorums=100))


class TestAnalyticQuantities:
    def test_cost_is_n_to_063(self):
        for n in (3, 9, 27, 81, 243):
            protocol = HQCProtocol(n)
            assert protocol.read_cost() == pytest.approx(n**HQC_COST_EXPONENT)
        assert HQC_COST_EXPONENT == pytest.approx(0.6309, abs=1e-4)

    def test_load_is_n_to_minus_037(self):
        for n in (9, 27, 81):
            protocol = HQCProtocol(n)
            assert protocol.optimal_load() == pytest.approx(n**HQC_LOAD_EXPONENT)
        assert HQC_LOAD_EXPONENT == pytest.approx(-0.3691, abs=1e-4)

    def test_load_matches_lp(self):
        for n in (3, 9):
            protocol = HQCProtocol(n)
            lp = optimal_load(list(protocol.enumerate_quorums()), universe=range(n))
            assert lp.load == pytest.approx(protocol.optimal_load(), abs=1e-6)

    def test_load_beats_tree_quorum_but_not_sqrt(self):
        """The paper: n^-0.37 sits between 2/log(n) and 1/sqrt(n)."""
        from repro.protocols.tree_quorum import TreeQuorumProtocol

        hqc = HQCProtocol(243)
        binary = TreeQuorumProtocol(255)
        assert hqc.optimal_load() < binary.optimal_load()
        assert hqc.optimal_load() > 1 / math.sqrt(243)


class TestAvailability:
    def test_recursion_matches_exact_enumeration(self):
        protocol = HQCProtocol(9)
        for p in (0.5, 0.7, 0.9):
            exact = _exact_construction_probability(protocol, p)
            assert protocol.availability(p) == pytest.approx(exact, abs=1e-9)

    def test_majority_amplification(self):
        """For p > 1/2 the 2-of-3 recursion amplifies towards 1."""
        values = [HQCProtocol(3**d).availability(0.8) for d in (0, 2, 4)]
        assert values == sorted(values)
        assert HQCProtocol(3**4).availability(0.8) > 0.97

    def test_below_half_decays(self):
        values = [HQCProtocol(3**d).availability(0.4) for d in (0, 2, 4)]
        assert values == sorted(values, reverse=True)

    def test_read_write_symmetric(self):
        protocol = HQCProtocol(27)
        assert protocol.read_availability(0.7) == protocol.write_availability(0.7)
        assert protocol.read_load() == protocol.write_load()


def _exact_construction_probability(protocol: HQCProtocol, p: float) -> float:
    n = protocol.n
    total = 0.0
    for mask in range(1 << n):
        live = {sid for sid in range(n) if mask & (1 << sid)}
        if protocol.construct_quorum(live) is not None:
            probability = 1.0
            for sid in range(n):
                probability *= p if sid in live else 1.0 - p
            total += probability
    return total
