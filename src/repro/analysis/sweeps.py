"""Parameter sweeps producing the series behind Figures 2-4.

Each figure plots one quantity for all six configurations against the
number of replicas ``n``.  Because BINARY/UNMODIFIED only exist at
``n = 2^(h+1)-1`` and HQC at ``n = 3^l``, every requested ``n`` is snapped
per-configuration to the nearest admissible size; each data point records
the size actually evaluated, mirroring how the paper plots the protocols at
their natural sizes on a common axis.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.analysis.formulas import ConfigPoint, evaluate_configuration
from repro.core.config import ALL_CONFIGURATIONS, Configuration

#: The default x-axis: roughly the range the paper's figures cover.
DEFAULT_SIZES: tuple[int, ...] = (7, 15, 31, 63, 81, 127, 243, 255, 511, 729)

#: The paper computes expected loads at p = 0.7 in the running example; the
#: figure discussion also references p < 0.8 vs p > 0.8 behaviour.
DEFAULT_P = 0.7


@dataclass(frozen=True)
class SeriesPoint:
    """One (x, y) point of a figure series, recording the snapped size."""

    requested_n: int
    actual_n: int
    value: float


@dataclass(frozen=True)
class FigureSeries:
    """All series of one figure: configuration -> quantity -> points."""

    quantities: tuple[str, ...]
    series: dict[Configuration, dict[str, tuple[SeriesPoint, ...]]]
    p: float

    def merge(self, other: "FigureSeries") -> "FigureSeries":
        """Combine two shards of the same sweep into a new series.

        Shards must agree on ``quantities`` and ``p``.  Per configuration
        and quantity the point tuples are concatenated in fold order, so
        merging size-shards in ascending task order reproduces the serial
        sweep exactly.
        """
        if other.quantities != self.quantities:
            raise ValueError(
                "cannot merge sweeps over different quantities: "
                f"{self.quantities} vs {other.quantities}"
            )
        if other.p != self.p:
            raise ValueError(
                f"cannot merge sweeps at different p: {self.p} vs {other.p}"
            )
        merged: dict[Configuration, dict[str, tuple[SeriesPoint, ...]]] = {
            config: dict(per_quantity)
            for config, per_quantity in self.series.items()
        }
        for config, per_quantity in other.series.items():
            target = merged.setdefault(config, {})
            for quantity, points in per_quantity.items():
                target[quantity] = target.get(quantity, ()) + points
        return FigureSeries(
            quantities=self.quantities, series=merged, p=self.p
        )


def sweep_configurations(
    quantities: Sequence[str],
    sizes: Sequence[int] = DEFAULT_SIZES,
    p: float = DEFAULT_P,
    configs: Sequence[Configuration] = ALL_CONFIGURATIONS,
) -> FigureSeries:
    """Evaluate the named :class:`ConfigPoint` fields over a size sweep.

    ``quantities`` are attribute names of :class:`ConfigPoint`, e.g.
    ``("read_cost", "write_cost")``.
    """
    getters: dict[str, Callable[[ConfigPoint], float]] = {
        quantity: (lambda point, _q=quantity: getattr(point, _q))
        for quantity in quantities
    }
    series: dict[Configuration, dict[str, tuple[SeriesPoint, ...]]] = {}
    for config in configs:
        per_quantity: dict[str, list[SeriesPoint]] = {
            quantity: [] for quantity in quantities
        }
        for n in sizes:
            point = evaluate_configuration(config, n, p)
            for quantity, getter in getters.items():
                per_quantity[quantity].append(
                    SeriesPoint(
                        requested_n=n,
                        actual_n=point.n,
                        value=float(getter(point)),
                    )
                )
        series[config] = {
            quantity: tuple(points) for quantity, points in per_quantity.items()
        }
    return FigureSeries(quantities=tuple(quantities), series=series, p=p)


def figure2_series(
    sizes: Sequence[int] = DEFAULT_SIZES, p: float = DEFAULT_P
) -> FigureSeries:
    """Figure 2: read and write communication costs of the six configurations."""
    return sweep_configurations(("read_cost", "write_cost"), sizes, p)


def figure3_series(
    sizes: Sequence[int] = DEFAULT_SIZES, p: float = DEFAULT_P
) -> FigureSeries:
    """Figure 3: (expected) system loads of read operations."""
    return sweep_configurations(
        ("read_load", "expected_read_load"), sizes, p
    )


def figure4_series(
    sizes: Sequence[int] = DEFAULT_SIZES, p: float = DEFAULT_P
) -> FigureSeries:
    """Figure 4: (expected) system loads of write operations."""
    return sweep_configurations(
        ("write_load", "expected_write_load"), sizes, p
    )
