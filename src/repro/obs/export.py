"""Trace export/import as JSON Lines.

One record per line, discriminated by ``record``:

* ``{"record": "span", ...}`` — one :class:`~repro.obs.spans.Span`;
* ``{"record": "counter", "group": ..., "name": ..., "value": ...}`` —
  one counter cell (message send/deliver/drop tallies by type);
* ``{"record": "metric", "name": ..., "summary": {...}}`` — count/mean/
  min/max of one scalar metric (lock wait/hold times).

Attribute values must be JSON-serialisable; the instrumentation only puts
strings, numbers and booleans in span attributes.  :func:`load_trace`
rebuilds a :class:`~repro.obs.recorder.TraceRecorder` whose spans and
counters round-trip exactly; metrics come back as their summaries (the
raw observations are not exported) via ``loaded_metric_summaries``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.recorder import TraceRecorder
from repro.obs.spans import Span


def trace_records(recorder: TraceRecorder) -> list[dict]:
    """The JSONL records of a recorder, spans first."""
    records: list[dict] = [span.to_dict() for span in recorder.spans.values()]
    for group in sorted(recorder.counters):
        for name, value in sorted(recorder.counters[group].items()):
            records.append(
                {"record": "counter", "group": group, "name": name, "value": value}
            )
    for name, summary in sorted(recorder.metric_summaries().items()):
        records.append({"record": "metric", "name": name, "summary": summary})
    return records


def export_trace(recorder: TraceRecorder, path: Path | str) -> Path:
    """Write a recorder's full contents to ``path`` as JSON Lines."""
    path = Path(path)
    with path.open("w") as handle:
        for record in trace_records(recorder):
            handle.write(json.dumps(record) + "\n")
    return path


def load_trace(path: Path | str) -> TraceRecorder:
    """Rebuild a recorder from a JSONL trace file.

    The returned recorder carries the spans and counters verbatim; metric
    summaries land in ``loaded_metric_summaries`` (raw observation lists
    are not part of the export format).
    """
    recorder = TraceRecorder()
    loaded_summaries: dict[str, dict[str, float]] = {}
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            kind = data.get("record")
            if kind == "span":
                span = Span.from_dict(data)
                recorder.spans[span.span_id] = span
            elif kind == "counter":
                recorder.count(data["group"], data["name"], data["value"])
            elif kind == "metric":
                loaded_summaries[data["name"]] = data["summary"]
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown record type {kind!r}"
                )
    recorder.loaded_metric_summaries = loaded_summaries  # type: ignore[attr-defined]
    return recorder


def summaries_of(recorder: TraceRecorder) -> dict[str, dict[str, float]]:
    """Metric summaries, honouring ones loaded from a JSONL file."""
    loaded = getattr(recorder, "loaded_metric_summaries", None)
    computed = recorder.metric_summaries()
    if loaded:
        merged = dict(loaded)
        merged.update(computed)
        return merged
    return computed
