"""Closed-form evaluation of the six Section-4 configurations.

One :class:`ConfigPoint` holds every quantity the paper plots for one
configuration at one system size: read/write communication cost (Figure 2),
read/write optimal system load and Equation-3.2 expected load (Figures 3-4),
and the underlying availabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ALL_CONFIGURATIONS, Configuration, make_model


@dataclass(frozen=True)
class ConfigPoint:
    """All paper-plotted quantities for one configuration at one size."""

    config: Configuration
    n: int
    p: float
    read_cost: float
    write_cost: float
    read_load: float
    write_load: float
    read_availability: float
    write_availability: float
    expected_read_load: float
    expected_write_load: float


def evaluate_configuration(
    config: Configuration, n: int, p: float = 0.7
) -> ConfigPoint:
    """Evaluate one configuration at (approximately) ``n`` replicas.

    ``n`` is snapped to the configuration's nearest admissible size (e.g.
    complete-binary-tree sizes for BINARY/UNMODIFIED); the point records the
    size actually used.
    """
    model = make_model(config, n)
    return ConfigPoint(
        config=config,
        n=model.n,
        p=p,
        read_cost=model.read_cost(),
        write_cost=model.write_cost(),
        read_load=model.read_load(),
        write_load=model.write_load(),
        read_availability=model.read_availability(p),
        write_availability=model.write_availability(p),
        expected_read_load=model.expected_read_load(p),
        expected_write_load=model.expected_write_load(p),
    )


def evaluate_all(n: int, p: float = 0.7) -> dict[Configuration, ConfigPoint]:
    """Evaluate every configuration at (approximately) ``n`` replicas."""
    return {
        config: evaluate_configuration(config, n, p)
        for config in ALL_CONFIGURATIONS
    }
