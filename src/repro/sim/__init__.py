"""Discrete-event distributed-system simulator (the paper's Section 2.2).

The paper's evaluation is analytical; this subpackage provides the system
model it assumes, so that every closed-form quantity (communication cost,
availability, per-replica load) can also be *measured* end-to-end:

* sites = processing unit + storage + unique SID, fail-stop with transient,
  detectable failures (:mod:`repro.sim.site`, :mod:`repro.sim.failures`);
* bidirectional links with latency, loss and partitions
  (:mod:`repro.sim.network`);
* timestamps of (version, SID) and one-copy-equivalent reads
  (:mod:`repro.sim.replica`);
* a centralised concurrency-control scheme (:mod:`repro.sim.locks`);
* transactions executed atomically with 2PC (:mod:`repro.sim.transactions`,
  :mod:`repro.sim.coordinator`);
* client workload generation and measurement (:mod:`repro.sim.workload`,
  :mod:`repro.sim.monitor`);
* one-call experiment wiring (:mod:`repro.sim.engine`);
* structured tracing of every operation (spans, message counters, lock
  metrics) via :mod:`repro.obs` — pass ``SimulationConfig(trace=True)``.
"""

from repro.sim.coordinator import OperationOutcome, QuorumCoordinator
from repro.sim.engine import (
    ReplicaGroup,
    SimulationConfig,
    SimulationResult,
    build_replica_group,
    run_workload,
    simulate,
)
from repro.sim.events import Scheduler
from repro.sim.failures import BernoulliFailures, CrashRepairProcess, FailureInjector
from repro.sim.locks import LockManager, LockMode
from repro.sim.messages import (
    AbortMessage,
    CommitMessage,
    PrepareMessage,
    ReadReply,
    ReadRequest,
    VoteMessage,
)
from repro.sim.monitor import Monitor, ShardedMonitor
from repro.sim.network import Network, PartitionSpec, RegionLatencyMatrix
from repro.sim.reconfigure import ReconfigOutcome, ReconfigStatus, TreeReconfigurer
from repro.sim.replica import Timestamp, VersionedStore
from repro.sim.site import Site, SiteState
from repro.sim.transactions import Operation, OperationType, Transaction
from repro.sim.workload import Workload, WorkloadSpec

__all__ = [
    "AbortMessage",
    "BernoulliFailures",
    "CommitMessage",
    "CrashRepairProcess",
    "FailureInjector",
    "LockManager",
    "LockMode",
    "Monitor",
    "Network",
    "Operation",
    "OperationOutcome",
    "OperationType",
    "PartitionSpec",
    "PrepareMessage",
    "QuorumCoordinator",
    "ReadReply",
    "ReconfigOutcome",
    "ReconfigStatus",
    "TreeReconfigurer",
    "ReadRequest",
    "RegionLatencyMatrix",
    "ReplicaGroup",
    "Scheduler",
    "ShardedMonitor",
    "SimulationConfig",
    "SimulationResult",
    "Site",
    "SiteState",
    "Timestamp",
    "Transaction",
    "VersionedStore",
    "VoteMessage",
    "Workload",
    "WorkloadSpec",
    "build_replica_group",
    "run_workload",
    "simulate",
]
