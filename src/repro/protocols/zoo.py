"""One registry of every protocol, as unified quorum systems.

The repo implements the paper's arbitrary protocol plus six comparison
protocols; each used to be reachable only through its own class and size
restrictions.  This module is the single place that knows how to build all
seven as :class:`~repro.quorums.system.QuorumSystem` instances at (or near)
a requested replica count, so the simulator, the analysis layer, the CLI
and the benchmarks can iterate over the whole zoo uniformly.

Most protocols only admit particular sizes (powers of three, complete
binary trees, perfect squares, ...); :func:`quorum_systems` snaps ``n`` to
the nearest admissible size per protocol, exactly as the related-work
survey does, and reports the actual size via each system's ``n``.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.core.builder import recommended_tree
from repro.core.protocol import ArbitraryProtocol
from repro.protocols.agrawal_tree import AgrawalTreeProtocol
from repro.protocols.fpp import FiniteProjectivePlaneProtocol, fpp_sizes
from repro.protocols.grid import GridProtocol
from repro.protocols.hqc import HQCProtocol, hqc_sizes
from repro.protocols.majority import MajorityProtocol
from repro.protocols.rowa import RowaProtocol
from repro.protocols.tree_quorum import TreeQuorumProtocol, binary_tree_sizes
from repro.quorums.system import QuorumSystem

#: Canonical lowercase keys of the seven protocols in the zoo.
PROTOCOL_NAMES: tuple[str, ...] = (
    "arbitrary",
    "rowa",
    "majority",
    "grid",
    "hqc",
    "tree-quorum",
    "ae-tree",
)


def _nearest(sizes: Sequence[int], n: int) -> int:
    return min(sizes, key=lambda candidate: abs(candidate - n))


def _ae_tree_at(n: int) -> AgrawalTreeProtocol:
    # Complete (2d+1)-ary tree with d = 1 (ternary); snap the height.
    sizes = {(3 ** (h + 1) - 1) // 2: h for h in range(1, 10)}
    snapped = _nearest(list(sizes), n)
    return AgrawalTreeProtocol(d=1, height=sizes[snapped])


_BUILDERS: dict[str, Callable[[int], QuorumSystem]] = {
    "arbitrary": lambda n: ArbitraryProtocol(recommended_tree(n)),
    "rowa": RowaProtocol,
    "majority": lambda n: MajorityProtocol(n if n % 2 == 1 else n + 1),
    "grid": lambda n: GridProtocol(max(2, math.isqrt(n)) ** 2),
    "hqc": lambda n: HQCProtocol(_nearest(hqc_sizes(7), n)),
    "tree-quorum": lambda n: TreeQuorumProtocol(_nearest(binary_tree_sizes(12), n)),
    "ae-tree": _ae_tree_at,
}


def quorum_system(protocol: str, n: int) -> QuorumSystem:
    """Build one protocol of the zoo at (the nearest admissible size to) ``n``.

    ``protocol`` is a key from :data:`PROTOCOL_NAMES` (case-insensitive).
    """
    key = protocol.lower()
    if key not in _BUILDERS:
        raise ValueError(
            f"unknown protocol {protocol!r}; choose from {PROTOCOL_NAMES}"
        )
    return _BUILDERS[key](n)


def quorum_systems(n: int) -> dict[str, QuorumSystem]:
    """All seven protocols at (approximately) ``n`` replicas, keyed by name."""
    return {name: quorum_system(name, n) for name in PROTOCOL_NAMES}


def fpp_system(n: int) -> QuorumSystem:
    """Maekawa's FPP system at the nearest admissible size (survey extra).

    Kept out of :func:`quorum_systems` because the plane sizes
    ``q^2 + q + 1`` are sparse, but exposed for the related-work survey.
    """
    return FiniteProjectivePlaneProtocol(_nearest(fpp_sizes(23), n))
