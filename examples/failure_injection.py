"""Failure injection: crashes, repairs and a network partition.

Exercises the Section 2.2 failure model end to end:

1. a crash/repair process (exponential up/down times) running under a
   steady workload — operations route around the failed replicas and the
   measured availability tracks the closed form for the process's
   stationary per-replica availability;
2. a hard network partition isolating one physical level — writes can
   still commit on a fully-connected level, reads fail while no complete
   cover exists, and everything recovers when the partition heals.

Run:  python examples/failure_injection.py
"""

from __future__ import annotations

from repro.core import analyse, from_spec, recommended_tree
from repro.sim import (
    CrashRepairProcess,
    SimulationConfig,
    WorkloadSpec,
    simulate,
)
from repro.sim.failures import PartitionSchedule
from repro.sim.network import PartitionSpec


def crash_repair_demo() -> None:
    tree = recommended_tree(40)
    process = CrashRepairProcess(mean_uptime=400.0, mean_downtime=100.0, seed=2)
    p = process.long_run_availability
    metrics = analyse(tree, p=p)
    result = simulate(
        SimulationConfig(
            tree=tree,
            workload=WorkloadSpec(
                operations=4000, read_fraction=0.5, keys=32,
                arrival="poisson", rate=0.2,
            ),
            failures=process,
            max_attempts=1,
            timeout=8.0,
            seed=4,
        )
    )
    summary = result.summary()
    print(f"crash/repair process on {tree.spec()} "
          f"(stationary per-replica availability p = {p:.2f}):")
    print(f"  measured read availability  {summary['read_availability']:.3f}  "
          f"(closed form {metrics.read_availability:.3f})")
    print(f"  measured write availability {summary['write_availability']:.3f}  "
          f"(closed form {metrics.write_availability:.3f})")
    crashes = sum(site.stats.crashes for site in result.sites)
    print(f"  total crashes injected      {crashes}")
    print()


def partition_demo() -> None:
    tree = from_spec("1-3-5")
    level1 = set(tree.replica_ids_at(1))          # replicas 0..2
    level2 = set(tree.replica_ids_at(2))          # replicas 3..7
    # The coordinator (SID -1) stays on level 2's side of the split.
    partition = PartitionSpec.split(level1, level2 | {-1})
    result = simulate(
        SimulationConfig(
            tree=tree,
            workload=WorkloadSpec(operations=600, read_fraction=0.5, keys=8),
            failures=PartitionSchedule(partition, start=400.0, end=1200.0),
            max_attempts=1,
            timeout=8.0,
            seed=9,
        )
    )
    during = [o for o in result.monitor.outcomes if 400 <= o.started_at < 1200]
    before_after = [
        o for o in result.monitor.outcomes
        if o.started_at < 400 or o.started_at >= 1208
    ]
    reads_during = [o for o in during if o.op_type == "read"]
    writes_during = [o for o in during if o.op_type == "write"]
    print("network partition isolating physical level 1 (t in [400, 1200)):")
    print(f"  reads during the split:  "
          f"{sum(o.success for o in reads_during)}/{len(reads_during)} succeed "
          "(no quorum can cover both levels)")
    print(f"  writes during the split: "
          f"{sum(o.success for o in writes_during)}/{len(writes_during)} succeed "
          "(level 2 is complete on the coordinator's side)")
    healthy = sum(o.success for o in before_after)
    print(f"  outside the split:       {healthy}/{len(before_after)} succeed")
    print()
    print("One-copy equivalence is preserved throughout: a write quorum")
    print("(one whole level) and a read quorum (one node per level) always")
    print("intersect, so reads can never return a value that skips a")
    print("committed write — the protocol simply refuses reads it cannot")
    print("serve consistently during the partition.")


def main() -> None:
    crash_repair_demo()
    partition_demo()


if __name__ == "__main__":
    main()
