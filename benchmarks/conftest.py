"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, prints the
series (run with ``pytest benchmarks/ --benchmark-only -s`` to see them),
and writes the same text into ``benchmarks/results/`` so EXPERIMENTS.md can
reference stable artefacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _emit
