"""The first-class read/write quorum-system layer.

Before this module existed, quorum logic was split across four incompatible
interfaces: :class:`~repro.core.protocol.ArbitraryProtocol` (the paper's
protocol), the analytic :class:`~repro.protocols.base.ProtocolModel` zoo
with ad-hoc ``construct_quorum`` methods, the explicit
:class:`~repro.quorums.base.BiCoterie` machinery, and the simulator's
structural quorum-policy adapter.  Following the design argued for in
Whittaker et al., *Read-Write Quorum Systems Made Practical* (2021), this
module unifies them: a :class:`QuorumSystem` is *the* object every consumer
(simulator, analysis, CLI, benchmarks) programs against.

A concrete system provides a universe of replica SIDs and its read/write
quorum collections; everything else — strategies, optimal load, exact or
Monte-Carlo availability, bi-coterie materialisation, failure-aware quorum
selection — is derived generically here, once, instead of per protocol.
Protocols with known closed forms (every model in :mod:`repro.protocols`)
override the derived methods with O(1) formulas; protocols with structural
selectors override ``select_read_quorum``/``select_write_quorum`` so the
simulator never enumerates.

:class:`CachedQuorumSystem` wraps any system and memoizes the expensive
derived quantities (quorum enumeration, LP loads, per-replica load vectors,
availability curves) so repeated analysis of one system — the common case in
sweeps and benchmarks — pays the enumeration cost once.
"""

from __future__ import annotations

import abc
import random
from collections.abc import Collection, Iterator
from itertools import islice

import numpy as np

from repro.quorums.availability import operation_availability
from repro.quorums.base import BiCoterie, is_cross_intersecting
from repro.quorums.bitset import PackedQuorums, mask_to_words, pack_rows
from repro.quorums.liveness import ALL_LIVE, Liveness, as_oracle
from repro.quorums.load import optimal_operation_load
from repro.quorums.strategy import Strategy

#: Default guard on quorum materialisation (enumeration is exponential for
#: most protocols; derived analyses are meant for small/medium instances).
DEFAULT_MAX_QUORUMS = 200_000

#: Quorums packed per batch by the mask-based selection scan.
_SELECT_CHUNK = 1024

_OPS = ("read", "write")


def _check_op(op: str) -> None:
    if op not in _OPS:
        raise ValueError(f"op must be 'read' or 'write', got {op!r}")


def _select_by_mask(
    quorums: Iterator[frozenset[int]],
    universe: frozenset[int],
    live: Collection[int],
    rng: random.Random | None,
) -> frozenset[int] | None:
    """Mask-AND selection scan: the bitset-kernel twin of the oracle scan.

    Packs the live set into one bitmask and tests quorums in packed batches
    (``quorum & live == quorum``) instead of calling a per-element oracle.
    Reservoir sampling draws one ``rng.randrange`` per viable quorum in
    enumeration order — the exact RNG stream of the reference scan, so both
    return the same quorum for the same seed.
    """
    elements = sorted(universe)
    index = {element: i for i, element in enumerate(elements)}
    words = max(1, -(-len(elements) // 64))
    live_mask = 0
    for sid in live:
        bit = index.get(sid)
        if bit is not None:
            live_mask |= 1 << bit
    live_words = mask_to_words(live_mask, words)

    chosen: frozenset[int] | None = None
    viable = 0
    iterator = iter(quorums)
    while True:
        chunk = list(islice(iterator, _SELECT_CHUNK))
        if not chunk:
            return chosen
        matrix = pack_rows(chunk, index, words)
        hits = np.nonzero(((matrix & live_words) == matrix).all(axis=1))[0]
        if rng is None:
            if hits.size:
                return chunk[int(hits[0])]
        else:
            for row in hits:
                viable += 1
                if rng.randrange(viable) == 0:
                    chosen = chunk[int(row)]


class QuorumSystem(abc.ABC):
    """A read/write quorum system over integer replica identifiers.

    The minimal contract is ``universe`` plus lazy ``read_quorums()`` /
    ``write_quorums()`` iteration; every read quorum must intersect every
    write quorum (the bi-coterie property, re-checkable via
    :meth:`is_bicoterie`).  All other behaviour has generic defaults:

    * :meth:`select_read_quorum` / :meth:`select_write_quorum` — assemble a
      quorum of live replicas (failure fallback), defaulting to a scan of
      the enumerated quorums; structural protocols override with their
      recursive constructions;
    * :meth:`sample_read_quorum` / :meth:`sample_write_quorum` — draw from
      the failure-free selection distribution;
    * :meth:`strategy`, :meth:`load`, :meth:`load_vector`,
      :meth:`availability` — the Naor-Wool analyses, derived from the
      enumerated quorums via the LP and exact/Monte-Carlo machinery.

    Wrap instances in :class:`CachedQuorumSystem` when the derived analyses
    are evaluated repeatedly.
    """

    #: Human-readable system name (used in tables and bench output).
    name: str = "quorum-system"

    #: Distribution contract consumed by the simulator's selection fast
    #: path (:class:`repro.quorums.selection.SelectionIndex`): True iff
    #: ``select_read_quorum`` / ``select_write_quorum`` draw **uniformly**
    #: among the quorums that are subsets of the live set.  The generic
    #: reservoir scan below has exactly that distribution, so the default
    #: is True; subclasses overriding selection with a *non-uniform*
    #: structural construction (primary-path preference, recursive subtree
    #: orderings) MUST set this to False or the fast path would change
    #: their measured costs and loads.
    uniform_selection: bool = True

    @property
    @abc.abstractmethod
    def universe(self) -> frozenset[int]:
        """All replica SIDs the quorums are drawn from."""

    @property
    def n(self) -> int:
        """Number of replicas in the system."""
        return len(self.universe)

    @abc.abstractmethod
    def read_quorums(self) -> Iterator[frozenset[int]]:
        """Lazily enumerate every read quorum."""

    @abc.abstractmethod
    def write_quorums(self) -> Iterator[frozenset[int]]:
        """Lazily enumerate every write quorum."""

    # ------------------------------------------------------------------
    # enumeration helpers
    # ------------------------------------------------------------------

    def quorums(self, op: str = "read") -> Iterator[frozenset[int]]:
        """The quorum collection of one operation, by name."""
        _check_op(op)
        return iter(self.read_quorums() if op == "read" else self.write_quorums())

    def quorum_masks(self, op: str = "read") -> list[int] | None:
        """The quorum collection as integer bitmasks (bit ``i`` = SID ``i``),
        or ``None`` when only the frozenset enumeration exists.

        Protocols whose collections come from simple combinatorial
        structure (subsets, cartesian covers) override this to enumerate
        masks directly — the *same* collection in the *same* row order as
        the frozenset enumeration, without materialising a frozenset per
        quorum.  :meth:`PackedQuorums.from_system
        <repro.quorums.bitset.PackedQuorums.from_system>` consumes it to
        build the packed matrix straight from the masks.  Only meaningful
        for contiguous ``0..n-1`` universes.
        """
        _check_op(op)
        return None

    def materialise(
        self, op: str = "read", max_quorums: int = DEFAULT_MAX_QUORUMS
    ) -> tuple[frozenset[int], ...]:
        """Materialise one quorum collection, guarded against explosion."""
        quorums: list[frozenset[int]] = []
        for quorum in self.quorums(op):
            quorums.append(quorum)
            if len(quorums) > max_quorums:
                raise ValueError(
                    f"more than {max_quorums} {op} quorums of {self.name}; "
                    "raise max_quorums or use a closed form"
                )
        return tuple(quorums)

    # ------------------------------------------------------------------
    # failure-aware selection (the simulator's interface)
    # ------------------------------------------------------------------

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """A read quorum of live replicas, or ``None`` when unavailable.

        Generic fallback: scan the enumerated read quorums for fully-live
        ones — correct for any system, but linear in the quorum count.
        Structural protocols override this with their recursive selectors.
        With ``rng`` the choice among viable quorums is randomised
        (reservoir sampling, so enumeration stays lazy); without it the
        first viable quorum is returned, deterministically.  Explicit live
        *sets* run on the bitset kernel (one mask-AND per quorum batch);
        liveness *predicates* fall back to the per-element oracle scan.
        """
        return self._select(self.read_quorums(), live, rng)

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """A write quorum of live replicas, or ``None`` when unavailable."""
        return self._select(self.write_quorums(), live, rng)

    def _select(
        self,
        quorums: Iterator[frozenset[int]],
        live: Liveness,
        rng: random.Random | None,
    ) -> frozenset[int] | None:
        if callable(live):
            return self._select_by_scan(quorums, live, rng)
        return _select_by_mask(quorums, self.universe, live, rng)

    @staticmethod
    def _select_by_scan(
        quorums: Iterator[frozenset[int]],
        live: Liveness,
        rng: random.Random | None,
    ) -> frozenset[int] | None:
        """Per-element oracle scan (kernel reference path)."""
        oracle = as_oracle(live)
        chosen: frozenset[int] | None = None
        viable = 0
        for quorum in quorums:
            if not all(oracle(sid) for sid in quorum):
                continue
            if rng is None:
                return quorum
            viable += 1
            if rng.randrange(viable) == 0:
                chosen = quorum
        return chosen

    # ------------------------------------------------------------------
    # failure-free sampling
    # ------------------------------------------------------------------

    def sample_read_quorum(self, rng: random.Random) -> frozenset[int]:
        """Draw a read quorum from the failure-free selection distribution."""
        quorum = self.select_read_quorum(ALL_LIVE, rng)
        assert quorum is not None  # every system has at least one quorum
        return quorum

    def sample_write_quorum(self, rng: random.Random) -> frozenset[int]:
        """Draw a write quorum from the failure-free selection distribution."""
        quorum = self.select_write_quorum(ALL_LIVE, rng)
        assert quorum is not None
        return quorum

    # ------------------------------------------------------------------
    # derived analyses (Naor-Wool machinery, computed once and generically)
    # ------------------------------------------------------------------

    def strategy(self, op: str = "read") -> Strategy:
        """A load-optimal strategy over one quorum collection (LP primal)."""
        return optimal_operation_load(self, op).strategy

    def load(self, op: str = "read") -> float:
        """The optimal system load of one operation (Definition 2.5)."""
        return optimal_operation_load(self, op).load

    def load_vector(self, op: str = "read") -> dict[int, float]:
        """Per-replica load under a load-optimal strategy of one operation."""
        return self.strategy(op).element_loads()

    def availability(
        self,
        p: float,
        op: str = "read",
        samples: int = 100_000,
        seed: int | None = 0,
    ) -> float:
        """Probability some quorum of one operation is fully live.

        ``samples``/``seed`` parameterise the Monte-Carlo estimator when
        the system is too large for the exact computation.
        """
        return operation_availability(self, p, op, samples=samples, seed=seed)

    # ------------------------------------------------------------------
    # structure checks
    # ------------------------------------------------------------------

    def bicoterie(self, max_quorums: int = 100_000) -> BiCoterie:
        """Materialise the system as an explicit, validated bi-coterie."""
        return BiCoterie(
            self.materialise("read", max_quorums),
            self.materialise("write", max_quorums),
            universe=self.universe,
        )

    def is_bicoterie(self, max_quorums: int = 100_000) -> bool:
        """Re-verify that every read quorum intersects every write quorum."""
        return is_cross_intersecting(
            self.materialise("read", max_quorums),
            self.materialise("write", max_quorums),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, n={self.n})"


class CachedQuorumSystem(QuorumSystem):
    """Memoizing wrapper around any :class:`QuorumSystem`.

    Caches quorum enumeration (materialised once per operation, both as
    frozensets and as the bitset kernel's packed matrix), and every derived
    analysis keyed by its arguments: LP loads and strategies, per-replica
    load vectors, and availability values.  Selection and sampling are
    delegated untouched — they depend on the live set, which changes between
    calls.  Attributes not defined by the wrapper (e.g. a protocol's
    closed-form methods) are forwarded to the wrapped system.

    ``enumerations`` counts how many times the underlying system's quorum
    iterators were actually drained; repeated ``load()`` / ``availability()``
    calls on the same wrapper leave it at one per operation.
    """

    def __init__(
        self, system: QuorumSystem, max_quorums: int = DEFAULT_MAX_QUORUMS
    ) -> None:
        self._system = system
        self._max_quorums = max_quorums
        self._quorum_cache: dict[str, tuple[frozenset[int], ...]] = {}
        self._packed_cache: dict[str, PackedQuorums] = {}
        self._lp_cache: dict[str, object] = {}
        self._availability_cache: dict[tuple, float] = {}
        #: Times the wrapped system's quorum iterators were drained.
        self.enumerations = 0

    @property
    def system(self) -> QuorumSystem:
        """The wrapped quorum system."""
        return self._system

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._system.name

    @property
    def uniform_selection(self) -> bool:  # type: ignore[override]
        # Selection is delegated, so the wrapped system's distribution
        # contract is the wrapper's too.
        return self._system.uniform_selection

    @property
    def universe(self) -> frozenset[int]:
        return self._system.universe

    # -- cached enumeration ------------------------------------------------

    def materialise(
        self, op: str = "read", max_quorums: int | None = None
    ) -> tuple[frozenset[int], ...]:
        """Materialise once per operation; later calls hit the cache."""
        _check_op(op)
        if op not in self._quorum_cache:
            limit = self._max_quorums if max_quorums is None else max_quorums
            self._quorum_cache[op] = self._system.materialise(op, limit)
            self.enumerations += 1
        return self._quorum_cache[op]

    def read_quorums(self) -> Iterator[frozenset[int]]:
        return iter(self.materialise("read"))

    def write_quorums(self) -> Iterator[frozenset[int]]:
        return iter(self.materialise("write"))

    def quorum_masks(self, op: str = "read") -> list[int] | None:
        """Delegated: the wrapped system's mask enumeration, if any."""
        return self._system.quorum_masks(op)

    def packed(self, op: str = "read") -> PackedQuorums:
        """One quorum collection on the bitset kernel, packed exactly once.

        Every packed consumer (availability sums, bi-coterie verification,
        membership matrices) reuses this matrix instead of re-walking the
        frozensets.
        """
        _check_op(op)
        if op not in self._packed_cache:
            self._packed_cache[op] = PackedQuorums.from_quorums(
                self.materialise(op), universe=self.universe
            )
        return self._packed_cache[op]

    # -- cached analyses ---------------------------------------------------

    def _lp(self, op: str):
        if op not in self._lp_cache:
            from repro.quorums.load import optimal_load

            self._lp_cache[op] = optimal_load(
                self.materialise(op), universe=self.universe,
                packed=self.packed(op),
            )
        return self._lp_cache[op]

    def strategy(self, op: str = "read") -> Strategy:
        _check_op(op)
        return self._lp(op).strategy

    def load(self, op: str = "read") -> float:
        _check_op(op)
        return self._lp(op).load

    def load_vector(self, op: str = "read") -> dict[int, float]:
        return self.strategy(op).element_loads()

    def availability(
        self,
        p: float,
        op: str = "read",
        samples: int = 100_000,
        seed: int | None = 0,
    ) -> float:
        _check_op(op)
        key = (op, float(p), samples, seed)
        if key not in self._availability_cache:
            from repro.quorums.availability import system_availability

            self._availability_cache[key] = system_availability(
                self.packed(op), p, universe=self.universe,
                samples=samples, seed=seed,
            )
        return self._availability_cache[key]

    def is_bicoterie(self, max_quorums: int = 100_000) -> bool:
        """Kernel cross-intersection over the cached packed collections."""
        return self.packed("read").cross_intersects(self.packed("write"))

    # -- delegation --------------------------------------------------------

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        return self._system.select_read_quorum(live, rng)

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        return self._system.select_write_quorum(live, rng)

    def sample_read_quorum(self, rng: random.Random) -> frozenset[int]:
        return self._system.sample_read_quorum(rng)

    def sample_write_quorum(self, rng: random.Random) -> frozenset[int]:
        return self._system.sample_write_quorum(rng)

    def __getattr__(self, item: str):
        # Forward protocol-specific extras (closed forms, tree accessors).
        return getattr(self._system, item)

    def __repr__(self) -> str:
        return f"CachedQuorumSystem({self._system!r})"
