"""Unit tests for tree constructors (Algorithm 1 and the named shapes)."""

import math

import pytest

from repro.core.builder import (
    algorithm_1,
    balanced_tree,
    from_physical_level_sizes,
    from_spec,
    mostly_read,
    mostly_write,
    recommended_tree,
    sqrt_levels,
    uniform_tree,
    unmodified_binary,
    _spread,
)


class TestFromSpec:
    def test_paper_example(self):
        tree = from_spec("1-3-5")
        assert tree.physical_level_sizes == (3, 5)
        assert tree.logical_levels == (0,)

    def test_round_trip(self):
        for spec in ("1-3-5", "1-2-2-4", "P1-2-4", "1-9"):
            assert from_spec(spec).spec() == spec

    def test_bare_number_is_single_level(self):
        tree = from_spec("8")
        assert tree.physical_level_sizes == (8,)

    def test_physical_root_spec(self):
        tree = from_spec("P1-2-4")
        assert tree.physical_levels == (0, 1, 2)
        assert tree.n == 7

    def test_physical_root_must_be_one(self):
        with pytest.raises(ValueError, match="size 1"):
            from_spec("P2-4")

    def test_whitespace_tolerated(self):
        assert from_spec("  1-3-5 ").spec() == "1-3-5"

    def test_zero_level_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            from_spec("1-0-5")


class TestFromPhysicalLevelSizes:
    def test_logical_root_default(self):
        tree = from_physical_level_sizes([3, 5])
        assert tree.m_log(0) == 1 and tree.m_phy(0) == 0

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            from_physical_level_sizes([])

    def test_physical_root_requires_singleton_first(self):
        with pytest.raises(ValueError, match="exactly 1"):
            from_physical_level_sizes([2, 4], logical_root=False)


class TestSpread:
    def test_even_split(self):
        assert _spread(12, 3) == [4, 4, 4]

    def test_remainder_goes_deep(self):
        assert _spread(14, 3) == [4, 5, 5]

    def test_sizes_non_decreasing(self):
        for total in range(5, 60):
            for buckets in range(1, 6):
                if total // buckets >= 1:
                    sizes = _spread(total, buckets)
                    assert sizes == sorted(sizes)
                    assert sum(sizes) == total

    def test_minimum_enforced(self):
        with pytest.raises(ValueError, match="cannot place"):
            _spread(5, 3, minimum=2)

    def test_zero_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            _spread(5, 0)


class TestMostlyRead:
    def test_single_physical_level(self):
        tree = mostly_read(10)
        assert tree.num_physical_levels == 1
        assert tree.d == tree.e == 10

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            mostly_read(0)


class TestMostlyWrite:
    def test_odd_n_levels(self):
        tree = mostly_write(9)
        assert tree.num_physical_levels == 4  # (9-1)/2
        assert tree.physical_level_sizes == (2, 2, 2, 3)
        assert tree.n == 9

    def test_even_n_levels(self):
        tree = mostly_write(8)
        assert tree.physical_level_sizes == (2, 2, 2, 2)

    def test_paper_quantities_for_odd_n(self):
        """read cost (n-1)/2, write min cost 2, loads 1/2 and 2/(n-1)."""
        n = 15
        tree = mostly_write(n)
        assert tree.num_physical_levels == (n - 1) // 2
        assert tree.d == 2

    def test_rejects_below_two(self):
        with pytest.raises(ValueError):
            mostly_write(1)


class TestAlgorithm1:
    def test_rejects_n_at_most_64(self):
        with pytest.raises(ValueError, match="n > 64"):
            algorithm_1(64)

    @pytest.mark.parametrize("n", [65, 81, 100, 200, 500, 1000, 4096])
    def test_structure(self, n):
        tree = algorithm_1(n)
        assert tree.n == n
        assert tree.num_physical_levels == math.isqrt(n)
        assert tree.physical_level_sizes[:7] == (4,) * 7
        assert tree.satisfies_assumption()
        assert tree.logical_levels == (0,)

    def test_tail_sizes_near_even(self):
        tree = algorithm_1(100)
        tail = tree.physical_level_sizes[7:]
        assert max(tail) - min(tail) <= 1
        assert sum(tail) == 100 - 28


class TestBalancedTree:
    def test_mid_range_gets_extra_level(self):
        tree = balanced_tree(48)
        assert tree.physical_level_sizes == (4,) * 7 + (20,)

    def test_just_above_28_appends_to_last(self):
        tree = balanced_tree(30)
        assert tree.physical_level_sizes == (4, 4, 4, 4, 4, 4, 6)

    def test_exactly_28(self):
        with pytest.raises(ValueError):
            balanced_tree(28)

    def test_exact_head_shape(self):
        tree = balanced_tree(56)
        assert tree.n == 56
        assert tree.satisfies_assumption()


class TestSqrtLevels:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16, 17, 30, 64, 100])
    def test_conserves_replicas(self, n):
        tree = sqrt_levels(n)
        assert tree.n == n
        assert tree.satisfies_assumption()
        assert tree.num_physical_levels == max(1, math.isqrt(n))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            sqrt_levels(0)


class TestRecommendedTree:
    def test_dispatch(self):
        assert recommended_tree(100).physical_level_sizes[:7] == (4,) * 7
        assert recommended_tree(40).physical_level_sizes[:7] == (4,) * 7
        assert recommended_tree(10).num_physical_levels == 3

    @pytest.mark.parametrize("n", [2, 9, 29, 33, 64, 65, 100])
    def test_always_valid(self, n):
        tree = recommended_tree(n)
        assert tree.n == n
        assert tree.satisfies_assumption()


class TestUniformTree:
    def test_binary(self):
        tree = uniform_tree(2, 3)
        assert tree.n == 15
        assert tree.physical_level_sizes == (1, 2, 4, 8)
        assert tree.num_logical_levels == 0

    def test_ternary(self):
        tree = uniform_tree(3, 2)
        assert tree.n == 13
        assert tree.physical_level_sizes == (1, 3, 9)

    def test_height_zero(self):
        assert uniform_tree(2, 0).n == 1

    def test_rejects_branching_below_two(self):
        with pytest.raises(ValueError, match="branching"):
            uniform_tree(1, 3)

    def test_rejects_negative_height(self):
        with pytest.raises(ValueError, match="height"):
            uniform_tree(2, -1)


class TestUnmodifiedBinary:
    @pytest.mark.parametrize("n", [1, 3, 7, 15, 31, 63])
    def test_valid_sizes(self, n):
        tree = unmodified_binary(n)
        assert tree.n == n
        assert tree.physical_levels == tuple(range(tree.height + 1))

    @pytest.mark.parametrize("n", [2, 4, 5, 8, 16, 100])
    def test_invalid_sizes_rejected(self, n):
        with pytest.raises(ValueError, match="complete binary"):
            unmodified_binary(n)
