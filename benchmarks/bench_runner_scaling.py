"""Perf trajectory of the parallel runner and the selection fast path.

Two halves, one JSON:

* **runner scaling** — times the three runner workloads (figure sweep,
  Monte-Carlo availability, repeated-seed simulations) at ``--jobs`` 1, 2
  and 4, asserting the parallel results are bit-identical to the serial
  ones, and records wall-clock speedups.  Speedups are hardware-bound: on
  a single-core host (see ``host.cpu_count`` in the JSON) process fan-out
  *costs* time, which is exactly why the host fingerprint is stamped into
  the result file.
* **selection fast path** — the per-operation cost of quorum selection
  under churning live sets: the frozenset reference rebuilds the viable
  candidate list per call, the :class:`~repro.quorums.selection.SelectionIndex`
  kernel serves memoised viable rows per (op, live-mask).  Both consume
  identical RNG streams, so the selected quorum sequences must agree
  exactly.

Two tiers:

* ``--smoke`` (and the pytest smoke test, used by the CI runner job):
  small workloads, finishes in seconds; when the host has >= 2 CPUs it
  *fails* unless ``--jobs 2`` beats 1.2x serial on the Monte-Carlo smoke
  workload (on a single-CPU host the gate is recorded but not enforced —
  there is no parallelism to win).
* the default full run uses the figure-sized workloads and records the
  trajectory numbers cited in EXPERIMENTS.md.

Run directly::

    PYTHONPATH=src python benchmarks/bench_runner_scaling.py [--smoke] [--out P]
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from pathlib import Path

try:
    from benchmarks.perf_harness import Case, run_suite, write_bench_json
except ImportError:  # direct `python benchmarks/bench_runner_scaling.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from perf_harness import Case, run_suite, write_bench_json

from repro.core import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.protocols.zoo import quorum_system
from repro.quorums.selection import SelectionIndex, select_uniform_reference
from repro.runner import (
    SimParams,
    parallel_availability,
    parallel_simulations,
    parallel_sweep,
)

JOBS_LADDER = (1, 2, 4)

#: Replica up-probability when drawing benchmark live sets.
LIVE_P = 0.9


# ----------------------------------------------------------------------
# runner scaling workloads
# ----------------------------------------------------------------------


def _sweep_workload(smoke: bool):
    sizes = (7, 15, 31) if smoke else (7, 15, 31, 63, 81, 127, 243, 255)
    quantities = (
        ("read_cost", "write_cost") if smoke
        else ("read_cost", "write_cost", "read_load", "write_load")
    )

    def run(jobs: int):
        return parallel_sweep(quantities, sizes=sizes, jobs=jobs, size_chunk=1)

    return run


def _availability_workload(smoke: bool):
    samples = 60_000 if smoke else 400_000
    chunk = 5_000 if smoke else 25_000
    ref = ("tree", "1-3-5")

    def run(jobs: int):
        return (
            parallel_availability(
                ref, 0.85, "read", samples=samples, seed=7, jobs=jobs,
                chunk=chunk,
            ),
            parallel_availability(
                ref, 0.85, "write", samples=samples, seed=7, jobs=jobs,
                chunk=chunk,
            ),
        )

    return run


def _simulation_workload(smoke: bool):
    params = SimParams(
        spec="1-3-5", operations=150 if smoke else 500, p=0.9, seed=11
    )
    repeats = 4 if smoke else 8

    def run(jobs: int):
        monitors = parallel_simulations(params, repeats, jobs=jobs)
        return [
            (m.reads, m.writes, m.outcomes) for m in monitors
        ]

    return run


def time_workload(run, jobs_ladder=JOBS_LADDER) -> dict:
    """Wall-clock the workload per job count; verify bit-identical results."""
    timings: dict[str, float] = {}
    baseline = None
    identical = True
    for jobs in jobs_ladder:
        start = time.perf_counter()
        result = run(jobs)
        timings[f"seconds_jobs_{jobs}"] = round(
            time.perf_counter() - start, 4
        )
        if baseline is None:
            baseline = result
        elif result != baseline:
            identical = False
    serial = timings[f"seconds_jobs_{jobs_ladder[0]}"]
    report = dict(timings)
    for jobs in jobs_ladder[1:]:
        elapsed = timings[f"seconds_jobs_{jobs}"]
        report[f"speedup_jobs_{jobs}"] = (
            round(serial / elapsed, 2) if elapsed else float("inf")
        )
    report["bit_identical"] = identical
    return report


# ----------------------------------------------------------------------
# selection fast path
# ----------------------------------------------------------------------


def _draw_live_sets(
    universe: tuple[int, ...], epochs: int, seed: int
) -> list[tuple[int, ...]]:
    rng = random.Random(seed)
    return [
        tuple(sid for sid in universe if rng.random() < LIVE_P)
        for _ in range(epochs)
    ]


def selection_case(
    name: str, system, op: str, epochs: int, ops_per_epoch: int,
    repeat: int = 3,
) -> Case:
    """Reference-vs-index selection over the same live-set/RNG schedule.

    Each epoch fixes one live set and selects ``ops_per_epoch`` quorums
    from it — the simulator's access pattern, which is what makes the
    index's per-(op, live-mask) memoisation pay off.
    """
    universe = tuple(sorted(system.universe))
    quorums = tuple(system.materialise(op, 200_000))
    # Size the index for the system under test (majority at n = 15 has
    # C(15, 8) = 6435 read quorums, above the coordinator's default guard);
    # the bench measures the packed path, not the fallback.
    max_quorums = max(len(quorums), 1)
    live_sets = _draw_live_sets(universe, epochs, seed=97)

    def reference():
        rng = random.Random(1234)
        picks = []
        for live in live_sets:
            for _ in range(ops_per_epoch):
                picks.append(select_uniform_reference(quorums, live, rng))
        return picks

    def kernel():
        rng = random.Random(1234)
        index = SelectionIndex(system, max_quorums=max_quorums)
        picks = []
        for live in live_sets:
            for _ in range(ops_per_epoch):
                picks.append(index.select(op, live, rng))
        return picks

    return Case(
        name=f"selection/{name}/{op}/epochs={epochs}x{ops_per_epoch}",
        reference=reference,
        kernel=kernel,
        repeat=repeat,
    )


def selection_cases(smoke: bool) -> list[Case]:
    epochs = 40 if smoke else 200
    ops = 20 if smoke else 50
    # Majority's quorum count explodes combinatorially; the smoke tier
    # keeps the reference side affordable with C(13, 7) = 1716 quorums.
    majority_n = 13 if smoke else 15
    arbitrary = ArbitraryProtocol(from_spec("1-3-5-7"))
    cases = [
        selection_case("arbitrary/1-3-5-7", arbitrary, "read", epochs, ops),
        selection_case("arbitrary/1-3-5-7", arbitrary, "write", epochs, ops),
        # The majority reference costs ~quorum-count per selection; the
        # full-tier case keeps a single timing run (perf_harness treats
        # repeat=1 as that one measurement).
        selection_case(
            f"majority/n={majority_n}", quorum_system("majority", majority_n),
            "read", epochs if smoke else 100, ops,
            repeat=3 if smoke else 1,
        ),
        selection_case(
            "rowa/n=24", quorum_system("rowa", 24), "read", epochs, ops
        ),
    ]
    return cases


# ----------------------------------------------------------------------
# suite
# ----------------------------------------------------------------------


def summarise(scaling: dict, selection_results: list[dict]) -> dict:
    speedups = sorted(
        result["speedup"] for result in selection_results
    )
    return {
        "all_bit_identical": all(
            report["bit_identical"] for report in scaling.values()
        ),
        "selection_values_agree": all(
            result["values_agree"] for result in selection_results
        ),
        "selection_median_speedup": speedups[len(speedups) // 2],
        "selection_min_speedup": speedups[0],
        "mc_speedup_jobs_2": scaling["availability"]["speedup_jobs_2"],
        "mc_speedup_jobs_4": scaling["availability"]["speedup_jobs_4"],
        "cpu_count": os.cpu_count(),
    }


def run(smoke: bool, out: str | None = None) -> dict:
    workloads = {
        "sweep": _sweep_workload(smoke),
        "availability": _availability_workload(smoke),
        "simulations": _simulation_workload(smoke),
    }
    scaling: dict[str, dict] = {}
    for name, workload in workloads.items():
        scaling[name] = time_workload(workload)
        print(f"runner/{name:<14} {scaling[name]}")
    selection_results = run_suite(selection_cases(smoke))
    summary = summarise(scaling, selection_results)
    results = [
        {"case": f"runner/{name}", **report}
        for name, report in scaling.items()
    ] + selection_results
    bench = "runner_smoke" if smoke and out else "runner"
    path = write_bench_json(bench, results, summary, out=out)
    print(f"\nwrote {path}")
    print(f"summary: {summary}")
    assert summary["all_bit_identical"], "parallel results diverged from serial"
    assert summary["selection_values_agree"], "selection kernel/reference mismatch"
    assert summary["selection_min_speedup"] >= 1.0, (
        "selection index slower than the frozenset reference"
    )
    cpus = os.cpu_count() or 1
    if smoke and cpus >= 2:
        # The CI gate: with real cores available, two workers must beat
        # 1.2x serial on the Monte-Carlo smoke workload.
        assert summary["mc_speedup_jobs_2"] >= 1.2, (
            f"--jobs 2 speedup {summary['mc_speedup_jobs_2']} < 1.2x "
            f"on a {cpus}-CPU host"
        )
    return summary


def test_runner_scaling_smoke(emit):
    """CI smoke: bit-identity + selection agreement (+ speedup gate on SMP).

    Writes to a ``_smoke`` JSON so a local pytest run never clobbers the
    recorded full-run trajectory in ``BENCH_runner.json``.
    """
    from benchmarks.perf_harness import RESULTS_DIR

    summary = run(
        smoke=True, out=str(RESULTS_DIR / "BENCH_runner_smoke.json")
    )
    emit(
        "runner_scaling_smoke",
        "runner scaling smoke: "
        f"bit-identical {summary['all_bit_identical']}, "
        f"selection median speedup {summary['selection_median_speedup']:.1f}x, "
        f"mc --jobs 2 speedup {summary['mc_speedup_jobs_2']:.2f}x "
        f"on {summary['cpu_count']} CPU(s)",
    )
    assert summary["all_bit_identical"]
    assert summary["selection_values_agree"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workloads only (CI runner-job tier)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default benchmarks/results/BENCH_runner.json)",
    )
    arguments = parser.parse_args()
    run(smoke=arguments.smoke, out=arguments.out)
