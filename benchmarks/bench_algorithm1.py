"""Section 3.3: Algorithm 1 claims and asymptotic availability limits.

Checks, for Algorithm-1 trees over a sweep of n > 64:

* write load exactly ``1/floor(sqrt(n))``, read load exactly ``1/4``;
* average write cost and read cost both ~ ``sqrt(n)``;
* write cost minimum 4 and maximum ``~(n-28)/(sqrt(n)-7)``;
* availability limits: ``lim RD_avail = (1-(1-p)^4)^7`` and
  ``lim WR_avail = 1-(1-p^4)^7`` as n grows (0.5 < p < 1);
* for p > 0.8 both limits are ~1 (the paper's closing observation).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.tables import format_table
from repro.core import (
    algorithm_1,
    analyse,
    limit_read_availability,
    limit_write_availability,
)

SIZES = (65, 100, 144, 225, 400, 625, 1024, 2500, 10_000)


@pytest.fixture(scope="module")
def metrics_by_n():
    return {n: analyse(algorithm_1(n), p=0.7) for n in SIZES}


def test_algorithm1_table(metrics_by_n, emit, benchmark):
    benchmark(lambda: [analyse(algorithm_1(n), p=0.7) for n in SIZES])
    rows = []
    for n, m in metrics_by_n.items():
        rows.append([
            n, m.num_physical_levels, m.read_cost, round(m.write_cost_avg, 2),
            round(m.read_load, 4), round(m.write_load, 4),
            round(m.read_availability, 4), round(m.write_availability, 4),
        ])
    emit(
        "algorithm1_sweep",
        format_table(
            ["n", "|K_phy|", "RD_cost", "WR_cost", "L_RD", "L_WR",
             "RD_avail", "WR_avail"],
            rows,
            title="Algorithm 1 trees at p = 0.7",
        ),
    )


def test_write_load_is_inverse_sqrt_n(metrics_by_n, benchmark):
    benchmark(algorithm_1, SIZES[-1])
    for n, m in metrics_by_n.items():
        assert m.write_load == pytest.approx(1.0 / math.isqrt(n))


def test_read_load_is_quarter(metrics_by_n):
    for m in metrics_by_n.values():
        assert m.read_load == pytest.approx(0.25)


def test_costs_are_sqrt_n(metrics_by_n):
    for n, m in metrics_by_n.items():
        assert m.read_cost == math.isqrt(n)
        assert m.write_cost_avg == pytest.approx(n / math.isqrt(n))
        assert m.write_cost_min == 4
        expected_max = math.ceil((n - 28) / (math.isqrt(n) - 7))
        assert m.write_cost_max == pytest.approx(expected_max, abs=1)


def test_availability_limits(emit, benchmark):
    rows = []
    for p in (0.55, 0.65, 0.7, 0.8, 0.9, 0.95):
        m = analyse(algorithm_1(10_000), p=p)
        lim_rd = limit_read_availability(p)
        lim_wr = limit_write_availability(p)
        rows.append([
            p, round(m.read_availability, 4), round(lim_rd, 4),
            round(m.write_availability, 4), round(lim_wr, 4),
        ])
        # at n = 10000 the finite-n availability is essentially at its limit
        assert m.read_availability == pytest.approx(lim_rd, abs=0.02)
        assert m.write_availability == pytest.approx(lim_wr, abs=0.02)
    benchmark(limit_write_availability, 0.9)
    emit(
        "algorithm1_limits",
        format_table(
            ["p", "RD_avail(n=10^4)", "lim RD_avail",
             "WR_avail(n=10^4)", "lim WR_avail"],
            rows,
            title="Section 3.3 asymptotic availabilities of Algorithm 1",
        ),
    )


def test_high_p_gives_availability_one(benchmark):
    benchmark(limit_read_availability, 0.85)
    for p in (0.85, 0.9, 0.95):
        assert limit_read_availability(p) > 0.98
        assert limit_write_availability(p) > 0.98
