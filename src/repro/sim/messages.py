"""Typed messages exchanged between sites.

The coordinator/replica protocol is deliberately small:

* ``ReadRequest`` / ``ReadReply`` — fetch a key's value and timestamp;
* ``VersionRequest`` / ``VersionReply`` — fetch only the timestamp
  (the "obtain the highest version number" phase of a write);
* ``PrepareMessage`` / ``VoteMessage`` / ``CommitMessage`` /
  ``AbortMessage`` / ``AckMessage`` — two-phase commit for writes
  (Section 2.2: transactions with writes run 2PC across participants).

Every message carries the source and destination SIDs; clients and the
coordinator use negative SIDs so they can never collide with replicas.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.sim.replica import Timestamp

_MESSAGE_IDS = itertools.count()


@dataclass(frozen=True, slots=True)
class Message:
    """Base class: addressing plus a unique id for tracing."""

    src: int
    dst: int
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_IDS), init=False)


@dataclass(frozen=True, slots=True)
class ReadRequest(Message):
    """Ask a replica for its current value+timestamp of ``key``."""

    key: Any = None
    request_id: int = 0


@dataclass(frozen=True, slots=True)
class ReadReply(Message):
    """A replica's value+timestamp answer to a :class:`ReadRequest`."""

    key: Any = None
    request_id: int = 0
    value: Any = None
    timestamp: Timestamp = Timestamp(0, -1)


@dataclass(frozen=True, slots=True)
class VersionRequest(Message):
    """Ask a replica for only the timestamp of ``key``."""

    key: Any = None
    request_id: int = 0


@dataclass(frozen=True, slots=True)
class VersionReply(Message):
    """A replica's timestamp answer to a :class:`VersionRequest`."""

    key: Any = None
    request_id: int = 0
    timestamp: Timestamp = Timestamp(0, -1)


@dataclass(frozen=True, slots=True)
class PrepareMessage(Message):
    """2PC phase 1: ask a participant to prepare ``key := value``."""

    txid: int = 0
    key: Any = None
    value: Any = None
    timestamp: Timestamp = Timestamp(0, -1)


@dataclass(frozen=True, slots=True)
class VoteMessage(Message):
    """2PC phase 1 answer: the participant's commit vote."""

    txid: int = 0
    vote_commit: bool = True


@dataclass(frozen=True, slots=True)
class CommitMessage(Message):
    """2PC phase 2: apply the prepared write."""

    txid: int = 0


@dataclass(frozen=True, slots=True)
class AbortMessage(Message):
    """2PC phase 2: discard the prepared write."""

    txid: int = 0


@dataclass(frozen=True, slots=True)
class AckMessage(Message):
    """Participant acknowledgement of a commit/abort decision."""

    txid: int = 0
    committed: bool = True


@dataclass(frozen=True, slots=True)
class DecisionRequest(Message):
    """2PC termination protocol: a recovered participant asks the
    coordinator for the outcome of an in-doubt transaction."""

    txid: int = 0
