"""Transactions: partially ordered sets of read and write operations.

Section 2.2: users interact with sites via transactions that execute
atomically (commit or abort at all participants); transactions containing
writes finish with two-phase commit, which :mod:`repro.sim.coordinator`
drives.  This module holds the passive data model plus a monotonic
transaction-id source.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any


class OperationType(enum.Enum):
    """Read or write."""

    READ = "read"
    WRITE = "write"


class TransactionStatus(enum.Enum):
    """Lifecycle of a transaction."""

    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class Operation:
    """One read or write of a single key."""

    op_type: OperationType
    key: Any
    value: Any = None

    @classmethod
    def read(cls, key: Any) -> "Operation":
        """A read of ``key``."""
        return cls(op_type=OperationType.READ, key=key)

    @classmethod
    def write(cls, key: Any, value: Any) -> "Operation":
        """A write of ``value`` to ``key``."""
        return cls(op_type=OperationType.WRITE, key=key, value=value)


@dataclass
class Transaction:
    """A client transaction: an ordered list of operations.

    The list order is one linear extension of the partial order the paper
    allows; operations on distinct keys could run concurrently without
    changing any result in this library.
    """

    txid: int
    operations: list[Operation] = field(default_factory=list)
    status: TransactionStatus = TransactionStatus.PENDING

    @property
    def has_writes(self) -> bool:
        """True iff the transaction needs 2PC at commit."""
        return any(
            op.op_type is OperationType.WRITE for op in self.operations
        )

    def keys(self) -> list:
        """All distinct keys touched, in first-use order."""
        seen = []
        for op in self.operations:
            if op.key not in seen:
                seen.append(op.key)
        return seen


class TransactionIdSource:
    """Monotonic transaction-id allocator shared by all clients."""

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def next_id(self) -> int:
        """A fresh, unique transaction id."""
        return next(self._counter)
