"""Micro-benchmarks of the protocol's hot paths.

Not a paper figure — these time the operations a deployment performs per
request (quorum selection, failure fallback, metric evaluation) so that
regressions in the core library are caught.
"""

from __future__ import annotations

import random

from repro.core import algorithm_1, analyse, recommended_tree
from repro.core.protocol import ArbitraryProtocol
from repro.core.tuning import recommend
from repro.protocols.hqc import HQCProtocol
from repro.protocols.tree_quorum import TreeQuorumProtocol
from repro.protocols.zoo import quorum_systems
from repro.quorums.system import CachedQuorumSystem


def test_select_read_quorum_speed(benchmark):
    protocol = ArbitraryProtocol(algorithm_1(1024))
    rng = random.Random(0)
    quorum = benchmark(protocol.select_read_quorum, lambda sid: True, rng)
    assert quorum is not None and len(quorum) == 32


def test_select_write_quorum_speed(benchmark):
    protocol = ArbitraryProtocol(algorithm_1(1024))
    rng = random.Random(0)
    quorum = benchmark(protocol.select_write_quorum, lambda sid: True, rng)
    assert quorum is not None


def test_select_read_quorum_under_failures(benchmark):
    protocol = ArbitraryProtocol(algorithm_1(1024))
    rng = random.Random(0)
    dead = set(rng.sample(range(1024), 100))
    live = lambda sid: sid not in dead  # noqa: E731
    quorum = benchmark(protocol.select_read_quorum, live, random.Random(1))
    assert quorum is None or not (quorum & dead)


def test_tree_construction_speed(benchmark):
    tree = benchmark(algorithm_1, 10_000)
    assert tree.n == 10_000


def test_analyse_speed(benchmark):
    tree = recommended_tree(4096)
    metrics = benchmark(analyse, tree, 0.9)
    assert metrics.n == 4096


def test_tuning_advisor_speed(benchmark):
    result = benchmark(recommend, 64, 0.9, 0.8)
    assert result.tree.n == 64


def test_tree_quorum_fallback_speed(benchmark):
    protocol = TreeQuorumProtocol(1023)
    rng = random.Random(0)
    dead = set(rng.sample(range(1023), 100))
    live = lambda sid: sid not in dead  # noqa: E731
    quorum = benchmark(protocol.construct_quorum, live, random.Random(1))
    if quorum is not None:
        assert not (quorum & dead)


def test_hqc_construction_speed(benchmark):
    protocol = HQCProtocol(729)
    quorum = benchmark(protocol.construct_quorum, lambda sid: True)
    assert quorum is not None and len(quorum) == 2**6


def test_zoo_selection_round_speed(benchmark):
    """One failure-aware selection per zoo protocol via the unified API."""
    systems = quorum_systems(31)
    rng = random.Random(0)
    dead = set(rng.sample(range(31), 3))

    def round_trip():
        quorums = {}
        for name, system in systems.items():
            live = lambda sid: sid not in dead  # noqa: E731
            quorums[name] = (
                system.select_read_quorum(live, random.Random(1)),
                system.select_write_quorum(live, random.Random(2)),
            )
        return quorums

    quorums = benchmark(round_trip)
    for name, (read, write) in quorums.items():
        if read is not None:
            assert not (read & dead), name
        if write is not None:
            assert not (write & dead), name


def test_cached_system_memoises_analyses(benchmark):
    """Repeated load()/availability() calls reuse one enumeration per op."""
    system = CachedQuorumSystem(TreeQuorumProtocol(15))

    def analyses():
        return (
            system.load("read"),
            system.load("write"),
            system.availability(0.9, "read"),
            system.availability(0.9, "write"),
        )

    first = analyses()
    enumerations_after_warmup = system.enumerations
    results = benchmark(analyses)
    assert results == first
    # reads and writes share one quorum set here, but the wrapper caches
    # per-op: at most two enumerations ever happen, however often the
    # benchmark loop re-queried the analyses
    assert system.enumerations == enumerations_after_warmup
