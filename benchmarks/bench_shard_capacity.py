"""Capacity scaling of the sharded keyspace: ops/sec vs shard count.

The paper's protocol caps a single replicated object's throughput at the
quorum system's capacity (1/load, Naor & Wool); a sharded keyspace buys
capacity by partitioning keys across independent replica groups.  This
benchmark measures that directly: one open-loop Zipf/Poisson client
stream at a fixed **aggregate** arrival rate is routed over 1, 4 and 16
shards (each a 1-3-5 tree replica group with per-replica service time),
and the JSON records simulated throughput and latency percentiles per
shard count.

At 1 shard the offered load exceeds the group's service capacity, so the
run stretches far past the arrival horizon (throughput well below the
arrival rate, queueing-dominated p99).  At 4 and 16 shards the same
stream is spread thin enough that throughput converges to the arrival
rate and p99 collapses to quorum round-trip latency.

Also asserts the parallel-runner contract on sharded runs: a
``--jobs 2`` repeated-seed fan-out folds to results bit-identical to the
serial loop.

Two tiers:

* ``--smoke`` (and the pytest test, used by the CI shard job): a short
  stream, finishes in seconds, still saturates the 1-shard group;
* the default full run records the trajectory cited in EXPERIMENTS.md.

Run directly::

    PYTHONPATH=src python benchmarks/bench_shard_capacity.py [--smoke] [--out P]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    from benchmarks.perf_harness import write_bench_json
except ImportError:  # direct `python benchmarks/bench_shard_capacity.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from perf_harness import write_bench_json

from repro.runner import (
    ShardParams,
    merge_sharded_monitors,
    parallel_shard_simulations,
)
from repro.shard import ShardedConfig, simulate_sharded
from repro.sim import WorkloadSpec

SHARD_COUNTS = (1, 4, 16)

#: Aggregate open-loop arrival rate (ops per simulated time unit).  With
#: SERVICE_TIME below, one 1-3-5 replica group saturates well under this
#: rate; sixteen groups serve it with headroom.
RATE = 4.0

#: Per-message replica processing time — the resource that runs out.
#: Every operation touches a shard's root replica (the 1-3-5 read quorum
#: is the root alone), so at the aggregate rate a single group's root is
#: far past saturation while a sixteenth of the stream leaves it mostly
#: idle.
SERVICE_TIME = 1.0

#: Zipf skew.  Deliberately below ~1: at s >= 1.1 the single hottest key
#: carries >10% of the stream and its *per-key lock* becomes the
#: bottleneck — which no shard count can fix, because one key lives on
#: exactly one shard.  At 0.9 the stream is still strongly skewed but the
#: binding constraint is replica service capacity, the resource sharding
#: actually multiplies.
ZIPF_S = 0.9


#: The hot-key ceiling case: at this skew the hottest key carries >10% of
#: the stream and its per-key lock serialises throughput on whichever
#: shard owns it — the regime sharding cannot fix and read leases can.
HOT_ZIPF_S = 1.1


def _workload(smoke: bool, zipf_s: float = ZIPF_S) -> WorkloadSpec:
    return WorkloadSpec(
        operations=1200 if smoke else 8000,
        read_fraction=0.7,
        keys=20_000 if smoke else 200_000,
        arrival="poisson",
        rate=RATE,
        zipf_s=zipf_s,
    )


def _config(
    shards: int,
    smoke: bool,
    zipf_s: float = ZIPF_S,
    leases: bool = False,
) -> ShardedConfig:
    return ShardedConfig(
        workload=_workload(smoke, zipf_s=zipf_s),
        shards=shards,
        systems=(("tree", "1-3-5"),),
        router="hash",
        clients_per_shard=2,
        service_time=SERVICE_TIME,
        timeout=400.0,  # queueing delay must not read as failure
        seed=2024,
        leases=leases,
    )


def capacity_point(shards: int, smoke: bool) -> dict:
    """One shard count: run the stream, report throughput + percentiles."""
    started = time.perf_counter()
    result = simulate_sharded(_config(shards, smoke))
    wall = time.perf_counter() - started
    summary = result.summary()
    reads = result.monitor.reads
    writes = result.monitor.writes
    per_shard = [m.total_operations for m in result.monitor.shards]
    return {
        "case": f"capacity/shards={shards}",
        "shards": shards,
        "arrival_rate": RATE,
        "ops_per_sec": round(summary["ops_per_sec"], 4),
        "duration": round(summary["duration"], 2),
        "read_p50": round(reads.latency_percentile(0.5), 3),
        "read_p99": round(reads.latency_percentile(0.99), 3),
        "write_p50": round(writes.latency_percentile(0.5), 3),
        "write_p99": round(writes.latency_percentile(0.99), 3),
        "read_availability": round(summary["read_availability"], 4),
        "write_availability": round(summary["write_availability"], 4),
        "largest_shard_ops": max(per_shard),
        "smallest_shard_ops": min(per_shard),
        "wall_seconds": round(wall, 3),
    }


def hot_key_point(leases: bool, smoke: bool) -> dict:
    """The Zipf s=1.1 ceiling at 16 shards, with and without read leases.

    With leases off this reproduces the PR 6 ceiling: the hottest key's
    lock serialises its shard regardless of shard count.  With leases on,
    hot reads are served from the write-through lease instead of queueing
    on the lock, so throughput and read tail recover.
    """
    result = simulate_sharded(
        _config(16, smoke, zipf_s=HOT_ZIPF_S, leases=leases)
    )
    summary = result.summary()
    reads = result.monitor.reads
    return {
        "case": f"hot_key/zipf={HOT_ZIPF_S}/leases={'on' if leases else 'off'}",
        "shards": 16,
        "zipf_s": HOT_ZIPF_S,
        "leases": leases,
        "ops_per_sec": round(summary["ops_per_sec"], 4),
        "duration": round(summary["duration"], 2),
        "read_p50": round(reads.latency_percentile(0.5), 3),
        "read_p99": round(reads.latency_percentile(0.99), 3),
        "read_availability": round(summary["read_availability"], 4),
        "write_availability": round(summary["write_availability"], 4),
    }


def jobs_bit_identity(smoke: bool) -> dict:
    """Serial vs ``--jobs 2`` repeated-seed sharded fan-out must agree."""
    params = ShardParams(
        shards=4,
        operations=300 if smoke else 1000,
        keys=4096,
        zipf_s=1.0,
        rate=1.0,
        p=0.9,
        seed=77,
    )
    repeats = 3
    started = time.perf_counter()
    serial = merge_sharded_monitors(
        parallel_shard_simulations(params, repeats, jobs=1)
    )
    serial_seconds = time.perf_counter() - started
    started = time.perf_counter()
    fanned = merge_sharded_monitors(
        parallel_shard_simulations(params, repeats, jobs=2)
    )
    fanned_seconds = time.perf_counter() - started
    identical = (
        serial.summary() == fanned.summary()
        and serial.per_shard_summaries() == fanned.per_shard_summaries()
    )
    return {
        "case": "runner/shard_jobs_bit_identity",
        "repeats": repeats,
        "bit_identical": identical,
        "seconds_jobs_1": round(serial_seconds, 4),
        "seconds_jobs_2": round(fanned_seconds, 4),
    }


def run(smoke: bool, out: str | None = None) -> dict:
    points = []
    for shards in SHARD_COUNTS:
        point = capacity_point(shards, smoke)
        points.append(point)
        print(
            f"shards={shards:>2}  ops/sec {point['ops_per_sec']:>7.4f}  "
            f"rd p50/p99 {point['read_p50']:>6.2f}/{point['read_p99']:>8.2f}  "
            f"wr p50/p99 {point['write_p50']:>6.2f}/{point['write_p99']:>8.2f}"
        )
    hot_unleased = hot_key_point(leases=False, smoke=smoke)
    hot_leased = hot_key_point(leases=True, smoke=smoke)
    for point in (hot_unleased, hot_leased):
        print(
            f"{point['case']:<28}  ops/sec {point['ops_per_sec']:>7.4f}  "
            f"rd p50/p99 {point['read_p50']:>6.2f}/{point['read_p99']:>8.2f}"
        )
    identity = jobs_bit_identity(smoke)
    print(f"jobs bit-identity: {identity['bit_identical']}")
    by_shards = {point["shards"]: point for point in points}
    summary = {
        "arrival_rate": RATE,
        "ops_per_sec_1": by_shards[1]["ops_per_sec"],
        "ops_per_sec_4": by_shards[4]["ops_per_sec"],
        "ops_per_sec_16": by_shards[16]["ops_per_sec"],
        "capacity_speedup_16_vs_1": round(
            by_shards[16]["ops_per_sec"] / by_shards[1]["ops_per_sec"], 2
        ),
        "p99_read_1": by_shards[1]["read_p99"],
        "p99_read_16": by_shards[16]["read_p99"],
        "hot_key_ops_per_sec_unleased": hot_unleased["ops_per_sec"],
        "hot_key_ops_per_sec_leased": hot_leased["ops_per_sec"],
        "hot_key_lease_lift": round(
            hot_leased["ops_per_sec"] / hot_unleased["ops_per_sec"], 2
        ),
        "hot_key_read_p99_unleased": hot_unleased["read_p99"],
        "hot_key_read_p99_leased": hot_leased["read_p99"],
        "jobs_bit_identical": identity["bit_identical"],
    }
    bench = "shard_smoke" if smoke and out else "shard"
    path = write_bench_json(
        bench, points + [hot_unleased, hot_leased, identity], summary, out=out
    )
    print(f"\nwrote {path}")
    print(f"summary: {summary}")
    assert summary["jobs_bit_identical"], (
        "sharded --jobs 2 fan-out diverged from the serial fold"
    )
    # The capacity claim itself: sharding must lift saturated throughput
    # and collapse tail latency.
    assert summary["ops_per_sec_16"] > 1.5 * summary["ops_per_sec_1"], (
        "16 shards did not outscale 1 shard"
    )
    assert summary["p99_read_16"] < summary["p99_read_1"], (
        "sharding did not reduce read tail latency"
    )
    # The hot-key ceiling must yield to leases where shard count could
    # not: throughput up, read tail down, at the same s=1.1 skew.
    assert summary["hot_key_lease_lift"] > 1.0, (
        "read leases did not lift the Zipf 1.1 hot-key throughput"
    )
    assert (
        summary["hot_key_read_p99_leased"]
        < summary["hot_key_read_p99_unleased"]
    ), "read leases did not reduce the hot-key read tail"
    return summary


def test_shard_capacity_smoke(emit):
    """CI smoke: capacity scaling + sharded jobs bit-identity.

    Writes to a ``_smoke`` JSON so a local pytest run never clobbers the
    recorded full-run trajectory in ``BENCH_shard.json``.
    """
    from benchmarks.perf_harness import RESULTS_DIR

    summary = run(
        smoke=True, out=str(RESULTS_DIR / "BENCH_shard_smoke.json")
    )
    emit(
        "shard_capacity_smoke",
        "shard capacity smoke: "
        f"ops/sec {summary['ops_per_sec_1']:.2f} -> "
        f"{summary['ops_per_sec_16']:.2f} over 1 -> 16 shards "
        f"({summary['capacity_speedup_16_vs_1']:.1f}x), "
        f"jobs bit-identical {summary['jobs_bit_identical']}",
    )
    assert summary["jobs_bit_identical"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="short stream only (CI shard-job tier)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default benchmarks/results/BENCH_shard.json)",
    )
    args = parser.parse_args()
    run(smoke=args.smoke, out=args.out)
