"""Coordinator RNG isolation: adding a client never perturbs another's.

``build_simulation`` derives the network, workload and coordinator streams
in a fixed order, with coordinators drawing their seeds from a *dedicated*
master stream.  The regression these tests pin: client k's quorum choices
(and the shared workload/network streams) are identical in every run that
has at least k clients — a seed-sharing audit finding, since previously
each added coordinator shifted every later derivation.
"""

import random
from dataclasses import replace

from repro.core import from_spec
from repro.sim import SimulationConfig, WorkloadSpec, simulate
from repro.sim.engine import build_simulation


def _config(clients: int, operations: int = 60) -> SimulationConfig:
    return SimulationConfig(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(operations=operations, read_fraction=0.5),
        clients=clients,
        seed=17,
    )


def _coordinator_rng_states(config: SimulationConfig) -> list[tuple]:
    _, workload, _, _, _ = build_simulation(config)
    return [
        coordinator._rng.getstate() for coordinator in workload.coordinators
    ]


def test_client_k_stream_stable_as_clients_grow():
    one = _coordinator_rng_states(_config(clients=1))
    three = _coordinator_rng_states(_config(clients=3))
    five = _coordinator_rng_states(_config(clients=5))
    assert three[0] == one[0]
    assert five[:3] == three
    # Streams are pairwise distinct: clients never share a seed.
    assert len({state for state in five}) == 5


def test_workload_and_network_streams_ignore_client_count():
    for clients in (1, 2, 4):
        _, workload, _, network, _ = build_simulation(_config(clients=clients))
        baseline = build_simulation(_config(clients=1))
        assert workload._rng.getstate() == baseline[1]._rng.getstate()
        assert network._rng.getstate() == baseline[3]._rng.getstate()


def test_multi_client_simulation_is_deterministic():
    first = simulate(_config(clients=3))
    second = simulate(_config(clients=3))
    assert first.monitor.outcomes == second.monitor.outcomes
    assert first.monitor.summary() == second.monitor.summary()
    assert first.duration == second.duration


def test_coordinator_seeds_come_from_dedicated_master():
    """The exact derivation order is part of the determinism contract."""
    config = _config(clients=2)
    rng = random.Random(config.seed)
    rng.getrandbits(64)  # network
    rng.getrandbits(64)  # workload
    coordinator_master = random.Random(rng.getrandbits(64))
    expected = [
        random.Random(coordinator_master.getrandbits(64)).getstate()
        for _ in range(2)
    ]
    assert _coordinator_rng_states(config) == expected


def test_workload_split_across_clients_matches_operation_count():
    config = replace(_config(clients=2), workload=WorkloadSpec(operations=50))
    result = simulate(config)
    assert result.monitor.total_operations == 50
