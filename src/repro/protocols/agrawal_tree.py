"""The original tree protocol for replicated data — Agrawal & El Abbadi [1].

(VLDB 1990; not to be confused with the 1991 tree *quorum* mutual-exclusion
protocol in :mod:`repro.protocols.tree_quorum`.)  Replicas are the nodes of
a complete tree in which every node has ``2d + 1`` children:

* a **read quorum** is the root alone — or, recursively, read quorums of a
  majority (``d + 1``) of a missing node's children.  Reads cost 1 in the
  best case and ``(d+1)^h`` in the worst (a majority cascade to the leaves);
* a **write quorum** is the root plus, recursively, write quorums of
  ``d + 1`` of every chosen node's children — i.e. a full majority spine,
  costing ``((d+1)^(h+1) - 1) / d`` always.

The paper's introduction quotes exactly these costs and points out the two
structural weaknesses the arbitrary protocol fixes: the cost-1 read strategy
routes *everything* through the root (load 1), and the root is a member of
every write quorum, so a root crash blocks all writes.

SIDs are assigned in breadth-first order: the children of node ``v`` are
``v * (2d+1) + 1 .. v * (2d+1) + 2d+1``.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from itertools import combinations

from repro.protocols.base import ProtocolModel, check_probability
from repro.quorums.liveness import Liveness, LivenessOracle, as_oracle

__all__ = ["AgrawalTreeProtocol", "LivenessOracle", "complete_tree_size"]


def complete_tree_size(branching: int, height: int) -> int:
    """Number of nodes of the complete tree: ``(b^(h+1) - 1) / (b - 1)``."""
    return (branching ** (height + 1) - 1) // (branching - 1)


class AgrawalTreeProtocol(ProtocolModel):
    """The [1] tree protocol on a complete ``(2d+1)``-ary tree of height h.

    Parameters
    ----------
    d:
        Majority parameter: every node has ``2d + 1`` children and a
        majority is ``d + 1`` of them (``d >= 0``; the degenerate ``d = 0``
        gives a unary chain where read = any node is *not* intended — use
        ``d >= 1``).
    height:
        Tree height ``h >= 0``.
    """

    name = "AE-Tree"

    #: Recursive majority-spine preference is not uniform over the
    #: enumerated quorums — keep the structural path in the simulator.
    uniform_selection = False

    def __init__(self, d: int = 1, height: int = 2) -> None:
        if d < 1:
            raise ValueError("the majority parameter d must be at least 1")
        if height < 0:
            raise ValueError("height must be non-negative")
        self._d = d
        self._height = height
        self._branching = 2 * d + 1
        super().__init__(complete_tree_size(self._branching, height))

    @property
    def d(self) -> int:
        """The majority parameter (children per node = 2d + 1)."""
        return self._d

    @property
    def height(self) -> int:
        """Tree height."""
        return self._height

    @property
    def branching(self) -> int:
        """Children per interior node: ``2d + 1``."""
        return self._branching

    def children(self, sid: int) -> tuple[int, ...]:
        """Child SIDs of a node (empty for leaves)."""
        first = sid * self._branching + 1
        if first >= self.n:
            return ()
        return tuple(range(first, first + self._branching))

    def _majority(self) -> int:
        return self._d + 1

    # ------------------------------------------------------------------
    # quorum construction
    # ------------------------------------------------------------------

    def construct_read_quorum(
        self,
        live: Liveness,
        rng: random.Random | None = None,
    ) -> frozenset[int] | None:
        """Root if live; else majorities of children, recursively."""
        oracle = as_oracle(live)

        def solve(v: int) -> frozenset[int] | None:
            if oracle(v):
                return frozenset({v})
            kids = list(self.children(v))
            if not kids:
                return None
            if rng is not None:
                rng.shuffle(kids)
            parts: list[frozenset[int]] = []
            for child in kids:
                sub = solve(child)
                if sub is not None:
                    parts.append(sub)
                if len(parts) == self._majority():
                    return frozenset().union(*parts)
            return None

        return solve(0)

    def construct_write_quorum(
        self,
        live: Liveness,
        rng: random.Random | None = None,
    ) -> frozenset[int] | None:
        """The live root plus write quorums of a child majority, recursively."""
        oracle = as_oracle(live)

        def solve(v: int) -> frozenset[int] | None:
            if not oracle(v):
                return None
            kids = list(self.children(v))
            if not kids:
                return frozenset({v})
            if rng is not None:
                rng.shuffle(kids)
            parts: list[frozenset[int]] = []
            for child in kids:
                sub = solve(child)
                if sub is not None:
                    parts.append(sub)
                if len(parts) == self._majority():
                    return frozenset({v}).union(*parts)
            return None

        return solve(0)

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Reads use the root-or-child-majorities construction."""
        return self.construct_read_quorum(live, rng)

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Writes use the root-plus-majority-spine construction."""
        return self.construct_write_quorum(live, rng)

    # ------------------------------------------------------------------
    # enumeration (small trees)
    # ------------------------------------------------------------------

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """All minimal read quorums (exponential; small trees only)."""

        def solve(v: int) -> list[frozenset[int]]:
            quorums = [frozenset({v})]
            kids = self.children(v)
            if not kids:
                return quorums
            child_options = [solve(child) for child in kids]
            for subset in combinations(range(len(kids)), self._majority()):
                def expand(index: int, acc: frozenset[int]):
                    if index == len(subset):
                        quorums.append(acc)
                        return
                    for option in child_options[subset[index]]:
                        expand(index + 1, acc | option)
                expand(0, frozenset())
            return quorums

        yield from solve(0)

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """All minimal write quorums (exponential; small trees only)."""

        def solve(v: int) -> list[frozenset[int]]:
            kids = self.children(v)
            if not kids:
                return [frozenset({v})]
            child_options = [solve(child) for child in kids]
            quorums: list[frozenset[int]] = []
            for subset in combinations(range(len(kids)), self._majority()):
                def expand(index: int, acc: frozenset[int]):
                    if index == len(subset):
                        quorums.append(frozenset({v}) | acc)
                        return
                    for option in child_options[subset[index]]:
                        expand(index + 1, acc | option)
                expand(0, frozenset())
            return quorums

        yield from solve(0)

    # ------------------------------------------------------------------
    # analytic quantities (the paper's intro formulas)
    # ------------------------------------------------------------------

    def read_cost_min(self) -> int:
        """Best case: the root alone."""
        return 1

    def read_cost_max(self) -> int:
        """Worst case: a majority cascade to the leaves, ``(d+1)^h``."""
        return (self._d + 1) ** self._height

    def write_cost_exact(self) -> int:
        """Always ``((d+1)^(h+1) - 1) / d`` (the full majority spine)."""
        return ((self._d + 1) ** (self._height + 1) - 1) // self._d

    def read_cost(self) -> float:
        """Failure-free reads touch only the root."""
        return 1.0

    def write_cost(self) -> float:
        """The exact write quorum size."""
        return float(self.write_cost_exact())

    def read_availability(self, p: float) -> float:
        """``R(0) = p``; ``R(h) = p + (1-p) P[>= d+1 subtrees readable]``."""
        check_probability(p)
        value = p
        for _ in range(self._height):
            value = p + (1.0 - p) * _at_least(
                self._branching, self._majority(), value
            )
        return value

    def write_availability(self, p: float) -> float:
        """``W(0) = p``; ``W(h) = p * P[>= d+1 subtrees writable]``.

        Strictly below ``p`` for every h >= 1 — the root-crash weakness the
        paper's introduction highlights.
        """
        check_probability(p)
        value = p
        for _ in range(self._height):
            value = p * _at_least(self._branching, self._majority(), value)
        return value

    def read_load(self) -> float:
        """The cost-1 strategy reads the root every time: load 1."""
        return 1.0

    def write_load(self) -> float:
        """The root is in every write quorum: load 1."""
        return 1.0


def _at_least(n: int, k: int, p: float) -> float:
    """P[Binomial(n, p) >= k]."""
    import math

    return math.fsum(
        math.comb(n, i) * p**i * (1.0 - p) ** (n - i) for i in range(k, n + 1)
    )
