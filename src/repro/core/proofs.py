"""Executable versions of the appendix's load-optimality proofs.

Appendix 6 proves ``L_RD = 1/d`` and ``L_WR = 1/|K_phy|`` by exhibiting,
for each bound, a concrete object:

* **upper bounds** — the uniform strategies of Sections 3.2.1/3.2.2, whose
  induced load is computed and shown to equal the claimed value;
* **lower bounds** — Proposition 2.1 witnesses: for reads, mass ``1/d`` on
  every replica of the thinnest physical level (6.1.2); for writes, mass
  ``1/|K_phy|`` on one replica per physical level (6.2.2).

This module constructs those exact objects for *any* tree and verifies both
halves mechanically — a certificate check, independent of the LP solver in
:mod:`repro.quorums.load` (which the test suite uses to cross-validate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import metrics
from repro.core.protocol import ArbitraryProtocol
from repro.core.tree import ArbitraryTree
from repro.quorums.base import SetSystem
from repro.quorums.load import verify_load_witness
from repro.quorums.strategy import Strategy


@dataclass(frozen=True)
class OptimalityProof:
    """A verified two-sided optimality certificate for one operation."""

    claimed_load: float
    strategy_load: float
    upper_bound_holds: bool
    lower_bound_holds: bool

    @property
    def optimal(self) -> bool:
        """True iff both halves of the proof check out."""
        return self.upper_bound_holds and self.lower_bound_holds


def read_witness(tree: ArbitraryTree) -> dict[int, float]:
    """The 6.1.2 witness: mass ``1/d`` on each replica of a thinnest level."""
    thinnest = min(tree.physical_levels, key=tree.m_phy)
    return {sid: 1.0 / tree.d for sid in tree.replica_ids_at(thinnest)}


def write_witness(tree: ArbitraryTree) -> dict[int, float]:
    """The 6.2.2 witness: ``1/|K_phy|`` on one replica of every level."""
    share = 1.0 / tree.num_physical_levels
    return {
        tree.replica_ids_at(level)[0]: share for level in tree.physical_levels
    }


def prove_read_load(
    tree: ArbitraryTree, max_quorums: int = 100_000
) -> OptimalityProof:
    """Verify ``L_RD = 1/d`` for one tree by certificate checking.

    Materialises the read quorum system (guarded by ``max_quorums``),
    evaluates the uniform strategy's induced load, and validates the
    appendix witness via Proposition 2.1.
    """
    protocol = ArbitraryProtocol(tree)
    if protocol.num_read_quorums > max_quorums:
        raise ValueError(
            f"{protocol.num_read_quorums} read quorums exceed the limit "
            f"{max_quorums}"
        )
    claimed = metrics.read_load(tree)
    system = SetSystem(protocol.read_quorums(), universe=protocol.universe)
    strategy_load = Strategy.uniform(system).induced_load()
    return OptimalityProof(
        claimed_load=claimed,
        strategy_load=strategy_load,
        upper_bound_holds=strategy_load <= claimed + 1e-9,
        lower_bound_holds=verify_load_witness(
            system, read_witness(tree), claimed
        ),
    )


def prove_write_load(tree: ArbitraryTree) -> OptimalityProof:
    """Verify ``L_WR = 1/|K_phy|`` for one tree by certificate checking."""
    protocol = ArbitraryProtocol(tree)
    claimed = metrics.write_load(tree)
    system = SetSystem(protocol.write_quorums(), universe=protocol.universe)
    strategy_load = Strategy.uniform(system).induced_load()
    return OptimalityProof(
        claimed_load=claimed,
        strategy_load=strategy_load,
        upper_bound_holds=strategy_load <= claimed + 1e-9,
        lower_bound_holds=verify_load_witness(
            system, write_witness(tree), claimed
        ),
    )


def prove_lower_bound_for_binary_tree(n: int) -> tuple[float, float, bool]:
    """The paper's §3.3 result: write load ``1/log2(n+1)`` on [2]'s tree,
    strictly below Naor-Wool's ``2/(log2(n+1)+1)`` for the tree-quorum
    protocol itself.

    Returns ``(our_load, naor_wool_load, strictly_lower)`` with the write
    optimality certificate checked along the way.
    """
    from repro.core.builder import unmodified_binary
    from repro.protocols.tree_quorum import TreeQuorumProtocol

    tree = unmodified_binary(n)
    proof = prove_write_load(tree)
    if not proof.optimal:  # pragma: no cover - the certificate always holds
        raise AssertionError("write-load certificate failed")
    ours = proof.claimed_load
    naor_wool = TreeQuorumProtocol(n).optimal_load()
    return ours, naor_wool, ours < naor_wool
