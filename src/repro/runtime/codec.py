"""Wire format: protocol messages as length-prefixed JSON frames.

Each frame is a 4-byte big-endian length followed by a UTF-8 JSON
object.  JSON (not msgpack) because the toolchain ships no third-party
serializer and the protocol's payloads are small scalars; the framing
keeps message boundaries exact either way.

Two frame families share the wire:

* **protocol frames** (``kind: "msg"``) — one of the ten
  :mod:`repro.sim.messages` classes, encoded field-by-field from the
  per-class tables below.  :class:`~repro.sim.replica.Timestamp` values
  travel as a ``[version, sid]`` pair.  ``msg_id`` is *not* carried: it
  exists for tracing only, and each process stamps decoded messages from
  its own counter.
* **control frames** (any other ``kind``) — connection handshakes
  (``hello``) and the KV front-end API (``get`` / ``put`` / ``result`` /
  ``stop``).  These never reach the protocol layer; the transport and
  servers consume them directly.

Keys and values must be JSON-representable (the KV API uses strings);
that is a wire restriction, not a protocol one — the simulator backend
still accepts arbitrary Python objects.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from repro.sim.messages import (
    AbortMessage,
    AckMessage,
    CommitMessage,
    DecisionRequest,
    Message,
    PrepareMessage,
    ReadReply,
    ReadRequest,
    VersionReply,
    VersionRequest,
    VoteMessage,
)
from repro.sim.replica import Timestamp

#: Hard cap on a single frame (1 MiB): a corrupt length prefix must not
#: make a reader allocate gigabytes.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")

#: Payload fields per message class, in constructor order (after
#: ``src``/``dst``).  Order matters: decode calls the constructor
#: positionally, exactly as the coordinator/site do.
_FIELDS: dict[type, tuple[str, ...]] = {
    ReadRequest: ("key", "request_id"),
    ReadReply: ("key", "request_id", "value", "timestamp"),
    VersionRequest: ("key", "request_id"),
    VersionReply: ("key", "request_id", "timestamp"),
    PrepareMessage: ("txid", "key", "value", "timestamp"),
    VoteMessage: ("txid", "vote_commit"),
    CommitMessage: ("txid",),
    AbortMessage: ("txid",),
    AckMessage: ("txid", "committed"),
    DecisionRequest: ("txid",),
}

_BY_NAME: dict[str, type] = {cls.type_name: cls for cls in _FIELDS}

#: Fields carrying a :class:`Timestamp` (encoded as ``[version, sid]``).
_TIMESTAMP_FIELDS = frozenset({"timestamp"})


class CodecError(ValueError):
    """A frame that cannot be decoded into a protocol message."""


def encode_message(message: Message) -> dict[str, Any]:
    """Message -> JSON-ready dict (``kind: "msg"``)."""
    fields = _FIELDS.get(type(message))
    if fields is None:
        raise CodecError(f"unencodable message type {type(message).__name__}")
    obj: dict[str, Any] = {
        "kind": "msg",
        "type": message.type_name,
        "src": message.src,
        "dst": message.dst,
    }
    for name in fields:
        value = getattr(message, name)
        if name in _TIMESTAMP_FIELDS:
            value = [value.version, value.sid]
        obj[name] = value
    return obj


def decode_message(obj: dict[str, Any]) -> Message:
    """JSON dict -> message instance (fresh local ``msg_id``)."""
    cls = _BY_NAME.get(obj.get("type", ""))
    if cls is None:
        raise CodecError(f"unknown message type {obj.get('type')!r}")
    try:
        args: list[Any] = [obj["src"], obj["dst"]]
        for name in _FIELDS[cls]:
            value = obj[name]
            if name in _TIMESTAMP_FIELDS:
                value = Timestamp(value[0], value[1])
            args.append(value)
    except (KeyError, IndexError, TypeError) as exc:
        raise CodecError(f"malformed {cls.type_name} frame: {obj!r}") from exc
    return cls(*args)


def encode_frame(obj: dict[str, Any]) -> bytes:
    """One wire frame: length prefix + compact JSON payload."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame too large ({len(payload)} bytes)")
    return _LENGTH.pack(len(payload)) + payload


def write_frame(writer: asyncio.StreamWriter, obj: dict[str, Any]) -> None:
    """Queue one frame on ``writer`` (no flush — asyncio buffers)."""
    writer.write(encode_frame(obj))


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise CodecError("EOF inside a frame length prefix") from exc
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise CodecError("EOF inside a frame payload") from exc
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError("undecodable frame payload") from exc
    if not isinstance(obj, dict):
        raise CodecError(f"frame payload is not an object: {obj!r}")
    return obj
