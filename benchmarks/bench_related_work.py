"""Section 1: the related-work cost/load survey, regenerated.

The paper's introduction positions the arbitrary protocol against eight
prior protocols with concrete cost and load figures.  This bench evaluates
every one of them (full implementations where the paper defines or cites a
constructible protocol; published formulas for Koch [7] and Choi [5]) and
asserts the survey's claims:

* ROWA: read cost 1 / load 1/n vs write cost n / load 1;
* Majority: both costs (n+1)/2, load >= 0.5;
* FPP/Grid: O(sqrt n) costs and the optimal O(1/sqrt n) load;
* tree quorum [2]: costs from log(n+1) to (n+1)/2;
* HQC: n^0.63 cost, n^-0.37 load;
* [1]: read 1..(d+1)^h, write ((d+1)^(h+1)-1)/d, loads 1;
* the arbitrary protocol: ~sqrt(n) costs, write load 1/sqrt(n).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.related_work import survey
from repro.analysis.tables import format_table
from repro.protocols.agrawal_tree import AgrawalTreeProtocol
from repro.quorums.base import is_cross_intersecting
from repro.quorums.load import optimal_load

N = 121


@pytest.fixture(scope="module")
def entries():
    return {entry.protocol: entry for entry in survey(N)}


def test_survey_table(entries, emit, benchmark):
    benchmark(survey, N)
    rows = [
        [e.protocol, e.reference, e.n, e.read_cost_best, e.read_cost_worst,
         round(e.write_cost, 2), round(e.read_load, 4), round(e.write_load, 4)]
        for e in entries.values()
    ]
    emit(
        "related_work",
        format_table(
            ["protocol", "ref", "n", "rd min", "rd max", "wr cost",
             "rd load", "wr load"],
            rows,
            title=f"Section 1 survey at n ~ {N}",
        ),
    )


def test_rowa_row(entries, benchmark):
    benchmark(lambda: entries)
    rowa = entries["ROWA"]
    assert rowa.read_cost_best == 1
    assert rowa.write_cost == N
    assert rowa.read_load == pytest.approx(1 / N)
    assert rowa.write_load == 1.0


def test_majority_row(entries, benchmark):
    benchmark(lambda: None)
    majority = entries["Majority"]
    assert majority.read_cost_best == (majority.n + 1) / 2
    assert majority.write_load >= 0.5


def test_sqrt_protocols_have_best_load(entries, benchmark):
    benchmark(lambda: None)
    for name in ("FPP (sqrt n)", "Grid"):
        entry = entries[name]
        assert entry.read_cost_best == pytest.approx(math.sqrt(entry.n), rel=0.35)
        assert entry.read_load == pytest.approx(1 / math.sqrt(entry.n), rel=0.35)


def test_tree_quorum_cost_range(entries, benchmark):
    benchmark(lambda: None)
    tq = entries["Tree quorum"]
    assert tq.read_cost_best == pytest.approx(math.log2(tq.n + 1))
    assert tq.read_cost_worst == (tq.n + 1) / 2


def test_hqc_row(entries, benchmark):
    benchmark(lambda: None)
    hqc = entries["HQC"]
    assert hqc.read_cost_best == pytest.approx(hqc.n ** (math.log(2, 3)), rel=1e-6)
    assert hqc.read_load == pytest.approx(hqc.n ** (math.log(2, 3) - 1), rel=1e-6)


def test_ae_tree_row(entries, benchmark):
    benchmark(lambda: None)
    ae = entries["AE tree (VLDB90)"]
    assert ae.read_cost_best == 1
    assert ae.read_load == 1.0  # cost-1 reads go through the root
    assert ae.write_load == 1.0


def test_koch_choi_read_ranges(entries, benchmark):
    benchmark(lambda: None)
    koch = entries["Koch"]
    choi = entries["Choi symmetric"]
    assert koch.read_cost_best == choi.read_cost_best == 1
    # Choi's worst read cost is the square root of Koch's (S^(h/2) vs S^h)
    assert choi.read_cost_worst == pytest.approx(math.sqrt(koch.read_cost_worst))
    assert koch.read_load == 1.0 and choi.read_load == 0.5


def test_arbitrary_wins_write_load(entries, benchmark):
    """Lowest write load among the *tree* protocols (the paper's claim);
    FPP/Grid reach the same O(1/sqrt n) order, which is the known optimum."""
    benchmark(lambda: None)
    ours = entries["Arbitrary (this paper)"]
    assert ours.write_load == pytest.approx(1 / math.isqrt(N))
    tree_protocols = (
        "ROWA", "Majority", "Tree quorum", "HQC",
        "AE tree (VLDB90)", "Koch", "Choi symmetric",
    )
    for name in tree_protocols:
        assert ours.write_load <= entries[name].write_load + 1e-9
    for name in ("FPP (sqrt n)", "Grid"):
        entry = entries[name]
        assert ours.write_load == pytest.approx(
            1 / math.sqrt(ours.n), rel=0.1
        )
        assert entry.write_load >= 1 / math.sqrt(entry.n) - 1e-9


def test_ae_tree_structure_checks(benchmark):
    """[1] on a small instance: bi-coterie + exact write cost + LP loads."""
    protocol = AgrawalTreeProtocol(d=1, height=1)   # 4 nodes: root + 3 kids

    def check():
        reads = list(protocol.read_quorums())
        writes = list(protocol.write_quorums())
        assert is_cross_intersecting(reads, writes)
        assert all(len(w) == protocol.write_cost_exact() for w in writes)
        lp_write = optimal_load(writes, universe=range(protocol.n))
        return lp_write.load

    load = benchmark(check)
    assert load == pytest.approx(1.0)  # the root is in every write quorum
