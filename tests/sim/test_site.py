"""Unit tests for replica sites: message handling, 2PC participation,
crash/recover with the termination protocol."""

import random

import pytest

from repro.sim.events import Scheduler
from repro.sim.messages import (
    AbortMessage,
    AckMessage,
    CommitMessage,
    DecisionRequest,
    PrepareMessage,
    ReadReply,
    ReadRequest,
    VersionReply,
    VersionRequest,
    VoteMessage,
)
from repro.sim.network import Network
from repro.sim.replica import Timestamp
from repro.sim.site import Site, SiteState


class Client:
    """A recording endpoint standing in for the coordinator."""

    up = True

    def __init__(self):
        self.received = []

    @property
    def is_up(self) -> bool:
        return True

    def receive(self, message) -> None:
        self.received.append(message)

    def of_type(self, cls):
        return [m for m in self.received if isinstance(m, cls)]


@pytest.fixture
def rig():
    scheduler = Scheduler()
    network = Network(scheduler, random.Random(0), latency=1.0)
    client = Client()
    network.register(-1, client)
    site = Site(0, network)
    return scheduler, network, client, site


class TestLifecycle:
    def test_starts_up(self, rig):
        *_rest, site = rig
        assert site.is_up and site.state is SiteState.UP

    def test_crash_and_recover(self, rig):
        *_rest, site = rig
        site.crash()
        assert not site.is_up
        site.recover()
        assert site.is_up
        assert site.stats.crashes == 1
        assert site.stats.recoveries == 1

    def test_double_crash_counted_once(self, rig):
        *_rest, site = rig
        site.crash()
        site.crash()
        assert site.stats.crashes == 1

    def test_negative_sid_rejected(self, rig):
        _scheduler, network, *_ = rig
        with pytest.raises(ValueError, match="non-negative"):
            Site(-5, network)

    def test_repr(self, rig):
        *_rest, site = rig
        assert "sid=0" in repr(site)


class TestReads:
    def test_read_reply_carries_stored_value(self, rig):
        scheduler, network, client, site = rig
        site.store.apply_write("k", "v", Timestamp(3, 1))
        network.send(ReadRequest(src=-1, dst=0, key="k", request_id=9))
        scheduler.run()
        (reply,) = client.of_type(ReadReply)
        assert reply.value == "v"
        assert reply.timestamp == Timestamp(3, 1)
        assert reply.request_id == 9
        assert site.stats.reads_served == 1

    def test_version_reply(self, rig):
        scheduler, network, client, site = rig
        site.store.apply_write("k", "v", Timestamp(2, 0))
        network.send(VersionRequest(src=-1, dst=0, key="k", request_id=4))
        scheduler.run()
        (reply,) = client.of_type(VersionReply)
        assert reply.timestamp == Timestamp(2, 0)

    def test_unknown_message_type_raises(self, rig):
        *_rest, site = rig
        with pytest.raises(TypeError, match="cannot handle"):
            site.receive(AckMessage(src=-1, dst=0, txid=1))


class TestTwoPhaseCommit:
    def _prepare(self, network, txid=1, key="k", value="v", version=1):
        network.send(
            PrepareMessage(
                src=-1, dst=0, txid=txid, key=key, value=value,
                timestamp=Timestamp(version, -1),
            )
        )

    def test_prepare_votes_yes(self, rig):
        scheduler, network, client, site = rig
        self._prepare(network)
        scheduler.run()
        (vote,) = client.of_type(VoteMessage)
        assert vote.vote_commit
        assert site.stats.prepares == 1
        assert site.store.read("k").value is None  # not yet committed

    def test_commit_applies_write(self, rig):
        scheduler, network, client, site = rig
        self._prepare(network)
        network.send(CommitMessage(src=-1, dst=0, txid=1))
        scheduler.run()
        assert site.store.read("k").value == "v"
        (ack,) = client.of_type(AckMessage)
        assert ack.committed

    def test_abort_discards_write(self, rig):
        scheduler, network, client, site = rig
        self._prepare(network)
        network.send(AbortMessage(src=-1, dst=0, txid=1))
        scheduler.run()
        assert site.store.read("k").value is None
        (ack,) = client.of_type(AckMessage)
        assert not ack.committed

    def test_conflicting_prepare_refused(self, rig):
        scheduler, network, client, site = rig
        self._prepare(network, txid=1)
        self._prepare(network, txid=2)
        scheduler.run()
        votes = client.of_type(VoteMessage)
        assert [vote.vote_commit for vote in votes] == [True, False]
        assert site.stats.refused_prepares == 1

    def test_key_freed_after_decision(self, rig):
        scheduler, network, client, site = rig
        self._prepare(network, txid=1)
        network.send(AbortMessage(src=-1, dst=0, txid=1))
        self._prepare(network, txid=2, version=2)
        scheduler.run()
        votes = client.of_type(VoteMessage)
        assert all(vote.vote_commit for vote in votes)

    def test_commit_for_unknown_txid_acks_without_applying(self, rig):
        """Retransmitted commits are re-acked so lost acks cannot hang the
        coordinator, but nothing is applied twice."""
        scheduler, network, client, site = rig
        network.send(CommitMessage(src=-1, dst=0, txid=77))
        scheduler.run()
        (ack,) = client.of_type(AckMessage)
        assert ack.committed
        assert site.stats.commits == 0
        assert len(site.store) == 0


class TestRecoveryTermination:
    def test_recovery_queries_coordinator_for_in_doubt_txns(self, rig):
        scheduler, network, client, site = rig
        network.send(
            PrepareMessage(
                src=-1, dst=0, txid=5, key="k", value="v",
                timestamp=Timestamp(1, -1),
            )
        )
        scheduler.run()
        site.crash()   # crash between vote and decision
        site.recover()
        scheduler.run()
        (query,) = client.of_type(DecisionRequest)
        assert query.txid == 5

    def test_prepared_state_survives_crash(self, rig):
        scheduler, network, client, site = rig
        network.send(
            PrepareMessage(
                src=-1, dst=0, txid=5, key="k", value="v",
                timestamp=Timestamp(1, -1),
            )
        )
        scheduler.run()
        site.crash()
        site.recover()
        # a late commit still applies the write from the stable prepare log
        network.send(CommitMessage(src=-1, dst=0, txid=5))
        scheduler.run()
        assert site.store.read("k").value == "v"

    def test_clean_recovery_sends_nothing(self, rig):
        scheduler, _network, client, site = rig
        site.crash()
        site.recover()
        scheduler.run()
        assert client.of_type(DecisionRequest) == []
