"""Quickstart: the arbitrary protocol in five minutes.

Builds the paper's running example (the 1-3-5 tree of Figure 1), inspects
its quorums and closed-form metrics, and runs a small end-to-end simulation
to show the measured numbers landing on the analytical ones.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import ArbitraryProtocol, analyse, from_spec
from repro.sim import SimulationConfig, WorkloadSpec, simulate


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a tree: a logical root over physical levels of 3 and 5.
    # ------------------------------------------------------------------
    tree = from_spec("1-3-5")
    print(tree.describe())
    print()

    # ------------------------------------------------------------------
    # 2. The protocol: read = one replica per physical level,
    #    write = every replica of one physical level.
    # ------------------------------------------------------------------
    protocol = ArbitraryProtocol(tree)
    print(f"read quorums  m(R) = {protocol.num_read_quorums}")
    print(f"write quorums m(W) = {protocol.num_write_quorums}")
    rng = random.Random(0)
    print(f"a read quorum:  {sorted(protocol.sample_read_quorum(rng))}")
    print(f"a write quorum: {sorted(protocol.sample_write_quorum(rng))}")
    print()

    # ------------------------------------------------------------------
    # 3. Closed-form analysis (Sections 3.2.1-3.2.2, Equation 3.2).
    # ------------------------------------------------------------------
    metrics = analyse(tree, p=0.7)
    print(f"read cost          {metrics.read_cost}")
    print(f"write cost (avg)   {metrics.write_cost_avg}")
    print(f"read availability  {metrics.read_availability:.4f}")
    print(f"write availability {metrics.write_availability:.4f}")
    print(f"read load          {metrics.read_load:.4f}")
    print(f"write load         {metrics.write_load:.4f}")
    print(f"E[read load]       {metrics.expected_read_load:.4f}")
    print(f"E[write load]      {metrics.expected_write_load:.4f}")
    print()

    # ------------------------------------------------------------------
    # 4. Failures: quorum selection routes around crashed replicas.
    # ------------------------------------------------------------------
    live = set(tree.replica_ids()) - {0, 1}  # crash two level-1 replicas
    read_quorum = protocol.select_read_quorum(live, rng)
    write_quorum = protocol.select_write_quorum(live, rng)
    print(f"with replicas 0 and 1 down:")
    print(f"  read quorum  -> {sorted(read_quorum) if read_quorum else None}")
    print(f"  write quorum -> {sorted(write_quorum) if write_quorum else None}")
    print()

    # ------------------------------------------------------------------
    # 5. End to end: simulate 1000 operations over the message-level stack.
    # ------------------------------------------------------------------
    result = simulate(
        SimulationConfig(
            tree=tree,
            workload=WorkloadSpec(operations=1000, read_fraction=0.5, keys=8),
            seed=0,
        )
    )
    summary = result.summary()
    print("simulated 1000 operations (failure-free):")
    print(f"  measured read cost   {summary['read_cost']:.2f}  (analysis: {metrics.read_cost})")
    print(f"  measured write cost  {summary['write_cost']:.2f}  (analysis: {metrics.write_cost_avg})")
    print(f"  measured read load   {summary['read_load']:.3f}  (analysis: {metrics.read_load:.3f})")
    print(f"  measured write load  {summary['write_load']:.3f}  (analysis: {metrics.write_load:.3f})")
    print(f"  messages exchanged   {int(summary['messages_sent'])}")


if __name__ == "__main__":
    main()
