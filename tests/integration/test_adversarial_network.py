"""Integration: duplication, random latencies and loss, all at once.

The protocol's handlers must be idempotent (duplicated commits re-ack
without re-applying; timestamp guards reject replays) and its completion
rule (a write holds its lock until every live quorum member acked the
commit) must keep reads fresh even when message latencies are random —
these tests drive all of it simultaneously and audit consistency.
"""

import pytest

from repro.core.builder import from_spec, recommended_tree
from repro.sim import BernoulliFailures, SimulationConfig, WorkloadSpec, simulate
from repro.sim.network import exponential_latency, uniform_latency
from tests.integration.test_consistency import audit_one_copy_equivalence


class TestDuplication:
    def test_duplicates_are_harmless(self):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=1500, read_fraction=0.5, keys=8),
                duplicate_probability=0.2,
                seed=41,
            )
        )
        assert result.network_stats.duplicated > 100
        assert result.monitor.reads.failed == 0
        assert result.monitor.writes.failed == 0
        assert audit_one_copy_equivalence(result) == 0

    def test_no_double_applies(self):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(operations=600, read_fraction=0.0, keys=4),
                duplicate_probability=0.3,
                seed=42,
            )
        )
        commits = sum(site.stats.commits for site in result.sites)
        # each successful write commits at exactly its quorum members once
        expected = sum(
            len(outcome.quorum)
            for outcome in result.monitor.outcomes
            if outcome.success
        )
        assert commits == expected


class TestRandomLatency:
    @pytest.mark.parametrize(
        "latency", [uniform_latency(0.5, 3.0), exponential_latency(1.5)],
        ids=["uniform", "exponential"],
    )
    def test_consistency_with_random_latency(self, latency):
        result = simulate(
            SimulationConfig(
                tree=from_spec("1-3-5"),
                workload=WorkloadSpec(
                    operations=1500, read_fraction=0.6, keys=6,
                    arrival="poisson", rate=0.5,
                ),
                latency=latency,
                clients=3,
                timeout=30.0,
                seed=43,
            )
        )
        assert result.monitor.reads.failed == 0
        assert result.monitor.writes.failed == 0
        assert audit_one_copy_equivalence(result) == 0


class TestEverythingAtOnce:
    def test_chaos_run(self):
        result = simulate(
            SimulationConfig(
                tree=recommended_tree(30),
                workload=WorkloadSpec(
                    operations=2500, read_fraction=0.5, keys=8,
                    arrival="poisson", rate=0.4,
                ),
                latency=uniform_latency(0.5, 2.0),
                drop_probability=0.03,
                duplicate_probability=0.05,
                failures=BernoulliFailures(p=0.85, seed=44, resample_every=80.0),
                clients=2,
                max_attempts=5,
                timeout=25.0,
                seed=44,
            )
        )
        assert audit_one_copy_equivalence(result) == 0
        # the run actually exercised everything
        assert result.network_stats.dropped_loss > 0
        assert result.network_stats.duplicated > 0
        crashed = sum(site.stats.crashes for site in result.sites)
        assert crashed > 0
