"""Retry policies: how long a coordinator waits before trying again.

The coordinator's original retry loop was hard-wired: an attempt that
timed out (or had a vote refused) was retried immediately, and an attempt
that found no live quorum waited a fixed ``unavailable_delay``.  Under
churn that is the worst possible shape — every client hammers the system
in lockstep the instant a timeout fires, and keeps hammering at the same
cadence while the failure persists.

A :class:`RetryPolicy` makes the shape pluggable:

* :class:`FixedDelay` — a constant delay before every retry (zero
  reproduces the legacy immediate-retry behaviour exactly);
* :class:`ExponentialBackoff` — delays grow geometrically from ``base``
  up to ``cap``, with optional *deterministic seeded jitter*: the jitter
  factor for attempt ``k`` is a pure function of ``(seed, k)``, so a run
  is bit-for-bit reproducible under a fixed master seed — including
  across the parallel runner's process pool — while different
  coordinators (different seeds) still decorrelate.

Policies answer two questions, both in simulated time units:

* :meth:`RetryPolicy.retry_delay` — wait before re-attempting after a
  quorum timeout / refused vote on attempt ``attempt`` (1-based count of
  attempts already made);
* :meth:`RetryPolicy.unavailable_delay` — wait before re-probing when no
  live quorum exists at all (the detection delay of an unavailability
  probe round).  ``None`` defers to the coordinator's configured
  ``unavailable_delay``.

:class:`RetryPolicySpec` is the picklable plain-data form carried by
simulation configs and the parallel runner; ``spec.build(seed)``
instantiates the policy inside a worker.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass


class RetryPolicy(abc.ABC):
    """Delay schedule for quorum-operation retries."""

    @abc.abstractmethod
    def retry_delay(self, attempt: int) -> float:
        """Delay before the next attempt, after ``attempt`` attempts failed."""

    def unavailable_delay(self, attempt: int) -> float | None:
        """Delay before re-probing an unavailable system (``None`` =
        use the coordinator's configured unavailability delay)."""
        return None


@dataclass(frozen=True)
class FixedDelay(RetryPolicy):
    """A constant delay before every retry.

    ``FixedDelay(0.0)`` is the legacy coordinator behaviour: retry the
    instant the failure is detected.
    """

    delay: float = 0.0
    unavailable: float | None = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("retry delay cannot be negative")
        if self.unavailable is not None and self.unavailable < 0:
            raise ValueError("unavailable delay cannot be negative")

    def retry_delay(self, attempt: int) -> float:
        return self.delay

    def unavailable_delay(self, attempt: int) -> float | None:
        return self.unavailable


def _jitter_fraction(seed: int, attempt: int) -> float:
    """A uniform [0, 1) draw that is a pure function of (seed, attempt).

    Deriving jitter from a stateless hash rather than a shared RNG stream
    keeps it reproducible no matter how attempts interleave across
    concurrent operations — the delay of attempt ``k`` never depends on
    what other operations did in between.
    """
    return random.Random((seed << 20) ^ attempt).random()


@dataclass(frozen=True)
class ExponentialBackoff(RetryPolicy):
    """Capped geometric backoff with deterministic seeded jitter.

    The undithered delay after ``attempt`` failures is
    ``min(cap, base * factor ** (attempt - 1))``; with ``jitter = j`` it
    is scaled by a factor drawn uniformly from ``[1 - j, 1 + j]`` using
    the ``(seed, attempt)`` hash above.
    """

    base: float = 1.0
    factor: float = 2.0
    cap: float = 60.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base delay cannot be negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.cap < self.base:
            raise ValueError("cap must be at least the base delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def retry_delay(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError("attempt counts are 1-based")
        delay = min(self.cap, self.base * self.factor ** (attempt - 1))
        if self.jitter:
            spread = 2.0 * _jitter_fraction(self.seed, attempt) - 1.0
            delay *= 1.0 + self.jitter * spread
        return delay

    def unavailable_delay(self, attempt: int) -> float | None:
        # An unavailable system deserves backoff too: probing costs a
        # detection round, and blind fixed-cadence probes are exactly the
        # lockstep behaviour this policy exists to break.
        return self.retry_delay(attempt)


@dataclass(frozen=True)
class RetryPolicySpec:
    """Picklable description of a retry policy (the config/CLI form).

    ``kind`` is ``"fixed"`` or ``"exponential"``; :meth:`build` derives
    the concrete policy, folding ``seed`` (typically a per-coordinator
    child seed) into the jitter hash so distinct coordinators never
    back off in lockstep.
    """

    kind: str = "fixed"
    base: float = 0.0
    factor: float = 2.0
    cap: float = 60.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "exponential"):
            raise ValueError(f"unknown retry policy kind {self.kind!r}")

    def build(self, seed: int = 0) -> RetryPolicy:
        """Instantiate the described policy (validating its parameters)."""
        if self.kind == "fixed":
            return FixedDelay(delay=self.base)
        return ExponentialBackoff(
            base=self.base if self.base > 0 else 1.0,
            factor=self.factor,
            cap=self.cap,
            jitter=self.jitter,
            seed=seed,
        )
