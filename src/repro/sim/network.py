"""Message-passing network with latency, loss and partitions (Section 2.2).

Links are bidirectional and may fail by not delivering, dropping or
delaying messages; a special failure mode partitions the system so that only
sites within the same partition can communicate.  All of these are modelled
here:

* per-message latency drawn from a configurable distribution;
* i.i.d. message loss with probability ``drop_probability``;
* a partition map: messages crossing partition boundaries are dropped;
* messages addressed to a crashed endpoint are dropped at delivery time
  (fail-stop sites do not process input while down).

Endpoints register under their SID and must expose ``receive(message)`` and
``is_up`` — both replicas (:class:`repro.sim.site.Site`) and coordinators
qualify.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Protocol

from repro.obs.recorder import NULL_RECORDER, NullRecorder
from repro.sim.events import Scheduler
from repro.sim.messages import Message


class Endpoint(Protocol):
    """Anything that can be addressed on the network."""

    #: Whether the endpoint currently processes messages.  A plain
    #: attribute (not a property) by contract: the network reads it on
    #: every delivery, and endpoints flip it on crash/recover.
    up: bool

    def receive(self, message: Message) -> None:
        """Handle a delivered message."""
        ...


@dataclass
class PartitionSpec:
    """Assignment of SIDs to partition groups.

    SIDs absent from ``groups`` belong to the implicit group ``None`` and
    can talk to each other (and only to each other).  An empty spec means a
    fully connected network.
    """

    groups: dict[int, int] = field(default_factory=dict)

    @classmethod
    def split(cls, *components: Iterable[int]) -> "PartitionSpec":
        """Build a spec from explicit components, e.g. ``split({0,1}, {2,3})``."""
        groups: dict[int, int] = {}
        for group_id, component in enumerate(components):
            for sid in component:
                if sid in groups:
                    raise ValueError(f"SID {sid} appears in two components")
                groups[sid] = group_id
        return cls(groups=groups)

    def connected(self, a: int, b: int) -> bool:
        """True iff SIDs ``a`` and ``b`` may exchange messages."""
        return self.groups.get(a) == self.groups.get(b)


@dataclass
class NetworkStats:
    """Counters of everything the network did."""

    sent: int = 0
    delivered: int = 0
    duplicated: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_dead: int = 0

    @property
    def dropped(self) -> int:
        """Total messages that never reached a live endpoint."""
        return self.dropped_loss + self.dropped_partition + self.dropped_dead


LatencyModel = Callable[[random.Random], float]


@dataclass(frozen=True)
class RegionLatencyMatrix:
    """Per-region link latency: messages pay the src-region -> dst-region cost.

    The production picture this models: replicas (and coordinators) are
    deployed across geographic regions, intra-region hops are cheap and
    cross-region hops pay the WAN.  ``matrix[a][b]`` is the base latency
    from region ``a`` to region ``b``; ``regions`` maps SIDs to region
    indices (SIDs absent from the map — e.g. the negative coordinator
    SIDs — live in ``default_region``).  ``jitter`` adds a multiplicative
    uniform spread of up to ``jitter`` on top of the base (0 keeps the
    matrix deterministic and draws nothing from the RNG).

    Instances are *per-pair* latency models: the network calls them with
    ``(rng, src, dst)`` instead of the scalar models' ``(rng)`` — the
    ``per_pair`` class attribute is the dispatch flag.
    """

    matrix: tuple[tuple[float, ...], ...]
    regions: tuple[tuple[int, int], ...] = ()
    default_region: int = 0
    jitter: float = 0.0

    #: Dispatch flag: Network passes (rng, src, dst) when this is true.
    per_pair = True

    def __post_init__(self) -> None:
        if not self.matrix:
            raise ValueError("latency matrix cannot be empty")
        size = len(self.matrix)
        for row in self.matrix:
            if len(row) != size:
                raise ValueError("latency matrix must be square")
            for value in row:
                if value < 0:
                    raise ValueError("latencies cannot be negative")
        if not 0 <= self.default_region < size:
            raise ValueError("default region out of range")
        for _sid, region in self.regions:
            if not 0 <= region < size:
                raise ValueError(f"region {region} out of range")
        if not 0.0 <= self.jitter:
            raise ValueError("jitter must be non-negative")
        # Frozen dataclass: stash the lookup dict via object.__setattr__
        # so per-message region lookups are O(1), not a linear scan.
        object.__setattr__(self, "_region_of", dict(self.regions))

    @classmethod
    def uniform(
        cls,
        regions: int,
        local: float = 1.0,
        remote: float = 10.0,
        assignment: Iterable[tuple[int, int]] = (),
        jitter: float = 0.0,
    ) -> "RegionLatencyMatrix":
        """The common shape: one intra-region and one cross-region cost."""
        if regions < 1:
            raise ValueError("need at least one region")
        matrix = tuple(
            tuple(local if a == b else remote for b in range(regions))
            for a in range(regions)
        )
        return cls(
            matrix=matrix, regions=tuple(assignment), jitter=jitter
        )

    @classmethod
    def round_robin(
        cls,
        sids: Iterable[int],
        regions: int,
        local: float = 1.0,
        remote: float = 10.0,
        jitter: float = 0.0,
    ) -> "RegionLatencyMatrix":
        """Assign ``sids`` to ``regions`` round-robin over a uniform matrix."""
        assignment = tuple(
            (sid, index % regions) for index, sid in enumerate(sids)
        )
        return cls.uniform(
            regions, local=local, remote=remote,
            assignment=assignment, jitter=jitter,
        )

    def region_of(self, sid: int) -> int:
        """The region a SID is deployed in."""
        return self._region_of.get(sid, self.default_region)

    def __call__(self, rng: random.Random, src: int, dst: int) -> float:
        base = self.matrix[self.region_of(src)][self.region_of(dst)]
        if self.jitter:
            return base * (1.0 + self.jitter * rng.random())
        return base


def fixed_latency(value: float) -> LatencyModel:
    """Every message takes exactly ``value`` time units.

    The returned model carries its constant as a ``fixed_value``
    attribute so the network can recognise a deterministic, RNG-free
    latency and serve quorum fan-outs through the batched multicast
    fast path (see :meth:`Network.broadcast`).
    """
    if value < 0:
        raise ValueError("latency cannot be negative")

    def model(rng: random.Random) -> float:
        return value

    model.fixed_value = value
    return model


def uniform_latency(low: float, high: float) -> LatencyModel:
    """Latency uniform in ``[low, high]``."""
    if not 0 <= low <= high:
        raise ValueError(f"invalid latency range [{low}, {high}]")
    return lambda rng: rng.uniform(low, high)


def exponential_latency(mean: float) -> LatencyModel:
    """Exponentially distributed latency with the given mean."""
    if mean <= 0:
        raise ValueError("mean latency must be positive")
    return lambda rng: rng.expovariate(1.0 / mean)


class Network:
    """The shared message fabric of one simulation.

    ``drop_probability`` and ``duplicate_probability`` are genuine
    probabilities over the closed interval ``[0, 1]``: 1.0 drops
    (respectively duplicates) every message, which adversarial tests use
    to model fully lossy links.  ``recorder`` receives per-message-type
    send/deliver/drop/duplicate counters when tracing is enabled.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        latency: LatencyModel | float = 1.0,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        recorder: NullRecorder = NULL_RECORDER,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate probability must be in [0, 1]")
        self._scheduler = scheduler
        self._recorder = recorder
        self._rng = rng
        self._latency = (
            fixed_latency(latency) if isinstance(latency, (int, float)) else latency
        )
        #: Per-pair models (RegionLatencyMatrix) receive (rng, src, dst);
        #: scalar models keep the legacy (rng) call so their RNG draw
        #: pattern — and therefore every existing stream — is unchanged.
        self._per_pair_latency = bool(getattr(self._latency, "per_pair", False))
        #: Constant link latency, when the model is deterministic and
        #: RNG-free (``fixed_latency``) — the precondition for collapsing
        #: a quorum fan-out into one batched delivery event.
        self._fixed_latency = getattr(self._latency, "fixed_value", None)
        self._drop_probability = drop_probability
        self._duplicate_probability = duplicate_probability
        self._endpoints: dict[int, Endpoint] = {}
        self._partition = PartitionSpec()
        self._liveness_epoch = 0
        #: Per-site extra loss (chaos: flaky links) and latency inflation
        #: (chaos: stragglers).  Both empty by default, and the hot path
        #: only consults them when non-empty, so configurations that never
        #: use them draw exactly the same RNG stream as before.
        self._site_drop: dict[int, float] = {}
        self._latency_factors: dict[int, float] = {}
        #: Per-(src, dst) link table: ``(connected, drop, latency_factor)``
        #: built lazily on first send over a pair and consulted with two
        #: dict probes thereafter, instead of recomputing partition
        #: membership + compound drop + compound latency factor on every
        #: send.  Invalidated wholesale whenever any input can change:
        #: liveness-epoch bumps, partition installs/heals and chaos
        #: mutations (see :meth:`_invalidate_links`).
        self._links: dict[int, dict[int, tuple[bool, float, float]]] = {}
        self.stats = NetworkStats()

    def register(self, sid: int, endpoint: Endpoint) -> None:
        """Attach an endpoint under its SID."""
        if sid in self._endpoints:
            raise ValueError(f"SID {sid} already registered")
        self._endpoints[sid] = endpoint

    def endpoint(self, sid: int) -> Endpoint:
        """Look up a registered endpoint."""
        return self._endpoints[sid]

    def coordinators(self) -> list[Endpoint]:
        """Every registered coordinator endpoint, in pool order.

        Coordinators are the negative-SID endpoints (``-1, -2, ...``);
        reconfiguration uses this to reach the whole pool so a quorum-
        system swap is group-scoped, never per-coordinator.
        """
        return [
            self._endpoints[sid]
            for sid in sorted(
                (s for s in self._endpoints if s < 0), reverse=True
            )
        ]

    @property
    def scheduler(self) -> Scheduler:
        """The simulation's event scheduler."""
        return self._scheduler

    @property
    def clock(self) -> Scheduler:
        """The transport-seam clock (see :mod:`repro.runtime.interfaces`).

        For the simulator backend this *is* the event scheduler — virtual
        time and the delivery engine share one heap.  Protocol code must
        use this property (never :attr:`scheduler`, which is simulator
        detail) so it runs unchanged on transports whose clock is the
        asyncio event loop.
        """
        return self._scheduler

    # ------------------------------------------------------------------
    # liveness epochs
    # ------------------------------------------------------------------

    @property
    def liveness_epoch(self) -> int:
        """Counter bumped whenever any endpoint's reachability can change.

        Site crash/recovery and partition install/heal all advance it, so a
        consumer that caches a derived view of the live set (the
        coordinator's packed live mask) can validate the cache with one
        integer comparison instead of re-probing every replica.
        """
        return self._liveness_epoch

    def current_liveness_epoch(self) -> int:
        """Bound-method accessor for :attr:`liveness_epoch`.

        Consumers that poll the epoch per operation (the coordinator's
        live-set cache, the lease cache) hold this method instead of a
        ``lambda: network.liveness_epoch`` — one dispatch instead of a
        lambda frame plus a property descriptor on a very hot probe.
        """
        return self._liveness_epoch

    def bump_liveness_epoch(self) -> None:
        """Invalidate cached live-set views (sites call this on crash/recover)."""
        self._liveness_epoch += 1
        self._links.clear()

    def _invalidate_links(self) -> None:
        """Drop every cached link entry (a loss/latency input changed)."""
        self._links.clear()

    # ------------------------------------------------------------------
    # runtime link degradation (chaos scenarios)
    # ------------------------------------------------------------------

    @property
    def drop_probability(self) -> float:
        """The current global i.i.d. message-loss probability."""
        return self._drop_probability

    def set_drop_probability(self, probability: float) -> None:
        """Change the global loss probability mid-run (chaos bursts)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        self._drop_probability = probability
        self._invalidate_links()

    def set_site_drop(self, sid: int, probability: float) -> None:
        """Extra loss on every link touching ``sid`` (0 restores it).

        Composes with the global probability as independent loss events:
        a message survives only if neither the global link, the source's
        flakiness nor the destination's flakiness eats it.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        if probability == 0.0:
            self._site_drop.pop(sid, None)
        else:
            self._site_drop[sid] = probability
        self._invalidate_links()

    def set_site_latency_factor(self, sid: int, factor: float) -> None:
        """Multiply latency of every message touching ``sid`` (1 restores).

        Chaos straggler sites answer everything — just ``factor`` times
        slower; factors of source and destination multiply.
        """
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        if factor == 1.0:
            self._latency_factors.pop(sid, None)
        else:
            self._latency_factors[sid] = factor
        self._invalidate_links()

    def _effective_drop(self, src: int, dst: int) -> float:
        survive = 1.0 - self._drop_probability
        site_drop = self._site_drop
        if site_drop:
            survive *= 1.0 - site_drop.get(src, 0.0)
            survive *= 1.0 - site_drop.get(dst, 0.0)
        return 1.0 - survive

    def _latency_factor(self, src: int, dst: int) -> float:
        factors = self._latency_factors
        if not factors:
            return 1.0
        return factors.get(src, 1.0) * factors.get(dst, 1.0)

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------

    def set_partition(self, spec: PartitionSpec) -> None:
        """Install a partition; messages across components are dropped."""
        self._partition = spec
        self.bump_liveness_epoch()

    def heal_partition(self) -> None:
        """Remove any partition (fully connected again)."""
        self._partition = PartitionSpec()
        self.bump_liveness_epoch()

    @property
    def partitioned(self) -> bool:
        """True iff a non-trivial partition is installed."""
        return bool(self._partition.groups)

    def reachable(self, a: int, b: int) -> bool:
        """Whether SIDs ``a`` and ``b`` are in the same partition component."""
        return self._partition.connected(a, b)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a message; delivery (if any) happens after the link latency.

        Loss and partition checks happen at send time; the destination's
        liveness is checked at *delivery* time, so a site that crashes while
        a message is in flight silently discards it — exactly the window a
        quorum operation has to tolerate.
        """
        src = message.src
        dst = message.dst
        by_src = self._links.get(src)
        if by_src is None:
            by_src = self._links[src] = {}
        link = by_src.get(dst)
        if link is None:
            # Endpoints are never unregistered, so a cached link entry
            # proves the destination exists — the registration probe only
            # needs to run on the cache-miss path.
            if dst not in self._endpoints:
                raise KeyError(f"no endpoint registered for SID {dst}")
            link = by_src[dst] = (
                self._partition.connected(src, dst),
                self._effective_drop(src, dst),
                self._latency_factor(src, dst),
            )
        recorder = self._recorder
        self.stats.sent += 1
        if recorder.enabled:
            recorder.count("message.sent", message.type_name)
        connected, drop, factor = link
        if not connected:
            self.stats.dropped_partition += 1
            if recorder.enabled:
                recorder.count("message.dropped.partition", message.type_name)
            return
        if drop and self._rng.random() < drop:
            self.stats.dropped_loss += 1
            if recorder.enabled:
                recorder.count("message.dropped.loss", message.type_name)
            return
        # _draw_latency, inlined: one call frame per send is measurable on
        # the fabric's hottest line.
        if self._per_pair_latency:
            delay = self._latency(self._rng, src, dst) * factor
        else:
            delay = self._latency(self._rng) * factor
        scheduler = self._scheduler
        scheduler.call_later(delay, self._deliver, message)
        if (
            self._duplicate_probability
            and self._rng.random() < self._duplicate_probability
        ):
            # links may also deliver twice; protocol handlers must be
            # idempotent (timestamp-guarded writes, re-acked commits, ...)
            self.stats.duplicated += 1
            if recorder.enabled:
                recorder.count("message.duplicated", message.type_name)
            extra = delay + self._draw_latency(src, dst) * factor
            scheduler.call_later(extra, self._deliver, message)

    def _draw_latency(self, src: int, dst: int) -> float:
        if self._per_pair_latency:
            return self._latency(self._rng, src, dst)
        return self._latency(self._rng)

    def broadcast(self, messages: Iterable[Message]) -> None:
        """Send a batch of messages (the quorum fan-out entry point).

        When the fabric is in its deterministic regime — fixed RNG-free
        latency, no loss, no duplication, no chaos degradation, no
        partition, tracing off — the whole batch collapses into **one**
        scheduled event that delivers every message in send order.  This
        is behaviourally identical to per-message events: the messages
        would all carry the same delivery time and consecutive heap
        sequence numbers, so no foreign event can interleave between
        them, and no RNG is drawn on this path by construction.  Only
        the scheduler's processed-event count differs.  Any condition
        that could drop, delay or observe individual messages falls back
        to per-message :meth:`send`.
        """
        if not isinstance(messages, list):
            messages = list(messages)
        if (
            self._fixed_latency is None
            or len(messages) < 2
            or self._drop_probability
            or self._duplicate_probability
            or self._site_drop
            or self._latency_factors
            or self._partition.groups
            or self._recorder.enabled
        ):
            for message in messages:
                self.send(message)
            return
        endpoints = self._endpoints
        for message in messages:
            if message.dst not in endpoints:
                raise KeyError(
                    f"no endpoint registered for SID {message.dst}"
                )
        self.stats.sent += len(messages)
        self._scheduler.call_later(
            self._fixed_latency, self._deliver_many, messages
        )

    def _deliver_many(self, messages: list[Message]) -> None:
        """Deliver one batched fan-out (scheduled by :meth:`broadcast`).

        The batch was only scheduled because tracing was off; if it was
        toggled while the batch was in flight, fall back to the fully
        observed per-message path.  Otherwise the loop is :meth:`_deliver`
        inlined without the recorder probes — one call frame and two
        attribute chases fewer per message on the fan-out hot path.
        """
        if self._recorder.enabled:
            deliver = self._deliver
            for message in messages:
                deliver(message)
            return
        endpoints = self._endpoints
        stats = self.stats
        for message in messages:
            endpoint = endpoints.get(message.dst)
            if endpoint is None or not endpoint.up:
                stats.dropped_dead += 1
            else:
                stats.delivered += 1
                endpoint.receive(message)

    def _deliver(self, message: Message) -> None:
        endpoint = self._endpoints.get(message.dst)
        stats = self.stats
        recorder = self._recorder
        if endpoint is None or not endpoint.up:
            stats.dropped_dead += 1
            if recorder.enabled:
                recorder.count("message.dropped.dead", message.type_name)
            return
        stats.delivered += 1
        if recorder.enabled:
            recorder.count("message.delivered", message.type_name)
        endpoint.receive(message)
